//! Facade crate; see README.
