//! Quickstart: stage a single black hole on the paper's Table-I highway,
//! run BlackDP, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blackdp_scenario::{run_trial, ScenarioConfig, TrialSpec};

fn main() {
    // The paper's network: 10 km highway, 10 RSU-led clusters, 100
    // vehicles at 50–90 km/h, 1000 m DSRC radios.
    let cfg = ScenarioConfig::paper_table1();

    // One attacker in cluster 2; the source drives in cluster 1 and talks
    // to a destination in cluster 5.
    let spec = TrialSpec::single(/* seed */ 7, /* attacker cluster */ 2, 10);

    println!("running one Table-I trial (30 s of virtual time)…");
    let outcome = run_trial(&cfg, &spec);

    println!();
    println!("attack present:      {}", outcome.attack_present);
    println!("reported to RSU:     {}", outcome.reported);
    println!("attacker confirmed:  {}", outcome.attacker_confirmed);
    println!("certificate revoked: {}", outcome.attacker_revoked);
    println!("classification:      {:?}", outcome.class);
    for (suspect, verdict, packets) in &outcome.detections {
        println!("episode: suspect {suspect} → {verdict:?} using {packets} detection packets");
    }
    println!(
        "data: {} sent, {} delivered (PDR {:.0}%), {} swallowed by the attacker",
        outcome.data_sent,
        outcome.data_delivered,
        outcome.pdr() * 100.0,
        outcome.data_dropped_by_attacker
    );

    assert!(outcome.attacker_confirmed, "BlackDP should catch this one");
}
