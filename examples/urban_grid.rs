//! A preview of the paper's future work — urban topology: a Manhattan
//! street grid with RSUs at intersections, a vehicle driving a turning
//! route, and the (topology-agnostic) BlackDP examination running at the
//! intersection RSU that owns the attacker's cell.
//!
//! ```text
//! cargo run --example urban_grid
//! ```

use blackdp::{
    addr_of, BlackDpConfig, BlackDpMessage, ChAction, ChEvent, ClusterHead, DReq, DetectionOutcome,
    JoinBody, Sealed, SuspicionReason, Wire,
};
use blackdp_aodv::{Addr, Message as AodvMessage, Rrep};
use blackdp_attacks::{AttackerAction, AttackerConfig, BlackHole};
use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_mobility::{ClusterId, GridPlan, GridTrajectory, IntersectionId, Kmh};
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 4×3 downtown: 500 m blocks, RSUs at all 20 intersections.
    let grid = GridPlan::new(4, 3, 500.0);
    println!(
        "urban grid: {}x{} blocks of {:.0} m, {} intersection RSUs",
        4,
        3,
        grid.block_m(),
        grid.intersection_count()
    );

    // A vehicle drives from the south-west corner to the north-east one,
    // turning at intersections; its "cluster" is the nearest intersection.
    let route = GridTrajectory::through(
        &grid,
        IntersectionId { col: 0, row: 0 },
        IntersectionId { col: 4, row: 3 },
        Kmh(36.0),
        Time::ZERO,
    );
    println!("vehicle route length: {:.0} m", route.length_m());
    let mut handoffs = 0;
    let mut current = grid.nearest_intersection(route.position_at(Time::ZERO));
    for s in 0..=((route.length_m() / 10.0) as u64) {
        let cell = grid.nearest_intersection(route.position_at(Time::from_secs(s)));
        if cell != current {
            handoffs += 1;
            current = cell;
        }
    }
    println!("intersection cells crossed while driving: {handoffs}");

    // --- BlackDP at an intersection RSU. ---
    // The examination is topology-agnostic: the CH only needs membership
    // and radio reach. We map each intersection to a ClusterId for the
    // existing protocol machinery.
    let mut rng = StdRng::seed_from_u64(7);
    let mut ta = TrustedAuthority::new(TaId(1), &mut rng);
    let junction = IntersectionId { col: 2, row: 1 };
    let junction_cluster = ClusterId(junction.row * 5 + junction.col + 1);
    let mut ch = ClusterHead::new(
        junction_cluster,
        Addr(0x7000_0000_0000_0000 + u64::from(junction_cluster.0)),
        TaId(1),
        ta.public_key(),
        grid.intersection_count(),
        BlackDpConfig::default(),
        42,
    );
    println!(
        "intersection RSU {junction} supervises cell {junction_cluster} at {:?}",
        grid.intersection_position(junction).unwrap()
    );

    // An attacker idles near the junction and registers.
    let bh_keys = Keypair::generate(&mut rng);
    let bh_cert = ta.enroll(
        LongTermId(66),
        bh_keys.public(),
        Time::ZERO,
        Duration::from_secs(600),
        &mut rng,
    );
    let mut attacker = BlackHole::new(bh_keys, bh_cert, AttackerConfig::default(), 3);
    let jpos = grid.intersection_position(junction).unwrap();
    let jreq = Sealed::seal(
        JoinBody {
            pos_x: jpos.x + 40.0,
            pos_y: jpos.y,
            speed_kmh: 0.0,
            forward: true,
        },
        *attacker.cert(),
        None,
        attacker.keys(),
        &mut rng,
    );
    let _ = ch.handle_blackdp(attacker.addr(), BlackDpMessage::Jreq(jreq), Time::ZERO);

    // A passing vehicle reports it; the two-probe examination runs exactly
    // as on the highway.
    let (vk, vc) = {
        let k = Keypair::generate(&mut rng);
        let c = ta.enroll(
            LongTermId(1),
            k.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        (k, c)
    };
    let dreq = Sealed::seal(
        DReq {
            reporter: vc.pseudonym,
            reporter_cluster: junction_cluster,
            suspect: attacker.addr(),
            suspect_cluster: Some(junction_cluster),
            reason: SuspicionReason::NoHelloResponse,
        },
        vc,
        Some(junction_cluster),
        &vk,
        &mut rng,
    );
    let mut t = Time::from_secs(1);
    let mut pending = ch.handle_blackdp(
        addr_of(vc.pseudonym),
        BlackDpMessage::DetectionRequest(dreq),
        t,
    );
    let mut verdict = None;
    for _ in 0..10 {
        let mut next = Vec::new();
        for action in pending.drain(..) {
            match action {
                ChAction::Radio {
                    to,
                    wire: wire @ Wire::Aodv(AodvMessage::Rreq(_)),
                } => {
                    for back in attacker.handle_wire(
                        match &wire {
                            Wire::Aodv(AodvMessage::Rreq(r)) => r.orig,
                            _ => unreachable!(),
                        },
                        &wire,
                        t,
                    ) {
                        if let AttackerAction::SendTo {
                            wire: Wire::SecuredRrep { rrep, .. },
                            ..
                        } = back
                        {
                            let echo: Rrep = rrep;
                            next.extend(ch.on_probe_rrep(to, &echo, t));
                        }
                    }
                }
                ChAction::Event(ChEvent::DetectionConcluded { outcome, .. }) => {
                    verdict = Some(outcome);
                }
                _ => {}
            }
        }
        t += Duration::from_millis(150);
        next.extend(ch.tick(t));
        pending = next;
        if verdict.is_some() && pending.is_empty() {
            break;
        }
    }
    println!("verdict at the intersection RSU: {verdict:?}");
    assert_eq!(verdict, Some(DetectionOutcome::ConfirmedSingle));
    println!("the examination is topology-agnostic: urban deployment needs only the");
    println!("membership plane (nearest-intersection cells) demonstrated above.");
}
