//! The sequence-number baselines from the paper's related work, used as a
//! library: judge a burst of RREPs containing one forged outlier, then
//! watch each detector's blind spot.
//!
//! ```text
//! cargo run --example baselines_demo
//! ```

use blackdp_aodv::{Addr, Rrep};
use blackdp_baselines::{FirstRrepComparator, PeakDetector, RrepJudge, ThresholdDetector, Verdict};
use blackdp_sim::{Duration, Time};

fn rrep(seq: u32) -> Rrep {
    Rrep {
        dest: Addr(7),
        dest_seq: seq,
        orig: Addr(1),
        hop_count: 2,
        lifetime: Duration::from_secs(6),
        next_hop: None,
    }
}

fn main() {
    // A discovery produced three replies: the attacker's (fast, inflated)
    // and two honest ones.
    let replies = [(Addr(66), 140u32, 1u64), (Addr(3), 20, 4), (Addr(4), 22, 5)];

    println!("replies: {replies:?}");
    println!();

    // --- Jaiswal: compare the first reply against the rest. ---
    let mut cmp = FirstRrepComparator::new(2.0);
    cmp.start(Time::ZERO);
    for (from, seq, at_ms) in replies {
        cmp.add(from, seq, Time::from_millis(at_ms));
    }
    let judgement = cmp.conclude();
    println!(
        "first-RREP: suspect {:?}, route winner {:?}",
        judgement.suspect, judgement.winner
    );
    assert_eq!(judgement.suspect, Some(Addr(66)));

    // --- Jhaveri: dynamic PEAK bound. ---
    let mut peak = PeakDetector::new(50, Duration::from_secs(1));
    for (from, seq, at_ms) in replies {
        let verdict = peak.judge(from, &rrep(seq), Time::from_millis(at_ms));
        println!(
            "PEAK (bound {:>3}): {from} seq {seq:>3} → {verdict:?}",
            peak.peak()
        );
    }

    // --- Tan: static threshold. ---
    let mut threshold = ThresholdDetector::small();
    for (from, seq, at_ms) in replies {
        let verdict = threshold.judge(from, &rrep(seq), Time::from_millis(at_ms));
        println!(
            "threshold ({}): {from} seq {seq:>3} → {verdict:?}",
            threshold.threshold()
        );
    }

    // --- The shared blind spot (Section V-A): a sole responder. ---
    println!();
    println!("sole responder case: only the attacker replies, with a modest seq 90");
    let mut cmp = FirstRrepComparator::new(2.0);
    cmp.start(Time::from_secs(1));
    cmp.add(Addr(66), 90, Time::from_millis(1001));
    let j = cmp.conclude();
    println!(
        "first-RREP: suspect {:?} (nothing to compare) — route goes to the attacker",
        j.suspect
    );
    assert_eq!(j.suspect, None);
    let mut threshold = ThresholdDetector::medium();
    let v = threshold.judge(Addr(66), &rrep(90), Time::from_secs(1));
    println!("threshold (500): seq 90 → {v:?} — the modest forgery passes");
    assert_eq!(v, Verdict::Accept);
    println!();
    println!(
        "BlackDP closes exactly this gap: see `cargo run -p blackdp-bench --bin sole_responder`."
    );
}
