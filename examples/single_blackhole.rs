//! The Figure 1(a) / Section III-B walkthrough at the protocol level,
//! without the full simulator: how a single black hole lures an AODV
//! source, and how the cluster head's two-probe examination exposes it.
//!
//! ```text
//! cargo run --example single_blackhole
//! ```

use blackdp::{
    addr_of, BlackDpConfig, BlackDpMessage, ChAction, ChEvent, ClusterHead, DReq, DetectionOutcome,
    JoinBody, Sealed, SuspicionReason, Wire,
};
use blackdp_aodv::{Addr, Message as AodvMessage, Rreq};
use blackdp_attacks::{AttackerAction, AttackerConfig, BlackHole};
use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ta = TrustedAuthority::new(TaId(1), &mut rng);

    // The attacker is a *certified insider*: its credential is perfectly
    // valid.
    let bh_keys = Keypair::generate(&mut rng);
    let bh_cert = ta.enroll(
        LongTermId(66),
        bh_keys.public(),
        Time::ZERO,
        Duration::from_secs(600),
        &mut rng,
    );
    let mut attacker = BlackHole::new(bh_keys, bh_cert, AttackerConfig::default(), 9);
    println!(
        "attacker enrolled with valid certificate, pseudonym {}",
        bh_cert.pseudonym
    );

    // --- Phase 1: the lure (Figure 1a). ---
    // Node 1 floods an RREQ for node 5; an honest node would answer from
    // cache with SN 20 — the attacker answers with a far higher one.
    let rreq = Rreq {
        rreq_id: 1,
        dest: Addr(5),
        dest_seq: Some(0),
        orig: Addr(1),
        orig_seq: 1,
        hop_count: 1,
        ttl: 8,
        next_hop_inquiry: false,
    };
    let actions = attacker.handle_wire(Addr(2), &Wire::Aodv(AodvMessage::Rreq(rreq)), Time::ZERO);
    let forged = actions
        .iter()
        .find_map(|a| match a {
            AttackerAction::SendTo {
                wire: Wire::SecuredRrep { rrep, auth },
                ..
            } => Some((*rrep, auth.clone())),
            _ => None,
        })
        .expect("the black hole answers every RREQ");
    println!(
        "attacker forges RREP: dest_seq = {} (an honest cache had 20) — freshest route wins",
        forged.0.dest_seq
    );
    assert!(forged.0.dest_seq >= 120, "'a very high SN'");
    assert!(
        forged.1.verify(ta.public_key(), Time::ZERO).is_ok(),
        "and the envelope VERIFIES: authentication alone cannot stop an insider"
    );

    // --- Phase 2: the examination (Section III-B). ---
    // A cluster head receives the victim's detection request and probes the
    // suspect under a disposable identity with a fake destination.
    let mut ch = ClusterHead::new(
        ClusterId(2),
        Addr(900_002),
        TaId(1),
        ta.public_key(),
        10,
        BlackDpConfig::default(),
        42,
    );
    // The attacker is a registered member (it behaves, to stay reachable).
    let jreq = Sealed::seal(
        JoinBody {
            pos_x: 1_400.0,
            pos_y: 60.0,
            speed_kmh: 80.0,
            forward: true,
        },
        *attacker.cert(),
        None,
        attacker.keys(),
        &mut rng,
    );
    let _ = ch.handle_blackdp(attacker.addr(), BlackDpMessage::Jreq(jreq), Time::ZERO);

    // The victim reports.
    let (vkeys, vcert) = {
        let k = Keypair::generate(&mut rng);
        let c = ta.enroll(
            LongTermId(1),
            k.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        (k, c)
    };
    let dreq = Sealed::seal(
        DReq {
            reporter: vcert.pseudonym,
            reporter_cluster: ClusterId(2),
            suspect: attacker.addr(),
            suspect_cluster: Some(ClusterId(2)),
            reason: SuspicionReason::NoHelloResponse,
        },
        vcert,
        Some(ClusterId(2)),
        &vkeys,
        &mut rng,
    );
    let mut t = Time::from_secs(1);
    let mut pending = ch.handle_blackdp(
        addr_of(vcert.pseudonym),
        BlackDpMessage::DetectionRequest(dreq),
        t,
    );

    // Drive the probe ladder: feed every probe RREQ to the attacker and its
    // forged RREPs back to the CH, ticking the CH clock as we go.
    let mut verdict = None;
    for _ in 0..20 {
        let mut next = Vec::new();
        for action in pending.drain(..) {
            match action {
                ChAction::Radio {
                    to,
                    wire: wire @ Wire::Aodv(AodvMessage::Rreq(rreq)),
                } => {
                    println!(
                        "CH → {to}: probe RREQ (fake dest {}, demanded seq {:?}, next-hop inquiry {})",
                        rreq.dest, rreq.dest_seq, rreq.next_hop_inquiry
                    );
                    for back in attacker.handle_wire(rreq.orig, &wire, t) {
                        if let AttackerAction::SendTo {
                            wire: Wire::SecuredRrep { rrep, .. },
                            ..
                        } = back
                        {
                            println!(
                                "attacker → CH: RREP seq {} {}",
                                rrep.dest_seq,
                                rrep.next_hop
                                    .map(|n| format!("(discloses next hop {n})"))
                                    .unwrap_or_default()
                            );
                            next.extend(ch.on_probe_rrep(to, &rrep, t));
                        }
                    }
                }
                ChAction::Event(ChEvent::DetectionConcluded {
                    outcome, packets, ..
                }) => {
                    println!("CH verdict: {outcome:?} after {packets} detection packets");
                    verdict = Some(outcome);
                }
                ChAction::Event(e) => println!("CH event: {e:?}"),
                ChAction::WiredTa { msg, .. } => {
                    println!("CH → TA (wired): {}", msg.kind());
                }
                other => println!("CH action: {other:?}"),
            }
        }
        t += Duration::from_millis(150);
        next.extend(ch.tick(t));
        pending = next;
        if verdict.is_some() && pending.is_empty() {
            break;
        }
    }
    assert_eq!(verdict, Some(DetectionOutcome::ConfirmedSingle));
    println!("single black hole confirmed and reported for revocation.");
}
