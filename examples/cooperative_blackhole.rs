//! The Section III-B.3 illustrative example, end to end in the full
//! simulator: two cooperating black holes (`B₁`, `B₂`) in one cluster, a
//! source in cluster 1 talking across the highway, RSU detection with the
//! teammate probe, and isolation via the trusted authorities.
//!
//! ```text
//! cargo run --release --example cooperative_blackhole
//! ```

use blackdp::ChEvent;
use blackdp_scenario::{build_scenario, harvest, MaliciousNode, RsuNode, ScenarioConfig, TrialSpec};
use blackdp_sim::Time;

fn main() {
    let cfg = ScenarioConfig::paper_table1();
    let spec = TrialSpec::cooperative(/* seed */ 11, /* attacker cluster */ 2, 10);
    let mut built = build_scenario(&cfg, &spec);

    println!(
        "world: {} nodes ({} vehicles, {} attackers, {} RSUs, {} TAs)",
        built.world.node_count(),
        built.vehicles.len(),
        built.attackers.len(),
        built.rsus.len(),
        built.tas.len(),
    );
    let b1 = built
        .world
        .get::<MaliciousNode>(built.attackers[0])
        .unwrap()
        .addr();
    let b2 = built
        .world
        .get::<MaliciousNode>(built.attackers[1])
        .unwrap()
        .addr();
    println!("cooperative pair: B1 = {b1}, B2 = {b2} (each endorses the other)");

    built.world.run_until(Time::ZERO + cfg.sim_duration);

    // Narrate the detection from the RSU event logs.
    for &r in &built.rsus {
        let rsu = built.world.get::<RsuNode>(r).unwrap();
        for event in rsu.events() {
            match event {
                ChEvent::DetectionStarted { suspect } => {
                    println!(
                        "cluster {}: detection started against {suspect}",
                        rsu.cluster_head().cluster()
                    );
                }
                ChEvent::DetectionConcluded {
                    suspect,
                    outcome,
                    packets,
                } => {
                    println!(
                        "cluster {}: {suspect} → {outcome:?} ({packets} detection packets)",
                        rsu.cluster_head().cluster()
                    );
                }
                ChEvent::IsolationRequested(p) => {
                    println!(
                        "cluster {}: revocation requested for {p}",
                        rsu.cluster_head().cluster()
                    );
                }
                _ => {}
            }
        }
    }

    let outcome = harvest(&cfg, &spec, &built);
    println!();
    println!("classification: {:?}", outcome.class);
    println!(
        "PDR {:.0}% — {} packets swallowed before isolation",
        outcome.pdr() * 100.0,
        outcome.data_dropped_by_attacker
    );
    assert!(outcome.attacker_confirmed);
    assert!(
        outcome
            .detections
            .iter()
            .any(|(_, o, _)| matches!(o, blackdp::DetectionOutcome::ConfirmedCooperative { .. })),
        "the teammate must be exposed: {:?}",
        outcome.detections
    );
}
