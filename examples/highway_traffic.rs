//! A clean highway: cluster membership churn and multi-hop data delivery
//! with no attacker — the substrate the paper's protocol sits on.
//!
//! ```text
//! cargo run --release --example highway_traffic
//! ```

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    build_scenario, harvest, AttackSetup, RsuNode, ScenarioConfig, TrialSpec, VehicleNode,
};
use blackdp_sim::Time;

fn main() {
    let cfg = ScenarioConfig::paper_table1();
    let spec = TrialSpec {
        seed: 3,
        attack: AttackSetup::None,
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(5),
        attacker_moves: false,
        attacker_fake_hello: false,
    };
    let mut built = build_scenario(&cfg, &spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    println!("cluster membership after {} of driving:", cfg.sim_duration);
    for &r in &built.rsus {
        let rsu = built.world.get::<RsuNode>(r).unwrap();
        let ch = rsu.cluster_head();
        println!(
            "  cluster {:>3}: {:>2} members, blacklist {}",
            ch.cluster().to_string(),
            ch.members().count(),
            ch.blacklist().len()
        );
    }

    let stats = built.world.stats();
    println!();
    println!("radio transmissions: {}", stats.get("radio.tx"));
    println!(
        "joins granted:       {}",
        stats.get("rsu.event.member_joined")
    );
    println!(
        "leaves processed:    {}",
        stats.get("rsu.event.member_left")
    );

    let source = built.world.get::<VehicleNode>(built.source).unwrap();
    println!(
        "source: cluster {:?}, verified route to destination: {}",
        source.cluster(),
        source.is_verified(built.dest_addr)
    );

    let outcome = harvest(&cfg, &spec, &built);
    println!(
        "data: {} sent → {} delivered over multiple hops (PDR {:.0}%)",
        outcome.data_sent,
        outcome.data_delivered,
        outcome.pdr() * 100.0
    );
    assert!(outcome.data_delivered > 0, "the clean highway must deliver");
    assert!(!outcome.honest_confirmed, "and nobody gets framed");
}
