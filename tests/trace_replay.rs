//! End-to-end checks of the trace recorder and replay differ: same-seed
//! runs are bit-identical, the binary journal round-trips and detects
//! tampering, and a genuinely different run is reported at its first
//! divergent event with context.

use blackdp_scenario::{
    decode_trace, diff_traces, encode_trace, record_trial, replay_divergence, FaultSpec,
    ScenarioConfig, TrialSpec,
};

fn setup(seed: u64) -> (ScenarioConfig, TrialSpec) {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(seed, 2, cfg.plan().cluster_count());
    (cfg, spec)
}

#[test]
fn same_seed_replay_is_bit_identical() {
    let (cfg, spec) = setup(5);
    let (_, recorded) = record_trial(&cfg, &spec, &FaultSpec::none());
    assert!(!recorded.is_empty());
    assert!(
        replay_divergence(&cfg, &spec, &FaultSpec::none(), &recorded).is_none(),
        "same-seed replay diverged"
    );
    let (_, again) = record_trial(&cfg, &spec, &FaultSpec::none());
    assert_eq!(encode_trace(&recorded), encode_trace(&again));
}

#[test]
fn faulted_runs_replay_identically_too() {
    let (cfg, spec) = setup(6);
    let faults = FaultSpec::randomized(6, 0.6, &cfg);
    let (_, recorded) = record_trial(&cfg, &spec, &faults);
    assert!(!recorded.is_empty());
    assert!(
        replay_divergence(&cfg, &spec, &faults, &recorded).is_none(),
        "faulted same-seed replay diverged"
    );
}

#[test]
fn journal_round_trips_and_detects_tampering() {
    let (cfg, spec) = setup(7);
    let (_, recorded) = record_trial(&cfg, &spec, &FaultSpec::none());
    let bytes = encode_trace(&recorded);
    assert_eq!(decode_trace(&bytes).unwrap(), recorded);

    let mut tampered = bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    assert!(
        matches!(
            decode_trace(&tampered).unwrap_err(),
            blackdp_scenario::TraceError::ChecksumMismatch { .. }
        ),
        "flipped byte not caught"
    );
    assert!(decode_trace(&bytes[..bytes.len() - 1]).is_err());
}

#[test]
fn different_seed_diverges_with_context() {
    let (cfg, spec_a) = setup(8);
    let (_, spec_b) = setup(9);
    let (_, a) = record_trial(&cfg, &spec_a, &FaultSpec::none());
    let (_, b) = record_trial(&cfg, &spec_b, &FaultSpec::none());
    let divergence = diff_traces(&a, &b).expect("different seeds must diverge");
    let report = divergence.to_string();
    assert!(
        report.contains("diverge at event"),
        "unhelpful report: {report}"
    );
    // The first divergent index must actually disagree.
    assert_ne!(
        a.get(divergence.index),
        b.get(divergence.index),
        "reported index does not diverge"
    );
}
