//! The paper's "anonymity response" path in the full simulator: the
//! attacker answers the secure Hello probe with a fake reply claiming to
//! be the destination. The victim then "sends the detection request
//! without performing the second route discovery" — detection is faster
//! than the silent-swallow path, and the verdict is unchanged.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{run_trial, AttackSetup, ScenarioConfig, TrialClass, TrialSpec};

fn spec(seed: u64, fake_hello: bool) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::Single { cluster: 2 },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(5),
        attacker_moves: false,
        attacker_fake_hello: fake_hello,
    }
}

#[test]
fn fake_hello_reply_still_ends_in_isolation() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(57_001, true));
    assert_eq!(
        outcome.class,
        TrialClass::TruePositive,
        "{:?}",
        outcome.detections
    );
    assert!(outcome.attacker_revoked);
    assert!(!outcome.honest_confirmed);
}

#[test]
fn anonymity_response_is_detected_faster_than_silence() {
    let cfg = ScenarioConfig::small_test();
    // Same seed, both ways: the only difference is the attacker's Hello
    // behaviour.
    let silent = run_trial(&cfg, &spec(57_011, false));
    let faking = run_trial(&cfg, &spec(57_011, true));
    let (silent_latency, faking_latency) = match (silent.detection_latency, faking.detection_latency)
    {
        (Some(a), Some(b)) => (a, b),
        other => panic!("both runs must conclude a detection: {other:?}"),
    };
    // The fake reply skips the second discovery round (one full Hello
    // timeout plus a rediscovery), so it must be strictly faster.
    assert!(
        faking_latency < silent_latency,
        "faking {faking_latency} should beat silent {silent_latency}"
    );
}
