//! The expanding-ring search extension, exercised in the full simulator:
//! discoveries for nearby destinations must cost fewer RREQ deliveries
//! than full-diameter floods, without hurting delivery.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    attach_journal, build_scenario, harvest, AttackSetup, ScenarioConfig, TrialSpec,
};
use blackdp_sim::Time;

fn spec(seed: u64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::None,
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        // Destination two clusters over: well within the first few rings.
        dest_cluster: Some(3),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

fn rreq_deliveries_and_pdr(expanding_ring: bool, seed: u64) -> (usize, f64) {
    let mut cfg = ScenarioConfig::small_test();
    cfg.aodv.expanding_ring = expanding_ring;
    let s = spec(seed);
    let mut built = build_scenario(&cfg, &s);
    let journal = attach_journal(&mut built);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let outcome = harvest(&cfg, &s, &built);
    let count = journal.borrow().count_kind("rreq");
    (count, outcome.pdr())
}

#[test]
fn expanding_ring_cuts_flood_cost_for_nearby_destinations() {
    let mut flood_total = 0usize;
    let mut ring_total = 0usize;
    for seed in [81_001u64, 81_002, 81_003] {
        let (flood, flood_pdr) = rreq_deliveries_and_pdr(false, seed);
        let (ring, ring_pdr) = rreq_deliveries_and_pdr(true, seed);
        assert!(flood_pdr > 0.0, "full flood must deliver (seed {seed})");
        assert!(ring_pdr > 0.0, "expanding ring must deliver (seed {seed})");
        flood_total += flood;
        ring_total += ring;
    }
    assert!(
        ring_total < flood_total,
        "expanding ring must reduce RREQ deliveries: ring {ring_total} vs flood {flood_total}"
    );
}
