//! End-to-end runs of attacker variants that exist only as interceptor
//! compositions — no dedicated node type. The cooperative gray hole
//! stacks the teammate endorsement of the cooperative black hole on top
//! of probabilistic data dropping, optionally with a renewal-zone
//! evasion manoeuvre.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    run_trial, AttackSetup, MaliciousNode, ScenarioConfig, TrialSpec,
};

fn spec(seed: u64, cluster: u32, drop_probability: f64, evasion: EvasionPolicy) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::CooperativeGrayHole {
            cluster,
            drop_probability,
        },
        evasion,
        source_cluster: 1,
        dest_cluster: Some(5),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn cooperative_grayhole_pair_is_confirmed() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(73_001, 2, 0.5, EvasionPolicy::None));
    // The probes judge route capture, not drop rate, and the teammate
    // endorsement marks the pair as cooperative.
    assert!(outcome.attacker_confirmed, "{:?}", outcome.detections);
    assert!(!outcome.honest_confirmed);
}

#[test]
fn cooperative_grayhole_spawns_two_malicious_nodes() {
    use blackdp_sim::Time;
    let cfg = ScenarioConfig::small_test();
    let s = spec(73_011, 2, 0.7, EvasionPolicy::None);
    let mut built = blackdp_scenario::build_scenario(&cfg, &s);
    assert_eq!(built.attackers.len(), 2, "a cooperative pair");
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    for &a in &built.attackers {
        let node = built
            .world
            .get::<MaliciousNode>(a)
            .expect("both attackers use the shared shell");
        assert!(!node.addr_history().is_empty());
        let _ = node.dropped_count() + node.forwarded_count() + node.lured_count();
    }
}

#[test]
fn cooperative_grayhole_with_flee_evasion_runs_end_to_end() {
    // The acceptance scenario: a composed variant (endorsement +
    // probabilistic dropping + Flee) driven purely by middleware chain
    // and profile knobs. Whatever the timing yields, no honest node may
    // be framed for it.
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(73_021, 9, 0.5, EvasionPolicy::Flee));
    assert!(!outcome.honest_confirmed, "{:?}", outcome.detections);
}

#[test]
fn cooperative_grayhole_acting_legitimately_never_frames_honest_nodes() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(73_031, 9, 0.5, EvasionPolicy::ActLegitimately));
    assert!(!outcome.honest_confirmed, "{:?}", outcome.detections);
}

#[test]
fn fuzz_kind_six_round_trips_and_runs_clean() {
    use blackdp_scenario::{metamorphic_failures, run_case, FuzzCase};
    let mut case = FuzzCase::baseline(73_041);
    case.attack_kind = 6;
    case.attack_a = 2; // cluster
    case.attack_b = 60; // drop %
    assert!(matches!(
        case.attack(),
        AttackSetup::CooperativeGrayHole {
            cluster: 2,
            drop_probability,
        } if (drop_probability - 0.6).abs() < 1e-9
    ));
    let line = case.to_line();
    assert_eq!(FuzzCase::parse_line(&line).unwrap(), case);

    let report = run_case(&case);
    assert!(report.is_clean(), "{:?}", report);
    assert!(metamorphic_failures(&case, &report).is_empty());
}
