//! End-to-end smoke tests: the full Table-I world must detect, isolate,
//! and account for black hole attacks.

use blackdp_scenario::{run_trial, AttackSetup, ScenarioConfig, TrialSpec};

#[test]
fn clean_network_delivers_data_with_no_detections() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec {
        seed: 1,
        attack: AttackSetup::None,
        evasion: blackdp_attacks::EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(4),
        attacker_moves: false,
        attacker_fake_hello: false,
    };
    let outcome = run_trial(&cfg, &spec);
    assert!(!outcome.attack_present);
    assert!(
        !outcome.honest_confirmed,
        "no false positives on a clean run"
    );
    assert!(
        outcome.data_delivered > 0,
        "multi-hop data must flow: sent {} delivered {}",
        outcome.data_sent,
        outcome.data_delivered
    );
}

#[test]
fn single_black_hole_is_detected_and_isolated() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(2, 2, 10);
    let outcome = run_trial(&cfg, &spec);
    assert!(outcome.reported, "the source must raise a d_req");
    assert!(
        outcome.attacker_confirmed,
        "the RSU must confirm the attacker: detections {:?}",
        outcome.detections
    );
    assert!(!outcome.honest_confirmed, "zero false positives");
    assert!(
        outcome.attacker_revoked,
        "the TA must revoke the certificate"
    );
}
