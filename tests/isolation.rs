//! The isolation phase end-state (Section III-B.2), audited across the
//! whole network after a confirmed detection: revocation notices reach
//! every cluster head in every TA region, the attacker is expelled from
//! membership, blacklisted network-wide, refused renewal, and unable to
//! rejoin.

use blackdp_crypto::PseudonymId;
use blackdp_scenario::{
    build_scenario, harvest, MaliciousNode, RsuNode, ScenarioConfig, TaNode, TrialSpec,
};
use blackdp_sim::Time;

#[test]
fn revocation_reaches_every_cluster_head() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(55_001, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    let outcome = harvest(&cfg, &spec, &built);
    assert!(outcome.attacker_confirmed, "{:?}", outcome.detections);
    assert!(outcome.attacker_revoked);

    let attacker_pseudonym = PseudonymId(
        built
            .world
            .get::<MaliciousNode>(built.attackers[0])
            .unwrap()
            .addr()
            .0,
    );

    // Section III-B.2: the TA "informs other trusted authority nodes to
    // pause attacker renewal certificates and sends a revocation notice to
    // the surrounding CHs" — in our two-region deployment this reaches all
    // ten cluster heads.
    let mut blacklisted = 0;
    for &r in &built.rsus {
        let rsu = built.world.get::<RsuNode>(r).unwrap();
        if rsu
            .cluster_head()
            .blacklist()
            .is_revoked(attacker_pseudonym)
        {
            blacklisted += 1;
        }
        assert!(
            !rsu.cluster_head().is_member(attacker_pseudonym),
            "cluster {} still lists the attacker as a member",
            rsu.cluster_head().cluster()
        );
    }
    assert_eq!(
        blacklisted,
        built.rsus.len(),
        "every CH must hold the revocation notice"
    );

    // Both TAs have the owner paused (cross-region pause propagation).
    let mut paused_regions = 0;
    for &t in &built.tas {
        let ta = built.world.get::<TaNode>(t).unwrap();
        // LongTermId(1_000) is the first attacker's enrollment identity
        // (see the scenario builder).
        if ta
            .authority()
            .authority()
            .is_paused(blackdp_crypto::LongTermId(1_000))
        {
            paused_regions += 1;
        }
    }
    assert_eq!(
        paused_regions,
        built.tas.len(),
        "pause must propagate to every TA"
    );
}

#[test]
fn isolated_attacker_cannot_rejoin_anywhere() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(55_011, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    // Run well past isolation; the attacker keeps driving into new
    // clusters and keeps sending JREQs (its membership logic is
    // unchanged), but every join must now be rejected.
    built.world.run_until(Time::from_secs(60));
    let outcome = harvest(&cfg, &spec, &built);
    assert!(outcome.attacker_confirmed);

    let attacker_pseudonym = PseudonymId(
        built
            .world
            .get::<MaliciousNode>(built.attackers[0])
            .unwrap()
            .addr()
            .0,
    );
    for &r in &built.rsus {
        let rsu = built.world.get::<RsuNode>(r).unwrap();
        assert!(
            !rsu.cluster_head().is_member(attacker_pseudonym),
            "the revoked attacker re-registered in cluster {}",
            rsu.cluster_head().cluster()
        );
    }
    // Join rejections were actually exercised (the attacker did try).
    assert!(
        built.world.stats().get("rsu.event.join_rejected") >= 1,
        "expected at least one rejected rejoin attempt"
    );
}
