//! Reproducibility: identical seeds must produce identical trials, and
//! different seeds must actually vary the world.

use blackdp_scenario::{run_trial, ScenarioConfig, TrialSpec};

fn fingerprint(outcome: &blackdp_scenario::TrialOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}",
        outcome.class,
        outcome.detections,
        outcome.data_sent,
        outcome.data_delivered,
        outcome.data_dropped_by_attacker,
        outcome.detection_packets,
    )
}

#[test]
fn same_seed_same_outcome() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(1234, 2, 10);
    let a = run_trial(&cfg, &spec);
    let b = run_trial(&cfg, &spec);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_vary_placement() {
    let cfg = ScenarioConfig::small_test();
    let a = run_trial(&cfg, &TrialSpec::single(1, 2, 10));
    let b = run_trial(&cfg, &TrialSpec::single(2, 2, 10));
    // Outcome class will usually match (both TP) but the concrete suspect
    // pseudonyms must differ: fresh keys per seed.
    let sa: Vec<_> = a.detections.iter().map(|(s, _, _)| *s).collect();
    let sb: Vec<_> = b.detections.iter().map(|(s, _, _)| *s).collect();
    assert_ne!(sa, sb, "different seeds must enroll different pseudonyms");
}
