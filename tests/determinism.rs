//! Reproducibility: identical seeds must produce identical trials, and
//! different seeds must actually vary the world.

use blackdp_scenario::{
    fig4_cell, fig4_cell_serial, fig4_cell_spec, parallel_map_with, record_trial, run_fault_trial,
    run_trial, AttackKind, FaultSpec, ScenarioConfig, TrialSpec,
};
use blackdp_sim::{Duration, NeighborIndex, WorldBackend};

fn fingerprint(outcome: &blackdp_scenario::TrialOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}",
        outcome.class,
        outcome.detections,
        outcome.data_sent,
        outcome.data_delivered,
        outcome.data_dropped_by_attacker,
        outcome.detection_packets,
    )
}

#[test]
fn same_seed_same_outcome() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(1234, 2, 10);
    let a = run_trial(&cfg, &spec);
    let b = run_trial(&cfg, &spec);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn same_seed_same_fault_plan_same_outcome() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(1234, 2, 10);
    let faults = FaultSpec::randomized(1234, 0.8, &cfg);
    let a = run_fault_trial(&cfg, &spec, &faults);
    let b = run_fault_trial(&cfg, &spec, &faults);
    assert_eq!(fingerprint(&a.base), fingerprint(&b.base));
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.fault_drops, b.fault_drops);
    assert_eq!(a.time_to_recover, b.time_to_recover);
    assert_eq!(a.revocation_retries, b.revocation_retries);
}

#[test]
fn different_seeds_vary_fault_schedules() {
    let cfg = ScenarioConfig::small_test();
    let a = FaultSpec::randomized(1, 0.8, &cfg);
    let b = FaultSpec::randomized(2, 0.8, &cfg);
    assert_ne!(a, b, "fault schedules must be seed-dependent");
    // And the realized trials must actually diverge, not just the specs.
    let ta = run_fault_trial(&cfg, &TrialSpec::single(1, 2, 10), &a);
    let tb = run_fault_trial(&cfg, &TrialSpec::single(2, 2, 10), &b);
    assert_ne!(
        (ta.crashes, ta.fault_drops, ta.time_to_recover),
        (tb.crashes, tb.fault_drops, tb.time_to_recover),
        "different seeds must realize different fault histories"
    );
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let cfg = ScenarioConfig::small_test();
    let reps = 6;
    let serial: Vec<String> = fig4_cell_serial(&cfg, AttackKind::Single, 2, reps)
        .iter()
        .map(fingerprint)
        .collect();

    // The public entry point (however many workers this machine offers)...
    let auto: Vec<String> = fig4_cell(&cfg, AttackKind::Single, 2, reps)
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(serial, auto, "fig4_cell must reproduce the serial sweep");

    // ...and explicit worker counts, so multi-threaded merging is
    // exercised even on a single-core CI machine.
    let specs: Vec<TrialSpec> = (0..reps)
        .map(|rep| fig4_cell_spec(&cfg, AttackKind::Single, 2, rep))
        .collect();
    for workers in [2usize, 3, 8] {
        let parallel: Vec<String> = parallel_map_with(workers, &specs, |s| run_trial(&cfg, s))
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            serial, parallel,
            "sweep with {workers} workers must be bit-identical to serial"
        );
    }
}

#[test]
fn grid_medium_matches_brute_force_scan() {
    let grid_cfg = ScenarioConfig::small_test();
    assert_eq!(
        grid_cfg.neighbor_index,
        NeighborIndex::Grid,
        "grid must be the default medium"
    );
    let mut scan_cfg = ScenarioConfig::small_test();
    scan_cfg.neighbor_index = NeighborIndex::Scan;

    for kind in [AttackKind::Single, AttackKind::Cooperative] {
        let with_grid: Vec<String> = fig4_cell_serial(&grid_cfg, kind, 2, 4)
            .iter()
            .map(fingerprint)
            .collect();
        let with_scan: Vec<String> = fig4_cell_serial(&scan_cfg, kind, 2, 4)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            with_grid, with_scan,
            "grid neighbor index must be observationally identical to the scan ({kind:?})"
        );
    }
}

/// A config big enough (70 vehicles + 10 RSUs + 2 TAs = 82 slots) to put
/// the world past the small-world scan threshold, so the sharded backend
/// is genuinely answering broadcast queries rather than the scan override.
fn sharded_exercising_config() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small_test();
    cfg.vehicles = 70;
    cfg.sim_duration = Duration::from_secs(10);
    cfg
}

#[test]
fn sharded_backend_is_bit_identical_for_any_shard_count() {
    let cfg = sharded_exercising_config();
    let spec = TrialSpec::single(77, 3, 10);
    let faults = FaultSpec::none();
    let (serial_outcome, serial_trace) = record_trial(&cfg, &spec, &faults);

    for shards in [1u32, 2, 3, 7] {
        let mut sharded_cfg = cfg.clone();
        sharded_cfg.backend = WorldBackend::Sharded { shards };
        let (outcome, trace) = record_trial(&sharded_cfg, &spec, &faults);
        assert_eq!(
            fingerprint(&outcome),
            fingerprint(&serial_outcome),
            "outcome diverged under {shards} shard(s)"
        );
        assert_eq!(
            trace, serial_trace,
            "delivery trace diverged under {shards} shard(s)"
        );
    }
}

#[test]
fn attacker_straddling_a_band_boundary_matches_serial() {
    // Shard bands are columns of 2 · radio_range = 2000 m cells, so the
    // edge of cluster 2 (x = 2000 m) is exactly a band boundary under any
    // shard count: a cluster-2 attacker's victim set straddles it. The
    // cooperative variant adds a teammate, widening the straddling set.
    let cfg = sharded_exercising_config();
    let faults = FaultSpec::none();
    for (kind, spec) in [
        ("single", TrialSpec::single(31, 2, 10)),
        ("cooperative", TrialSpec::cooperative(31, 2, 10)),
    ] {
        let (serial_outcome, serial_trace) = record_trial(&cfg, &spec, &faults);
        let mut sharded_cfg = cfg.clone();
        sharded_cfg.backend = WorldBackend::Sharded { shards: 5 };
        let (outcome, trace) = record_trial(&sharded_cfg, &spec, &faults);
        assert_eq!(
            outcome.detections, serial_outcome.detections,
            "{kind}: detection verdicts diverged"
        );
        assert_eq!(
            fingerprint(&outcome),
            fingerprint(&serial_outcome),
            "{kind}: outcome diverged"
        );
        assert_eq!(trace, serial_trace, "{kind}: trace diverged");
    }
}

#[test]
fn different_seeds_vary_placement() {
    let cfg = ScenarioConfig::small_test();
    let a = run_trial(&cfg, &TrialSpec::single(1, 2, 10));
    let b = run_trial(&cfg, &TrialSpec::single(2, 2, 10));
    // Outcome class will usually match (both TP) but the concrete suspect
    // pseudonyms must differ: fresh keys per seed.
    let sa: Vec<_> = a.detections.iter().map(|(s, _, _)| *s).collect();
    let sb: Vec<_> = b.detections.iter().map(|(s, _, _)| *s).collect();
    assert_ne!(sa, sb, "different seeds must enroll different pseudonyms");
}
