//! Reduced-scale figure-shape checks that run inside `cargo test` (the
//! full-scale gates live in the `validate_shapes` binary). These use the
//! small test network and few repetitions, asserting only the robust
//! structural claims.

use blackdp_scenario::{fig4_cell, fig5, AttackKind, RateSummary, ScenarioConfig};

#[test]
fn fig4_clean_zone_is_perfect_at_small_scale() {
    let cfg = ScenarioConfig::small_test();
    for kind in [AttackKind::Single, AttackKind::Cooperative] {
        let rates = RateSummary::from_outcomes(&fig4_cell(&cfg, kind, 3, 3));
        assert_eq!(rates.accuracy, 1.0, "{kind:?} cluster 3");
        assert_eq!(rates.fp_rate, 0.0);
        assert_eq!(rates.fn_rate, 0.0);
    }
}

#[test]
fn fig5_same_cluster_baseline_is_six_packets() {
    let cfg = ScenarioConfig::small_test();
    let rows = fig5(&cfg, 2);
    let same = rows
        .iter()
        .find(|r| r.label == "single, same cluster")
        .expect("row exists");
    // The canonical episode: d_req + RREQ1 + RREP1 + RREQ2 + RREP2 +
    // response = 6 (jitter orderings may add a stray packet).
    assert!(
        same.measured.iter().all(|&p| (6..=8).contains(&p)),
        "measured {:?}",
        same.measured
    );
    assert!(same.measured.contains(&6), "the 6-packet case must occur");
}

#[test]
fn fig5_rows_preserve_the_papers_ordering() {
    let cfg = ScenarioConfig::small_test();
    let rows = fig5(&cfg, 2);
    let mean = |label: &str| {
        let r = rows.iter().find(|r| r.label == label).expect("row");
        r.measured.iter().map(|&x| f64::from(x)).sum::<f64>() / r.measured.len() as f64
    };
    assert!(
        mean("no attacker (false suspicion)") < mean("single, same cluster, moves mid-detection"),
        "false suspicion must be cheaper than a moving confirmation"
    );
    assert!(
        mean("single, same cluster") < mean("single, different cluster, moves mid-detection"),
        "cross-cluster movement must cost the most among singles"
    );
}
