//! Section V-A's critique, reproduced: sequence-number defenses fail when
//! the attacker is the sole responder, while BlackDP still detects it.

use blackdp_aodv::{Addr, Rrep};
use blackdp_attacks::EvasionPolicy;
use blackdp_baselines::{FirstRrepComparator, PeakDetector, RrepJudge, ThresholdDetector, Verdict};
use blackdp_scenario::{run_trial, AttackSetup, DefenseMode, ScenarioConfig, TrialSpec};
use blackdp_sim::{Duration, Time};

fn modest_forged_rrep() -> Rrep {
    Rrep {
        dest: Addr(7),
        dest_seq: 90, // forged, but under every static threshold
        orig: Addr(1),
        hop_count: 3,
        lifetime: Duration::from_secs(6),
        next_hop: None,
    }
}

#[test]
fn first_rrep_comparator_is_blind_to_a_sole_responder() {
    let mut cmp = FirstRrepComparator::new(2.0);
    cmp.start(Time::ZERO);
    cmp.add(Addr(66), 5_000, Time::from_millis(1)); // wildly forged
    let judgement = cmp.conclude();
    assert_eq!(judgement.suspect, None, "nothing to compare against");
    assert_eq!(
        judgement.winner,
        Some(Addr(66)),
        "the attacker gets the route"
    );
}

#[test]
fn threshold_passes_a_modest_forgery() {
    let mut det = ThresholdDetector::medium();
    assert_eq!(
        det.judge(Addr(66), &modest_forged_rrep(), Time::ZERO),
        Verdict::Accept
    );
}

#[test]
fn peak_passes_a_patient_forgery() {
    let mut det = PeakDetector::new(100, Duration::from_secs(1));
    // The attacker stays just under the growth allowance.
    assert_eq!(
        det.judge(Addr(66), &modest_forged_rrep(), Time::ZERO),
        Verdict::Accept
    );
}

fn sole_responder_spec(seed: u64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::Single { cluster: 2 },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        // The paper: "the destination may not exist in the clusters" — so
        // the attacker's reply is the only one the source will ever get.
        dest_cluster: None,
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn blackdp_detects_the_sole_responder_in_simulation() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &sole_responder_spec(41_001));
    assert!(
        outcome.attacker_confirmed,
        "behavioural probing needs no second opinion: {:?}",
        outcome.detections
    );
    assert!(!outcome.honest_confirmed);
}

#[test]
fn baselines_never_confirm_the_sole_responder_in_simulation() {
    for defense in [
        DefenseMode::BaselineThreshold,
        DefenseMode::BaselinePeak,
        DefenseMode::BaselineFirstRrep,
    ] {
        let mut cfg = ScenarioConfig::small_test();
        cfg.defense = defense;
        let outcome = run_trial(&cfg, &sole_responder_spec(41_011));
        assert!(
            !outcome.attacker_confirmed,
            "{defense:?} has no network-level confirmation path"
        );
    }
}
