//! The gray hole (selective dropper) is caught exactly like the black
//! hole: BlackDP's probes judge route-capture behaviour, not drop rate.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    run_trial, AttackSetup, GrayHoleNode, ScenarioConfig, TrialClass, TrialSpec,
};

fn spec(seed: u64, drop_probability: f64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::GrayHole {
            cluster: 2,
            drop_probability,
        },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(5),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn full_dropper_is_confirmed() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_001, 1.0));
    assert_eq!(
        outcome.class,
        TrialClass::TruePositive,
        "{:?}",
        outcome.detections
    );
    assert!(outcome.attacker_revoked);
}

#[test]
fn half_dropper_is_confirmed_despite_camouflage() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_011, 0.5));
    assert!(
        outcome.attacker_confirmed,
        "probing is independent of the data plane: {:?}",
        outcome.detections
    );
    assert!(!outcome.honest_confirmed);
}

#[test]
fn zero_dropper_still_violates_aodv_and_is_confirmed() {
    // Even a gray hole that forwards everything forges routes it does not
    // have — the AODV violation the probe exposes.
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_021, 0.0));
    assert!(outcome.attacker_confirmed, "{:?}", outcome.detections);
    assert_eq!(outcome.data_dropped_by_attacker, 0, "it never dropped data");
}

#[test]
fn grayhole_node_counters_are_exposed() {
    use blackdp_sim::Time;
    let cfg = ScenarioConfig::small_test();
    let s = spec(61_031, 0.5);
    let mut built = blackdp_scenario::build_scenario(&cfg, &s);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let gh = built
        .world
        .get::<GrayHoleNode>(built.attackers[0])
        .expect("a GrayHoleNode was spawned for the GrayHole setup");
    // Whatever happened, the counters are consistent.
    let _ = gh.lured_count();
    assert!(gh.dropped_count() + gh.forwarded_count() >= gh.dropped_count());
}
