//! The gray hole (selective dropper) is caught exactly like the black
//! hole: BlackDP's probes judge route-capture behaviour, not drop rate.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    run_trial, AttackSetup, MaliciousNode, ScenarioConfig, TrialClass, TrialSpec,
};

fn spec(seed: u64, drop_probability: f64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::GrayHole {
            cluster: 2,
            drop_probability,
        },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(5),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn full_dropper_is_confirmed() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_001, 1.0));
    assert_eq!(
        outcome.class,
        TrialClass::TruePositive,
        "{:?}",
        outcome.detections
    );
    assert!(outcome.attacker_revoked);
}

#[test]
fn half_dropper_is_confirmed_despite_camouflage() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_011, 0.5));
    assert!(
        outcome.attacker_confirmed,
        "probing is independent of the data plane: {:?}",
        outcome.detections
    );
    assert!(!outcome.honest_confirmed);
}

#[test]
fn zero_dropper_still_violates_aodv_and_is_confirmed() {
    // Even a gray hole that forwards everything forges routes it does not
    // have — the AODV violation the probe exposes.
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(61_021, 0.0));
    assert!(outcome.attacker_confirmed, "{:?}", outcome.detections);
    assert_eq!(outcome.data_dropped_by_attacker, 0, "it never dropped data");
}

#[test]
fn grayhole_node_counters_are_exposed() {
    use blackdp_sim::Time;
    let cfg = ScenarioConfig::small_test();
    let s = spec(61_031, 0.5);
    let mut built = blackdp_scenario::build_scenario(&cfg, &s);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let gh = built
        .world
        .get::<MaliciousNode>(built.attackers[0])
        .expect("a MaliciousNode was spawned for the GrayHole setup");
    // Whatever happened, the counters are consistent.
    let _ = gh.lured_count();
    assert!(gh.dropped_count() + gh.forwarded_count() >= gh.dropped_count());
}

/// Differential sweep of the gray hole's forwarding probability: as the
/// dropper turns more aggressive (0.0 → 1.0), the data plane under every
/// defense degrades monotonically — mean PDR never *improves* with a
/// higher drop rate. Seeds are shared across sweep points so the
/// comparison is differential, not statistical. (The attacker's own
/// dropped-packet counter is *not* monotone in the drop probability:
/// at low rates, camouflage re-broadcasts and ttl exhaustion inflate it.)
#[test]
fn pdr_degrades_monotonically_with_drop_probability() {
    use blackdp_scenario::{parallel_map, DefenseMode};

    const DROPS: [f64; 4] = [0.0, 0.35, 0.7, 1.0];
    const SEEDS: [u64; 2] = [61_041, 61_042];
    const DEFENSES: [DefenseMode; 3] = [
        DefenseMode::BlackDp,
        DefenseMode::BaselineFirstRrep,
        DefenseMode::None,
    ];
    // Mean-PDR slack for re-routing noise: dropping a packet changes the
    // subsequent event stream, so individual seeds can wiggle slightly.
    const TOLERANCE: f64 = 0.15;

    let mut jobs = Vec::new();
    for &defense in &DEFENSES {
        for &p in &DROPS {
            for &seed in &SEEDS {
                jobs.push((defense, p, seed));
            }
        }
    }
    let outcomes = parallel_map(&jobs, |&(defense, p, seed)| {
        let mut cfg = ScenarioConfig::small_test();
        cfg.vehicles = 24;
        cfg.sim_duration = blackdp_sim::Duration::from_secs(15);
        cfg.data_packets = 10;
        cfg.defense = defense;
        run_trial(&cfg, &spec(seed, p)).pdr()
    });

    for (d, &defense) in DEFENSES.iter().enumerate() {
        let mean_pdrs: Vec<f64> = (0..DROPS.len())
            .map(|i| {
                let base = d * DROPS.len() * SEEDS.len() + i * SEEDS.len();
                outcomes[base..base + SEEDS.len()].iter().sum::<f64>() / SEEDS.len() as f64
            })
            .collect();
        for w in 0..DROPS.len() - 1 {
            assert!(
                mean_pdrs[w + 1] <= mean_pdrs[w] + TOLERANCE,
                "{defense:?}: mean PDR improved from {:.3} to {:.3} when drop \
                 probability rose {} → {}",
                mean_pdrs[w],
                mean_pdrs[w + 1],
                DROPS[w],
                DROPS[w + 1],
            );
        }
        assert!(
            mean_pdrs[DROPS.len() - 1] <= mean_pdrs[0] + 1e-9,
            "{defense:?}: a full dropper must not beat a pure forwarder \
             ({:.3} vs {:.3})",
            mean_pdrs[DROPS.len() - 1],
            mean_pdrs[0],
        );
    }
}
