//! The renewal-zone evasion behaviours of Section IV-B, in the full
//! simulator: each prevents *isolation* (a false negative) but never
//! produces a false positive, and the attack itself is still prevented
//! (the source never entrusts data to the attacker).

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    run_trial, AttackSetup, MaliciousNode, ScenarioConfig, TrialClass, TrialSpec,
};

fn zone_spec(seed: u64, evasion: EvasionPolicy) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::Single { cluster: 9 },
        evasion,
        source_cluster: 1,
        dest_cluster: Some(6),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn no_evasion_in_zone_is_still_caught() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &zone_spec(90_011, EvasionPolicy::None));
    assert_eq!(
        outcome.class,
        TrialClass::TruePositive,
        "{:?}",
        outcome.detections
    );
}

#[test]
fn acting_legitimately_prevents_detection_but_also_the_attack() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &zone_spec(90_021, EvasionPolicy::ActLegitimately));
    // Dormant from trial start (it spawns inside the zone): it never lures,
    // so nothing is reportable…
    assert!(!outcome.attacker_confirmed);
    assert!(!outcome.honest_confirmed, "and nobody is framed for it");
    // …and, crucially, it also never swallows data: prevention.
    assert_eq!(outcome.data_dropped_by_attacker, 0);
}

#[test]
fn fleeing_attacker_escapes_isolation() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &zone_spec(90_031, EvasionPolicy::Flee));
    assert!(
        !outcome.attacker_revoked,
        "it left before the probes completed"
    );
    assert!(!outcome.honest_confirmed);
    assert_eq!(outcome.class, TrialClass::FalseNegative);
}

#[test]
fn identity_renewal_can_dodge_the_probes() {
    let cfg = ScenarioConfig::small_test();
    let spec = zone_spec(90_041, EvasionPolicy::RenewIdentity);
    let outcome = run_trial(&cfg, &spec);
    // Whatever happened, no honest node may be blamed.
    assert!(!outcome.honest_confirmed);
    // The attacker either dodged (FN) or got caught before renewing (TP);
    // both occur depending on timing. What must never happen is a FP.
    assert!(matches!(
        outcome.class,
        TrialClass::FalseNegative | TrialClass::TruePositive
    ));
}

#[test]
fn renewed_identity_is_tracked_in_addr_history() {
    use blackdp_sim::Time;
    let cfg = ScenarioConfig::small_test();
    let spec = zone_spec(90_051, EvasionPolicy::RenewIdentity);
    let mut built = blackdp_scenario::build_scenario(&cfg, &spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let attacker = built
        .world
        .get::<MaliciousNode>(built.attackers[0])
        .expect("attacker node");
    // If the renewal went through, the history has both pseudonyms — the
    // metrics layer uses this to avoid misclassifying a confirmation of
    // the *old* identity.
    assert!(!attacker.addr_history().is_empty());
    if attacker.addr_history().len() > 1 {
        assert_ne!(attacker.addr_history()[0], attacker.addr_history()[1]);
    }
}
