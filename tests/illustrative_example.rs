//! Replays the paper's Section III-B.3 illustrative example at message
//! level: the exact `RREQ₁ ⟨seq 0⟩ → RREP₁ ⟨250⟩ → RREQ₂ ⟨251⟩ →
//! RREP₂ ⟨300, next-hop B₂⟩` exchange, the teammate check, and the
//! isolation chain `c₂ → ta₁ → {c₁, ta₂}`.

use blackdp::{
    addr_of, AuthorityNode, BlackDpConfig, BlackDpMessage, ChAction, ChEvent, ClusterHead, DReq,
    DetectionOutcome, JoinBody, Sealed, SuspicionReason, TaAction, Wire,
};
use blackdp_aodv::{Addr, Message as AodvMessage, Rrep, Rreq};
use blackdp_crypto::{Certificate, Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    rng: StdRng,
    ta1: TrustedAuthority,
    c2: ClusterHead,
}

fn setup() -> Setup {
    let mut rng = StdRng::seed_from_u64(33);
    let root = Keypair::generate(&mut rng);
    let ta1 = TrustedAuthority::with_keypair(TaId(1), root);
    let c2 = ClusterHead::new(
        ClusterId(2),
        Addr(900_002),
        TaId(1),
        ta1.public_key(),
        3,
        BlackDpConfig::default(),
        7,
    );
    Setup { rng, ta1, c2 }
}

fn enroll(s: &mut Setup, lt: u64) -> (Keypair, Certificate) {
    let keys = Keypair::generate(&mut s.rng);
    let cert = s.ta1.enroll(
        LongTermId(lt),
        keys.public(),
        Time::ZERO,
        Duration::from_secs(600),
        &mut s.rng,
    );
    (keys, cert)
}

fn join(s: &mut Setup, keys: &Keypair, cert: Certificate) {
    let jreq = Sealed::seal(
        JoinBody {
            pos_x: 1_600.0,
            pos_y: 50.0,
            speed_kmh: 60.0,
            forward: true,
        },
        cert,
        None,
        keys,
        &mut s.rng,
    );
    let _ = s.c2.handle_blackdp(
        addr_of(cert.pseudonym),
        BlackDpMessage::Jreq(jreq),
        Time::ZERO,
    );
}

fn probe_to(actions: &[ChAction], to: Addr) -> Option<Rreq> {
    actions.iter().find_map(|a| match a {
        ChAction::Radio {
            to: t,
            wire: Wire::Aodv(AodvMessage::Rreq(r)),
        } if *t == to => Some(*r),
        _ => None,
    })
}

#[test]
fn section_3b3_walkthrough() {
    let mut s = setup();

    // {v4, vB1, vB2, v5} ∈ C2 — we register the two attackers.
    let (b1_keys, b1_cert) = enroll(&mut s, 66);
    let (b2_keys, b2_cert) = enroll(&mut s, 67);
    join(&mut s, &b1_keys, b1_cert);
    join(&mut s, &b2_keys, b2_cert);
    let b1 = addr_of(b1_cert.pseudonym);
    let b2 = addr_of(b2_cert.pseudonym);

    // v1 ∈ C1 reports vB1 to its CH; c1 forwards the d_req to c2 (modeled
    // here as the already-forwarded message arriving at c2 with the
    // d_req + forward packets spent).
    let dreq = DReq {
        reporter: blackdp_crypto::PseudonymId(1),
        reporter_cluster: ClusterId(1),
        suspect: b1,
        suspect_cluster: Some(ClusterId(2)),
        reason: SuspicionReason::NoHelloResponse,
    };
    let t0 = Time::from_secs(1);
    let actions = s.c2.handle_blackdp(
        Addr(900_001),
        BlackDpMessage::ForwardedDetection {
            dreq,
            packets_so_far: 2,
        },
        t0,
    );

    // RREQ₁ = ⟨Dest: fake, Src: disposable, Dest_seq#: 0⟩.
    let rreq1 = probe_to(&actions, b1).expect("RREQ1 sent to B1");
    assert_eq!(rreq1.dest_seq, Some(0));
    assert!(!rreq1.next_hop_inquiry);
    assert_ne!(
        rreq1.orig,
        s.c2.addr(),
        "a disposable identity, not the RSU's"
    );
    assert!(s.c2.is_probe_orig(rreq1.orig));

    // RREP₁ = ⟨Dest_seq#: 250⟩ "as fast as possible".
    let rrep1 = Rrep {
        dest: rreq1.dest,
        dest_seq: 250,
        orig: rreq1.orig,
        hop_count: 4,
        lifetime: Duration::from_secs(6),
        next_hop: None,
    };
    let t1 = t0 + Duration::from_millis(10);
    let actions = s.c2.on_probe_rrep(b1, &rrep1, t1);
    assert!(actions.is_empty(), "RREQ2 deferred by processing delay");

    // RREQ₂ = ⟨Dest_seq#: 251, Next_Hop inquiry⟩.
    let t2 = t1 + Duration::from_millis(150);
    let actions = s.c2.tick(t2);
    let rreq2 = probe_to(&actions, b1).expect("RREQ2 sent to B1");
    assert_eq!(rreq2.dest_seq, Some(251), "exactly RREP1's seq + 1");
    assert!(rreq2.next_hop_inquiry);

    // RREP₂ = ⟨Dest_seq#: 300, Next_Hop: vB2⟩.
    let rrep2 = Rrep {
        dest: rreq2.dest,
        dest_seq: 300,
        orig: rreq2.orig,
        hop_count: 4,
        lifetime: Duration::from_secs(6),
        next_hop: Some(b2),
    };
    let t3 = t2 + Duration::from_millis(10);
    let actions = s.c2.on_probe_rrep(b1, &rrep2, t3);

    // c2 "needs to verify that by sending a RREQ includes this claim to
    // vB2".
    let rreq3 = probe_to(&actions, b2).expect("teammate probe to B2");
    assert_eq!(rreq3.dest, rreq1.dest, "same fake destination");

    // "If Node vB2 supports the claim … considered as a cooperative
    // attacker".
    let rrep3 = Rrep {
        dest: rreq3.dest,
        dest_seq: 400,
        orig: rreq3.orig,
        hop_count: 2,
        lifetime: Duration::from_secs(6),
        next_hop: None,
    };
    let t4 = t3 + Duration::from_millis(10);
    let actions = s.c2.on_probe_rrep(b2, &rrep3, t4);

    let (outcome, packets) = actions
        .iter()
        .find_map(|a| match a {
            ChAction::Event(ChEvent::DetectionConcluded {
                outcome, packets, ..
            }) => Some((*outcome, *packets)),
            _ => None,
        })
        .expect("detection concluded");
    assert_eq!(
        outcome,
        DetectionOutcome::ConfirmedCooperative { teammate: b2 }
    );
    // 2 (d_req + forward) + RREQ1 + RREP1 + RREQ2 + RREP2 + RREQ3 + RREP3
    // + cross-cluster response (2 legs) = 10: inside the paper's 8–11
    // cooperative band.
    assert_eq!(packets, 10);

    // Isolation: revocation requests for BOTH attackers go to ta1.
    let revocations: Vec<_> = actions
        .iter()
        .filter_map(|a| match a {
            ChAction::WiredTa {
                ta,
                msg: BlackDpMessage::RevocationRequest { suspect, .. },
            } => Some((*ta, *suspect)),
            _ => None,
        })
        .collect();
    assert_eq!(revocations.len(), 2);
    assert!(revocations.iter().all(|(ta, _)| *ta == TaId(1)));

    // ta1 revokes, notifies its CHs {c1, c2}, and tells ta2 to pause the
    // owner's renewals and spread the notice.
    let mut ta1_node = AuthorityNode::new(
        s.ta1,
        vec![ClusterId(1), ClusterId(2)],
        vec![TaId(2)],
        Duration::from_secs(600),
        5,
    );
    let ta_actions = ta1_node.handle(
        BlackDpMessage::RevocationRequest {
            suspect: b1_cert.pseudonym,
            reporting_cluster: ClusterId(2),
        },
        false,
        t4,
    );
    let ch_notices = ta_actions
        .iter()
        .filter(|a| {
            matches!(
                a,
                TaAction::WiredCh {
                    msg: BlackDpMessage::Revoked(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(ch_notices, 2, "c1 and c2 both get the notice");
    assert!(ta_actions.iter().any(|a| matches!(
        a,
        TaAction::WiredTa {
            ta: TaId(2),
            msg: BlackDpMessage::PauseRenewal { .. }
        }
    )));
    // The attacker can no longer renew its certificate anywhere in ta1's
    // domain.
    let keys = Keypair::generate(&mut s.rng);
    let refused = ta1_node.handle(
        BlackDpMessage::RenewRequest {
            current: b1_cert.pseudonym,
            issuer: TaId(1),
            new_key: keys.public(),
            reply_cluster: ClusterId(2),
        },
        false,
        t4 + Duration::from_secs(1),
    );
    assert!(refused.iter().any(|a| matches!(
        a,
        TaAction::WiredCh {
            msg: BlackDpMessage::RenewReply { cert: None, .. },
            ..
        }
    )));
}

/// Golden-trace snapshot: the full-simulation version of the illustrative
/// example (single attacker in cluster 2 that moves after answering the
/// first probe, Table-I test geometry, seed 42) must replay the exact
/// event journal pinned under `results/golden/`. Any protocol-visible
/// behavior change shows up as a first-divergence diff here and requires
/// an explicit snapshot refresh:
///
/// ```text
/// cargo run --release -p blackdp-bench --bin fuzz -- golden
/// ```
///
/// (or run this test with `BLACKDP_UPDATE_GOLDEN=1`).
#[test]
fn golden_trace_snapshot_matches() {
    use blackdp_scenario::{
        decode_trace, diff_traces, encode_trace, record_trial, FaultSpec, ScenarioConfig,
        TrialSpec,
    };

    let cfg = ScenarioConfig::small_test();
    let mut spec = TrialSpec::single(42, 2, cfg.plan().cluster_count());
    spec.attacker_moves = true;

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden/illustrative_example.trace");
    let (_, fresh) = record_trial(&cfg, &spec, &FaultSpec::none());
    assert!(!fresh.is_empty(), "illustrative example produced no events");

    if std::env::var_os("BLACKDP_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, encode_trace(&fresh)).expect("write golden trace");
        return;
    }

    let bytes = std::fs::read(path).expect(
        "golden trace missing — generate with `cargo run --release -p \
         blackdp-bench --bin fuzz -- golden`",
    );
    let expected = decode_trace(&bytes).expect("golden trace decodes");
    if let Some(divergence) = diff_traces(&expected, &fresh) {
        panic!("illustrative example diverged from golden trace:\n{divergence}");
    }
}
