//! "There may be multiple black hole attackers in the network"
//! (Section III-A, Attack Model): independent attackers in different
//! clusters are detected in parallel by their respective cluster heads.

use blackdp::DetectionOutcome;
use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    build_scenario, harvest, run_trial, AttackSetup, MaliciousNode, ScenarioConfig, TrialSpec,
};
use blackdp_sim::Time;

fn spec(seed: u64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::MultipleSingles {
            clusters: [2, 4, 0, 0],
        },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(7),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn builder_places_each_attacker_in_its_cluster() {
    let cfg = ScenarioConfig::small_test();
    let built = build_scenario(&cfg, &spec(91_001));
    assert_eq!(built.attackers.len(), 2);
    let clusters: Vec<u32> = built
        .attackers
        .iter()
        .map(|&a| {
            let pos = built.world.position_of(a).unwrap();
            built.plan.cluster_of(pos).unwrap().0
        })
        .collect();
    assert_eq!(clusters, vec![2, 4]);
}

#[test]
fn both_independent_attackers_are_confirmed() {
    let cfg = ScenarioConfig::small_test();
    let s = spec(91_011);
    let mut built = build_scenario(&cfg, &s);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let outcome = harvest(&cfg, &s, &built);

    // Collect every attacker address and check each got its own
    // ConfirmedSingle episode (not a cooperative misclassification).
    let attacker_addrs: Vec<_> = built
        .attackers
        .iter()
        .map(|&a| built.world.get::<MaliciousNode>(a).unwrap().addr())
        .collect();
    for addr in &attacker_addrs {
        let confirmed = outcome
            .detections
            .iter()
            .any(|(s, o, _)| s == addr && matches!(o, DetectionOutcome::ConfirmedSingle));
        assert!(
            confirmed,
            "attacker {addr} not confirmed: {:?}",
            outcome.detections
        );
    }
    assert!(
        !outcome.honest_confirmed,
        "zero false positives still holds"
    );
}

#[test]
fn classification_requires_all_attackers_nothing_extra() {
    let cfg = ScenarioConfig::small_test();
    let outcome = run_trial(&cfg, &spec(91_021));
    assert!(outcome.attacker_confirmed);
    assert!(outcome.attacker_revoked, "both certs revoked via the TAs");
    assert_eq!(
        outcome.detections.len(),
        outcome
            .detections
            .iter()
            .map(|(s, _, _)| *s)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        "each suspect concluded exactly once (verification-table dedup)"
    );
}
