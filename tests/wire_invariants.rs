//! Wire-level protocol invariants, audited with the frame journal: what
//! actually travels over the air must match what the paper's design
//! promises.

use blackdp_scenario::{
    attach_journal, build_scenario, harvest, RsuNode, ScenarioConfig, TrialSpec,
};
use blackdp_sim::{Channel, Time};

#[test]
fn probe_frames_never_reveal_the_rsu_address() {
    // Section III-B: the CH generates "a disposable identity that is used
    // to fool the attacker ... make attacker feel safe". So no radio frame
    // carrying a probe RREQ may use the RSU's protocol address as its
    // link-layer source.
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(52_001, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    let journal = attach_journal(&mut built);
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    let rsu_addrs: Vec<_> = built
        .rsus
        .iter()
        .map(|&r| built.world.get::<RsuNode>(r).unwrap().cluster_head().addr())
        .collect();
    let journal = journal.borrow();
    // Probe RREQs are TTL-limited unicasts sent by RSU nodes.
    let rsu_nodes: Vec<_> = built.rsus.clone();
    let leaked = journal
        .entries()
        .iter()
        .filter(|e| e.kind == "rreq" && rsu_nodes.contains(&e.from))
        .filter(|e| rsu_addrs.contains(&e.src))
        .count();
    assert_eq!(leaked, 0, "a probe RREQ leaked the RSU identity");
    // ...and at least one disposable-identity probe actually flew.
    let probes = journal
        .entries()
        .iter()
        .filter(|e| e.kind == "rreq" && rsu_nodes.contains(&e.from))
        .count();
    assert!(probes >= 2, "expected RREQ1+RREQ2 probes, saw {probes}");
}

#[test]
fn detection_traffic_is_a_sliver_of_total_traffic() {
    // "Lightweight": the detection-plane frames (d_req, forwards,
    // responses, revocations) must be a tiny fraction of overall traffic.
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(52_011, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    let journal = attach_journal(&mut built);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let journal = journal.borrow();
    let detection: usize = [
        "dreq",
        "dreq_fwd",
        "handoff",
        "dresp",
        "revoke_req",
        "revoked",
    ]
    .iter()
    .map(|k| journal.count_kind(k))
    .sum();
    let total = journal.len();
    assert!(detection > 0, "detection happened");
    assert!(
        detection * 20 < total,
        "detection traffic {detection} of {total} frames is not lightweight"
    );
}

#[test]
fn wired_backbone_carries_only_blackdp_control_traffic() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(52_021, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    let journal = attach_journal(&mut built);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let journal = journal.borrow();
    for e in journal.entries() {
        if e.channel == Channel::Wired {
            assert!(
                matches!(
                    e.kind,
                    "dreq_fwd"
                        | "handoff"
                        | "dresp"
                        | "revoke_req"
                        | "revoked"
                        | "pause"
                        | "renew_req"
                        | "renew_reply"
                ),
                "unexpected wired frame kind {:?}",
                e.kind
            );
        }
    }
}

#[test]
fn journal_agrees_with_harvested_outcome() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(52_031, 2, 10);
    let mut built = build_scenario(&cfg, &spec);
    let journal = attach_journal(&mut built);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let outcome = harvest(&cfg, &spec, &built);
    let journal = journal.borrow();
    if outcome.attacker_confirmed {
        assert!(
            journal.count_kind("revoke_req") >= 1,
            "a confirmation must produce a wired revocation request"
        );
        assert!(
            journal.count_kind("revoked") >= 1,
            "the TA must distribute revocation notices"
        );
        assert!(
            journal.count_kind("blacklist") >= 1,
            "CHs must advise members of the new blacklist entry"
        );
    }
}
