//! Chaos harness: randomized infrastructure-fault schedules against the
//! detection pipeline. The invariants under arbitrary (bounded) fault
//! injection:
//!
//! - no trial panics;
//! - no honest vehicle is ever confirmed (zero false positives survive
//!   crashes, partitions, and degraded mode);
//! - every injected crash restarts, and the staged attacker is still
//!   confirmed after the infrastructure recovers;
//! - an RSU crash *mid-detection* rebuilds its member table and re-runs
//!   the probe ladder to a confirmation.

use blackdp::ChEvent;
use blackdp_scenario::{
    build_scenario, harvest, run_fault_trial, FaultSpec, RsuCrash, RsuNode, ScenarioConfig,
    TrialSpec,
};
use blackdp_sim::{Duration, Time};

/// Twenty-plus randomized schedules: zero FP, full recovery, attacker
/// still caught.
#[test]
fn randomized_fault_schedules_never_break_detection() {
    let cfg = ScenarioConfig::small_test();
    let clusters = cfg.plan().cluster_count();
    for seed in 0..22u64 {
        // Sweep the intensity band with the seed so every run mixes
        // crash-only and full-chaos schedules.
        let intensity = 0.4 + 0.2 * (seed % 4) as f64;
        let faults = FaultSpec::randomized(seed, intensity, &cfg);
        let spec = TrialSpec::single(4_000 + seed * 17, 2, clusters);
        let outcome = run_fault_trial(&cfg, &spec, &faults);

        assert!(
            !outcome.base.honest_confirmed,
            "seed {seed}: a fault schedule produced a false positive"
        );
        assert_eq!(
            outcome.crashes, outcome.restarts,
            "seed {seed}: every scheduled crash must restart within the run"
        );
        assert!(
            outcome.base.attacker_confirmed,
            "seed {seed} (intensity {intensity}): attacker escaped under faults {faults:?}"
        );
    }
}

/// A fault-free `run_fault_trial` is the plain trial, byte for byte.
#[test]
fn empty_fault_schedule_matches_plain_trial() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec::single(77, 2, cfg.plan().cluster_count());
    let plain = blackdp_scenario::run_trial(&cfg, &spec);
    let faulted = run_fault_trial(&cfg, &spec, &FaultSpec::none());
    assert_eq!(faulted.crashes, 0);
    assert_eq!(faulted.time_to_recover, None);
    assert_eq!(plain.class, faulted.base.class);
    assert_eq!(plain.detections, faulted.base.detections);
    assert_eq!(plain.data_delivered, faulted.base.data_delivered);
    assert_eq!(plain.detection_packets, faulted.base.detection_packets);
}

/// The acceptance scenario: the suspect's own CH dies *mid-episode*,
/// comes back with nothing, rebuilds its member table from re-joins, and
/// re-runs the probe ladder to a confirmation.
#[test]
fn rsu_crash_mid_detection_recovers_and_reconfirms() {
    let cfg = ScenarioConfig::small_test();
    let clusters = cfg.plan().cluster_count();
    // Attacker in the source's own cluster: the d_req lands directly at
    // the CH we are about to kill.
    let spec = TrialSpec::single(9_101, 1, clusters);

    // Probe run: find when the episode is in flight.
    let (t_start, t_end) = {
        let mut built = build_scenario(&cfg, &spec);
        built.world.run_until(Time::ZERO + cfg.sim_duration);
        let rsu = built
            .world
            .get::<RsuNode>(built.rsus[0])
            .expect("cluster-1 RSU");
        let started = rsu
            .timeline()
            .iter()
            .find(|(_, e)| matches!(e, ChEvent::DetectionStarted { .. }))
            .map(|(t, _)| *t)
            .expect("fault-free run must start a detection");
        let concluded = rsu
            .timeline()
            .iter()
            .find(|(_, e)| matches!(e, ChEvent::DetectionConcluded { .. }))
            .map(|(t, _)| *t)
            .expect("fault-free run must conclude");
        assert!(harvest(&cfg, &spec, &built).attacker_confirmed);
        (started, concluded)
    };
    assert!(t_end > t_start);

    // Chaos run: same seed, CH crash halfway through the episode.
    let crash_at = t_start + Duration::from_micros(t_end.saturating_since(t_start).as_micros() / 2);
    let faults = FaultSpec {
        rsu_crashes: vec![RsuCrash {
            cluster: 1,
            at: crash_at.saturating_since(Time::ZERO),
            down_for: Some(Duration::from_secs(2)),
        }],
        ..FaultSpec::none()
    };
    let mut built = build_scenario(&cfg, &spec);
    built.world.install_faults(faults.realize(&cfg, &built));
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    let rsu = built
        .world
        .get::<RsuNode>(built.rsus[0])
        .expect("cluster-1 RSU");
    let timeline = rsu.timeline();
    let restart_idx = timeline
        .iter()
        .position(|(_, e)| matches!(e, ChEvent::Restarted))
        .expect("the crash must surface as a Restarted event");
    let after = &timeline[restart_idx + 1..];
    assert!(
        after
            .iter()
            .any(|(_, e)| matches!(e, ChEvent::MemberJoined(_))),
        "members must re-register after the restart: {timeline:?}"
    );
    assert!(
        after
            .iter()
            .any(|(_, e)| matches!(e, ChEvent::DetectionStarted { .. })),
        "the probe ladder must re-run after the restart: {timeline:?}"
    );

    let outcome = harvest(&cfg, &spec, &built);
    assert!(
        outcome.attacker_confirmed,
        "the re-run ladder must still confirm the attacker"
    );
    assert!(!outcome.honest_confirmed);

    // The world-level fault counters agree with what we scheduled.
    assert_eq!(built.world.stats().get("fault.crash"), 1);
    assert_eq!(built.world.stats().get("fault.restart"), 1);
}
