//! Determinism suite for event-sourced checkpoint/restore.
//!
//! The contract under test: for any trial, resuming from *any* checkpoint
//! of its snapshot reproduces the uninterrupted run bit-for-bit — same
//! outcome, same delivery trace — and the checkpointed recorder itself is
//! observationally identical to the plain one. Exercised across the
//! fuzz trigger corpus (each file a once-bug-provoking scenario shape)
//! plus the baseline case, with sizes capped so the suite stays cheap in
//! debug builds.

use blackdp_scenario::{
    atomic_write, nearest_checkpoint, record_trial, record_trial_with_checkpoints, resume_trial,
    FuzzCase, Snapshot, CORPUS_TAG,
};
use blackdp_sim::Duration;

/// Caps a corpus case so debug-mode replays stay fast without changing
/// its structural shape (attack family, evasion, radio imperfections).
fn capped(mut case: FuzzCase) -> FuzzCase {
    case.sim_secs = case.sim_secs.min(8);
    case.vehicles = case.vehicles.min(28);
    case.data_packets = case.data_packets.min(8);
    case
}

/// Loads the checked-in trigger corpus (comment lines skipped).
fn corpus_cases() -> Vec<FuzzCase> {
    let mut cases = Vec::new();
    let mut files: Vec<_> = std::fs::read_dir("results/fuzz_corpus")
        .expect("fuzz corpus present")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read case");
        for line in text.lines() {
            if line.starts_with(CORPUS_TAG) {
                cases.push(FuzzCase::parse_line(line).expect("parse corpus case"));
            }
        }
    }
    assert!(!cases.is_empty(), "corpus is empty");
    cases
}

fn checkpoint_interval(case: &FuzzCase) -> Duration {
    let horizon = case.config().sim_duration.as_micros();
    Duration::from_micros((horizon / 4).max(1))
}

/// Asserts the full contract for one case: checkpointed run ≡ plain run,
/// and resume from every checkpoint ≡ plain run.
fn assert_resumable(case: &FuzzCase) {
    let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
    let (plain_outcome, plain_events) = record_trial(&cfg, &spec, &faults);
    let (outcome, events, snapshot) =
        record_trial_with_checkpoints(&cfg, &spec, &faults, checkpoint_interval(case));
    assert_eq!(outcome, plain_outcome, "checkpointing perturbed the outcome");
    assert_eq!(events, plain_events, "checkpointing perturbed the trace");
    assert!(!snapshot.stamps.is_empty());

    for from in 0..snapshot.stamps.len() {
        let (resumed_outcome, resumed_events) =
            resume_trial(&cfg, &spec, &faults, &snapshot, from)
                .unwrap_or_else(|e| panic!("resume from checkpoint {from} failed: {e}"));
        assert_eq!(
            resumed_outcome, plain_outcome,
            "outcome diverged resuming from checkpoint {from}"
        );
        assert_eq!(
            resumed_events, plain_events,
            "trace diverged resuming from checkpoint {from}"
        );
    }
}

#[test]
fn baseline_case_resumes_from_every_checkpoint() {
    assert_resumable(&capped(FuzzCase::baseline(5)));
}

#[test]
fn corpus_cases_resume_from_every_checkpoint() {
    for (i, case) in corpus_cases().into_iter().enumerate() {
        let case = capped(case);
        eprintln!("corpus case {i}: {}", case.to_line());
        assert_resumable(&case);
    }
}

#[test]
fn false_suspicion_trials_resume_identically() {
    // False-suspicion staging pre-advances the world to t = 2 s before
    // injecting the forged report; checkpoint boundaries inside that
    // window are no-op `run_until` calls and must stay consistent between
    // capture and resume.
    let mut case = capped(FuzzCase::baseline(9));
    case.attack_kind = 1;
    case.attack_a = 1;
    assert_resumable(&case);
}

#[test]
fn snapshots_resume_across_backends_in_both_directions() {
    // The execution backend is normalized out of the trial fingerprint,
    // so a snapshot recorded under one backend must resume under any
    // other — and every checkpoint witness (engine stamp, chained trace
    // checksum) is verified during the replay, so a passing resume *is*
    // the proof that the backends agree bit-for-bit at every boundary.
    // 70 vehicles put the world past the small-world scan threshold.
    let mut case = FuzzCase::baseline(11);
    case.vehicles = 70;
    case.sim_secs = 6;
    let (spec, faults) = (case.spec(), case.faults());

    let serial_cfg = case.config();
    let mut sharded = case.clone();
    sharded.shards = 2;
    let sharded_cfg = sharded.config();

    // Record serially, resume sharded (shard counts 2 and 7)…
    let (outcome, events, snapshot) =
        record_trial_with_checkpoints(&serial_cfg, &spec, &faults, checkpoint_interval(&case));
    for shards in [2u32, 7] {
        let mut resume_case = case.clone();
        resume_case.shards = shards;
        let cfg = resume_case.config();
        for from in 0..snapshot.stamps.len() {
            let (resumed_outcome, resumed_events) =
                resume_trial(&cfg, &spec, &faults, &snapshot, from).unwrap_or_else(|e| {
                    panic!("serial snapshot failed to resume under {shards} shard(s): {e}")
                });
            assert_eq!(resumed_outcome, outcome, "outcome drift, {shards} shard(s)");
            assert_eq!(resumed_events, events, "trace drift, {shards} shard(s)");
        }
    }

    // …and record sharded, resume serially.
    let (sh_outcome, sh_events, sh_snapshot) =
        record_trial_with_checkpoints(&sharded_cfg, &spec, &faults, checkpoint_interval(&case));
    assert_eq!(sh_outcome, outcome, "sharded recorder diverged from serial");
    assert_eq!(sh_events, events);
    for from in 0..sh_snapshot.stamps.len() {
        let (resumed_outcome, resumed_events) =
            resume_trial(&serial_cfg, &spec, &faults, &sh_snapshot, from)
                .unwrap_or_else(|e| panic!("sharded snapshot failed to resume serially: {e}"));
        assert_eq!(resumed_outcome, outcome);
        assert_eq!(resumed_events, events);
    }
}

#[test]
fn snapshot_survives_a_disk_round_trip() {
    let case = capped(FuzzCase::baseline(3));
    let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
    let (_, events, snapshot) =
        record_trial_with_checkpoints(&cfg, &spec, &faults, checkpoint_interval(&case));

    let dir = std::env::temp_dir().join(format!("blackdp_snapshot_rt_{}", std::process::id()));
    let path = dir.join("trial.snap");
    atomic_write(&path, &snapshot.encode()).expect("persist snapshot");
    let loaded = Snapshot::decode(&std::fs::read(&path).expect("read back")).expect("decode");
    assert_eq!(loaded, snapshot);

    let from = nearest_checkpoint(&loaded, cfg.sim_duration.as_micros() / 2)
        .expect("mid-run checkpoint exists");
    let (_, resumed_events) =
        resume_trial(&cfg, &spec, &faults, &loaded, from).expect("resume from disk snapshot");
    assert_eq!(resumed_events, events);
    let _ = std::fs::remove_dir_all(&dir);
}
