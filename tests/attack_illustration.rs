//! Reproduces Figure 1's attack semantics as tests: the single black hole
//! wins route selection with an inflated sequence number (1a), and the
//! cooperative pair endorses each other (1b) — plus the data-plane
//! consequence (packets vanish).

use blackdp::Wire;
use blackdp_aodv::{Action, Addr, Aodv, AodvConfig, Event, Message, Rreq};
use blackdp_attacks::{AttackerAction, AttackerConfig, BlackHole};
use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attacker(
    rng: &mut StdRng,
    ta: &mut TrustedAuthority,
    lt: u64,
    cfg: AttackerConfig,
) -> BlackHole {
    let keys = Keypair::generate(rng);
    let cert = ta.enroll(
        LongTermId(lt),
        keys.public(),
        Time::ZERO,
        Duration::from_secs(600),
        rng,
    );
    BlackHole::new(keys, cert, cfg, lt)
}

/// Figure 1(a): node 1 requests a route with SN 0; an honest node's cache
/// answers SN 20; the attacker answers SN ≥ 120 and AODV (freshest wins)
/// routes through the attacker.
#[test]
fn figure_1a_single_black_hole_wins_route_selection() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let mut bh = attacker(&mut rng, &mut ta, 66, AttackerConfig::default());

    let mut source = Aodv::new(Addr(1), AodvConfig::default());
    let dest = Addr(5);
    let honest = Addr(3);

    // Source floods.
    let rreq = source
        .send_data(dest, Time::ZERO)
        .into_iter()
        .find_map(|a| match a {
            Action::Broadcast {
                msg: Message::Rreq(r),
            } => Some(r),
            _ => None,
        })
        .expect("RREQ");

    // Honest cached reply: SN 20 via node 3.
    let honest_rrep = blackdp_aodv::Rrep {
        dest,
        dest_seq: 20,
        orig: Addr(1),
        hop_count: 2,
        lifetime: Duration::from_secs(6),
        next_hop: None,
    };
    let _ = source.handle_message(honest, Message::Rrep(honest_rrep), Time::ZERO);

    // Attacker's forged reply.
    let forged = bh
        .handle_wire(Addr(2), &Wire::Aodv(Message::Rreq(rreq)), Time::ZERO)
        .into_iter()
        .find_map(|a| match a {
            AttackerAction::SendTo {
                wire: Wire::SecuredRrep { rrep, .. },
                ..
            } => Some(rrep),
            _ => None,
        })
        .expect("forged RREP");
    assert!(forged.dest_seq >= 120, "SN 120 in the paper's example");
    let _ = source.handle_message(Addr(2), Message::Rrep(forged), Time::ZERO);

    // The freshest route wins: traffic now flows toward the attacker.
    let route = source
        .routes()
        .lookup_usable(dest, Time::ZERO)
        .expect("route");
    assert_eq!(route.next_hop, Addr(2), "the attacker's direction won");
    assert_eq!(route.dest_seq, Some(forged.dest_seq));

    // And the data plane consequence: the attacker swallows everything.
    let actions = source.send_data(dest, Time::ZERO);
    let data = actions
        .iter()
        .find_map(|a| match a {
            Action::SendTo {
                msg: Message::Data(d),
                ..
            } => Some(*d),
            _ => None,
        })
        .expect("data sent toward the black hole");
    let swallowed = bh.handle_wire(Addr(1), &Wire::Aodv(Message::Data(data)), Time::ZERO);
    assert!(swallowed.iter().any(|a| matches!(
        a,
        AttackerAction::Event(blackdp_attacks::AttackerEvent::DroppedData(_))
    )));
    assert_eq!(bh.dropped_count(), 1);
}

/// Figure 1(b): B₁ names B₂ as its next hop when asked; B₂, asked about
/// the same fabricated route, supports the claim.
#[test]
fn figure_1b_cooperative_endorsement() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let mut b2 = attacker(&mut rng, &mut ta, 67, AttackerConfig::default());
    let mut b1 = attacker(
        &mut rng,
        &mut ta,
        66,
        AttackerConfig {
            teammate: Some(b2.addr()),
            ..AttackerConfig::default()
        },
    );

    // A verifier (any node) asks B1 with a next-hop inquiry.
    let inquiry = Rreq {
        rreq_id: 9,
        dest: Addr(10),
        dest_seq: Some(251),
        orig: Addr(50),
        orig_seq: 1,
        hop_count: 0,
        ttl: 1,
        next_hop_inquiry: true,
    };
    let rrep1 = b1
        .handle_wire(Addr(50), &Wire::Aodv(Message::Rreq(inquiry)), Time::ZERO)
        .into_iter()
        .find_map(|a| match a {
            AttackerAction::SendTo {
                wire: Wire::SecuredRrep { rrep, .. },
                ..
            } => Some(rrep),
            _ => None,
        })
        .expect("B1 answers");
    assert_eq!(rrep1.next_hop, Some(b2.addr()), "B1 discloses B2");
    assert!(rrep1.dest_seq > 251);

    // B2 "approves B1's message to fool the source".
    let check = Rreq {
        rreq_id: 10,
        dest: Addr(10),
        dest_seq: Some(0),
        orig: Addr(50),
        orig_seq: 2,
        hop_count: 0,
        ttl: 1,
        next_hop_inquiry: false,
    };
    let endorsement = b2
        .handle_wire(Addr(50), &Wire::Aodv(Message::Rreq(check)), Time::ZERO)
        .into_iter()
        .find_map(|a| match a {
            AttackerAction::SendTo {
                wire: Wire::SecuredRrep { rrep, .. },
                ..
            } => Some(rrep),
            _ => None,
        });
    assert!(endorsement.is_some(), "B2 supports the fabricated route");
}

/// An honest AODV node, by contrast, never answers a request for a
/// destination it has no route to — the invariant the probes rely on.
#[test]
fn honest_node_never_answers_unknown_destination() {
    let mut honest = Aodv::new(Addr(3), AodvConfig::default());
    let rreq = Rreq {
        rreq_id: 1,
        dest: Addr(0xDEAD),
        dest_seq: Some(0),
        orig: Addr(50),
        orig_seq: 1,
        hop_count: 0,
        ttl: 1,
        next_hop_inquiry: false,
    };
    let actions = honest.handle_message(Addr(50), Message::Rreq(rreq), Time::ZERO);
    assert!(
        !actions.iter().any(|a| matches!(
            a,
            Action::SendTo {
                msg: Message::Rrep(_),
                ..
            }
        )),
        "zero false positives stem from this: only attackers answer fake destinations"
    );
    // It may reflood (TTL permitting) but never replies.
    let _ = actions
        .iter()
        .filter(|a| matches!(a, Action::Event(Event::DataDelivered(_))))
        .count();
}
