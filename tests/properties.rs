//! Cross-crate property-based tests (proptest) on the invariants the
//! protocol stack depends on.

use blackdp_aodv::{Addr, RoutingTable};
use blackdp_crypto::{
    sha256, Keypair, LongTermId, PseudonymId, RevocationList, RevocationNotice, TaId,
    TrustedAuthority,
};
use blackdp_mobility::{ClusterPlan, Direction, Kmh, Trajectory};
use blackdp_sim::{Duration, Time};
use proptest::prelude::*;

// Re-exported by blackdp-sim; pull in explicitly for positions.
use blackdp_sim::Position as SimPosition;

proptest! {
    /// Signatures verify for the signed message and fail for any other.
    #[test]
    fn sign_verify_roundtrip(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..256), tamper in any::<u8>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(&msg, &mut rng);
        prop_assert!(keys.public().verify(&msg, &sig));
        let mut tampered = msg.clone();
        tampered.push(tamper);
        prop_assert!(!keys.public().verify(&tampered, &sig));
    }

    /// SHA-256 streaming equals one-shot for any split point.
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let cut = split.index(data.len() + 1);
        let mut h = blackdp_crypto::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Routing-table update rule: installed sequence numbers never go
    /// backwards while the route stays valid.
    #[test]
    fn routing_table_seq_monotone_while_valid(updates in proptest::collection::vec((0u32..50, 1u64..6, 1u8..10), 1..60)) {
        let mut table = RoutingTable::new();
        let now = Time::ZERO;
        let far = Time::from_secs(1_000);
        let mut last_seq: Option<u32> = None;
        for (seq, hop_src, hops) in updates {
            table.update(Addr(9), Some(seq), Addr(hop_src), hops, far, now);
            let entry = table.lookup_usable(Addr(9), now).expect("stays valid");
            let cur = entry.dest_seq.expect("known seq");
            if let Some(prev) = last_seq {
                prop_assert!(cur >= prev, "seq went backwards: {} -> {}", prev, cur);
            }
            last_seq = Some(cur);
        }
    }

    /// Every on-highway position belongs to exactly one cluster, and that
    /// cluster's segment contains it.
    #[test]
    fn cluster_assignment_total_and_consistent(x in 0.0f64..10_000.0, y in 0.0f64..200.0) {
        let plan = ClusterPlan::paper_table1();
        let pos = SimPosition::new(x, y);
        let c = plan.cluster_of(pos).expect("on-highway positions are covered");
        prop_assert!(c.0 >= 1 && c.0 <= plan.cluster_count());
        let seg_start = (c.0 as f64 - 1.0) * plan.cluster_len_m();
        // The final boundary point folds into the last cluster.
        prop_assert!(x >= seg_start && x <= seg_start + plan.cluster_len_m());
    }

    /// Trajectories advance monotonically along +x and never teleport:
    /// distance covered equals speed times elapsed time.
    #[test]
    fn trajectory_kinematics(speed in 0.0f64..200.0, t1 in 0u64..10_000, dt in 0u64..10_000, x0 in -1_000.0f64..1_000.0) {
        let tr = Trajectory::new(
            SimPosition::new(x0, 50.0),
            Kmh(speed),
            Direction::Forward,
            Time::ZERO,
        );
        let a = tr.position_at(Time::from_millis(t1));
        let b = tr.position_at(Time::from_millis(t1 + dt));
        prop_assert!(b.x >= a.x - 1e-9);
        let expected = speed / 3.6 * (dt as f64 / 1000.0);
        prop_assert!((b.x - a.x - expected).abs() < 1e-6);
        prop_assert_eq!(a.y, b.y, "lane keeping");
    }

    /// Revocation lists: purging never removes unexpired notices and never
    /// keeps expired ones.
    #[test]
    fn revocation_purge_is_exact(notices in proptest::collection::vec((any::<u64>(), 1u64..1_000), 0..40), cutoff in 1u64..1_000) {
        let mut list = RevocationList::new();
        for (p, exp) in &notices {
            list.insert(RevocationNotice {
                pseudonym: PseudonymId(*p),
                serial: *p,
                expires: Time::from_secs(*exp),
            });
        }
        let now = Time::from_secs(cutoff);
        list.purge_expired(now);
        for n in list.iter() {
            prop_assert!(n.expires > now);
        }
        // Every unexpired, distinct pseudonym survives (with its max expiry).
        for (p, _) in &notices {
            let max_exp = notices
                .iter()
                .filter(|(q, _)| q == p)
                .map(|(_, e)| *e)
                .max()
                .unwrap();
            if Time::from_secs(max_exp) > now {
                prop_assert!(list.is_revoked(PseudonymId(*p)), "lost unexpired {p}");
            }
        }
    }

    /// TA invariant: once revoked, no sequence of renewals succeeds for
    /// any pseudonym the owner ever held.
    #[test]
    fn revocation_starves_all_pseudonyms(seed in any::<u64>(), renewals in 0usize..5) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let mut certs = vec![ta.enroll(LongTermId(7), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng)];
        for _ in 0..renewals {
            let cur = certs.last().unwrap().pseudonym;
            certs.push(ta.renew(cur, keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng).unwrap());
        }
        // Revoke the newest pseudonym…
        ta.revoke(certs.last().unwrap().pseudonym).unwrap();
        // …and every pseudonym the owner ever held is starved.
        for cert in &certs {
            prop_assert!(ta
                .renew(cert.pseudonym, keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng)
                .is_err());
        }
    }
}
