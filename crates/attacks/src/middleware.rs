//! Attacker behaviours as middleware interceptors over an honest base.
//!
//! The honest part of an attacker — terminating traffic addressed to
//! itself, learning sequence numbers from overheard packets, beaconing
//! hellos, tracking its cluster — lives in [`AttackerCore`]. Everything
//! *malicious* is an [`Interceptor`] layered in front of it:
//!
//! * [`Evasion`] — dormancy: act like an honest router while detection is
//!   suspected (reflood RREQs instead of forging).
//! * [`ForgeRrep`] — route capture: answer transit RREQs with a forged,
//!   *signed* RREP escalated past every sequence number seen.
//! * [`DropData`] — the hole itself: unconditionally ([`DropData::blackhole`])
//!   or probabilistically ([`DropData::grayhole`]) discard transit data,
//!   re-broadcasting the remainder as camouflage.
//! * [`FakeHelloReply`] — the "anonymity response": answer end-to-end
//!   Hello probes while claiming to be the destination.
//!
//! An [`AttackerStack`] drives a chain of interceptors in order; the
//! first one to return [`Intercept::Handled`] consumes the packet. The
//! classic attackers are just compositions: a black hole is
//! `[Evasion, ForgeRrep, DropData::blackhole(), FakeHelloReply]`, a gray
//! hole is `[ForgeRrep, DropData::grayhole(p, …)]` — and novel variants
//! (a cooperative gray hole with evasion, say) need no new node type.

use blackdp::{addr_of, BlackDpMessage, HelloReply, RrepBody, Sealed, SignBytes, Wire};
use blackdp_aodv::{Addr, Hello, Message as AodvMessage, Rreq, SeqNo};
use blackdp_crypto::{Certificate, Keypair, PseudonymId};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::blackhole::{AttackerAction, AttackerEvent};
use crate::forge::{forge_rrep, ForgeParams};

/// The honest substrate every attacker shares: credential, cluster
/// membership, the sequence-number gossip an AODV node passively learns,
/// the hello beacon, and the metric counters interceptors report into.
#[derive(Debug)]
pub struct AttackerCore {
    keys: Keypair,
    cert: Certificate,
    cluster: Option<ClusterId>,
    highest_seen: SeqNo,
    dormant: bool,
    seq_counter: SeqNo,
    last_hello: Option<Time>,
    dropped: u64,
    forwarded: u64,
    lured: u64,
    rng: StdRng,
}

impl AttackerCore {
    fn new(keys: Keypair, cert: Certificate, seed: u64) -> Self {
        AttackerCore {
            keys,
            cert,
            cluster: None,
            highest_seen: 0,
            dormant: false,
            seq_counter: 0,
            last_hello: None,
            dropped: 0,
            forwarded: 0,
            lured: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The attacker's current protocol address (its pseudonym).
    pub fn addr(&self) -> Addr {
        addr_of(self.cert.pseudonym)
    }

    /// The attacker's current pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.cert.pseudonym
    }

    /// The (valid, compromised-insider) certificate.
    pub fn cert(&self) -> &Certificate {
        &self.cert
    }

    /// The signing keys matching [`Self::cert`].
    pub fn keys(&self) -> &Keypair {
        &self.keys
    }

    /// The cluster learned from the latest JREP.
    pub fn cluster(&self) -> Option<ClusterId> {
        self.cluster
    }

    /// Records the cluster (JREP from the scenario's membership shell).
    pub fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.cluster = cluster;
    }

    /// True while the attacker is acting legitimately.
    pub fn is_dormant(&self) -> bool {
        self.dormant
    }

    /// Puts the attacker to sleep or wakes it (the `ActLegitimately`
    /// evasion, driven by the host node in the renewal zone).
    pub fn set_dormant(&mut self, dormant: bool) {
        self.dormant = dormant;
    }

    /// Swaps in a renewed identity (`RenewIdentity` evasion).
    pub fn renew_identity(&mut self, keys: Keypair, cert: Certificate) {
        self.keys = keys;
        self.cert = cert;
    }

    /// The highest destination sequence number observed (or claimed) so
    /// far, escalated by [`ForgeRrep`].
    pub fn highest_seen(&self) -> SeqNo {
        self.highest_seen
    }

    /// Mutable handle for interceptors that escalate the forged floor.
    pub fn highest_seen_mut(&mut self) -> &mut SeqNo {
        &mut self.highest_seen
    }

    /// Transit data packets discarded so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Transit packets deliberately forwarded (gray-hole camouflage).
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded
    }

    /// Victims lured with forged RREPs so far.
    pub fn lured_count(&self) -> u64 {
        self.lured
    }

    /// Records a discarded transit packet.
    pub fn note_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Records a camouflage forward.
    pub fn note_forwarded(&mut self) {
        self.forwarded += 1;
    }

    /// Records a lured victim.
    pub fn note_lured(&mut self) {
        self.lured += 1;
    }

    /// Signs `body` with the attacker's own valid credential — the
    /// signature verifies; only behaviour exposes the insider.
    pub fn seal<T: SignBytes>(&mut self, body: T) -> Sealed<T> {
        Sealed::seal(body, self.cert, self.cluster, &self.keys, &mut self.rng)
    }

    /// The attacker's deterministic RNG (drop lotteries etc.). Draw order
    /// is part of the scenario's reproducibility contract.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Deterministic digest of the core's full mutable state — identity,
    /// gossip, dormancy, beacon phase, metric counters, and the private
    /// RNG's exact position in its stream. Checkpoint stamps fold this in
    /// so divergence *inside* an attacker (a drop lottery gone off-script,
    /// say) is caught even when no packet has betrayed it yet.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.cert.pseudonym.0);
        mix(self.cluster.map_or(u64::MAX, |c| u64::from(c.0)));
        mix(u64::from(self.highest_seen));
        mix(u64::from(self.dormant));
        mix(u64::from(self.seq_counter));
        mix(self.last_hello.map_or(u64::MAX, |t| t.as_micros()));
        mix(self.dropped);
        mix(self.forwarded);
        mix(self.lured);
        for w in self.rng.state() {
            mix(w);
        }
        h
    }

    /// Passive learning applied to every packet before the interceptor
    /// chain runs: sequence-number gossip and JREP membership.
    fn observe(&mut self, wire: &Wire) {
        match wire {
            Wire::Aodv(AodvMessage::Rreq(rreq)) => {
                if let Some(ds) = rreq.dest_seq {
                    self.highest_seen = self.highest_seen.max(ds);
                }
            }
            Wire::Aodv(AodvMessage::Rrep(rrep)) | Wire::SecuredRrep { rrep, .. } => {
                self.highest_seen = self.highest_seen.max(rrep.dest_seq);
            }
            Wire::Aodv(AodvMessage::Hello(h)) => {
                self.highest_seen = self.highest_seen.max(h.seq);
            }
            Wire::BlackDp(BlackDpMessage::Jrep { cluster, .. }) => {
                self.cluster = Some(*cluster);
            }
            _ => {}
        }
    }

    /// True when the packet terminates at this node as genuine endpoint
    /// traffic — the honest stack consumes it and no interceptor runs.
    fn terminates_here(&self, wire: &Wire) -> bool {
        let me = self.addr();
        match wire {
            Wire::Aodv(AodvMessage::Rreq(rreq)) => rreq.dest == me || rreq.orig == me,
            Wire::Aodv(AodvMessage::Data(data)) => data.dest == me,
            Wire::BlackDp(BlackDpMessage::HelloProbe(sealed)) => sealed.body.dest == me,
            _ => false,
        }
    }
}

/// What an interceptor did with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intercept {
    /// Not mine (or only annotated): pass to the next interceptor.
    Continue,
    /// Consumed: stop the chain.
    Handled,
}

/// One middleware slot in an [`AttackerStack`].
///
/// Interceptors see every packet the honest base did not terminate, in
/// chain order, and push their output actions onto `out`. Returning
/// [`Intercept::Handled`] stops propagation.
///
/// `Send + Sync` rides along from the engine's `Node` bounds (the sharded
/// backend reads node positions from scoped threads); interceptors are only
/// ever invoked from the single-threaded event loop.
pub trait Interceptor: std::fmt::Debug + Send + Sync {
    /// A short stable name for diagnostics.
    fn name(&self) -> &'static str;

    /// Inspects (and possibly consumes) an incoming packet.
    fn on_wire(
        &mut self,
        core: &mut AttackerCore,
        from: Addr,
        wire: &Wire,
        now: Time,
        out: &mut Vec<AttackerAction>,
    ) -> Intercept;

    /// Periodic hook, driven after the base hello beacon.
    fn on_tick(&mut self, core: &mut AttackerCore, now: Time, out: &mut Vec<AttackerAction>) {
        let _ = (core, now, out);
    }

    /// Deterministic digest of any mutable state the interceptor carries,
    /// folded into [`AttackerStack::state_digest`] for checkpoint
    /// verification. The shipped interceptors are configuration-only
    /// (their dynamic state lives in [`AttackerCore`]), so the default
    /// returns 0; a stateful interceptor should override it.
    fn state_digest(&self) -> u64 {
        0
    }
}

/// Dormancy middleware (`ActLegitimately`): while the host has put the
/// core to sleep, transit RREQs are reflooded like an honest node with no
/// route instead of being answered with forgeries.
#[derive(Debug, Default)]
pub struct Evasion;

impl Interceptor for Evasion {
    fn name(&self) -> &'static str {
        "evasion"
    }

    fn on_wire(
        &mut self,
        core: &mut AttackerCore,
        _from: Addr,
        wire: &Wire,
        _now: Time,
        out: &mut Vec<AttackerAction>,
    ) -> Intercept {
        let Wire::Aodv(AodvMessage::Rreq(rreq)) = wire else {
            return Intercept::Continue;
        };
        if !core.is_dormant() {
            return Intercept::Continue;
        }
        out.push(AttackerAction::Event(AttackerEvent::WentDormant));
        if rreq.ttl > 0 {
            out.push(AttackerAction::Broadcast {
                wire: Wire::Aodv(AodvMessage::Rreq(Rreq {
                    hop_count: rreq.hop_count.saturating_add(1),
                    ttl: rreq.ttl - 1,
                    ..*rreq
                })),
            });
        }
        Intercept::Handled
    }
}

/// Route-capture middleware: answer any transit RREQ immediately with a
/// forged, signed RREP (see [`crate::forge`]). On a next-hop inquiry the
/// cooperative primary discloses its `teammate`; a lone attacker names
/// itself.
#[derive(Debug)]
pub struct ForgeRrep {
    params: ForgeParams,
    teammate: Option<Addr>,
}

impl ForgeRrep {
    /// Forging middleware with the given shape and optional teammate.
    pub fn new(params: ForgeParams, teammate: Option<Addr>) -> Self {
        ForgeRrep { params, teammate }
    }
}

impl Interceptor for ForgeRrep {
    fn name(&self) -> &'static str {
        "forge-rrep"
    }

    fn on_wire(
        &mut self,
        core: &mut AttackerCore,
        from: Addr,
        wire: &Wire,
        _now: Time,
        out: &mut Vec<AttackerAction>,
    ) -> Intercept {
        let Wire::Aodv(AodvMessage::Rreq(rreq)) = wire else {
            return Intercept::Continue;
        };
        let disclose = self.teammate.unwrap_or(core.addr());
        let mut highest = core.highest_seen();
        let rrep = forge_rrep(&self.params, &mut highest, rreq, disclose);
        *core.highest_seen_mut() = highest;
        let auth = core.seal(RrepBody(rrep));
        core.note_lured();
        out.push(AttackerAction::SendTo {
            to: from,
            wire: Wire::SecuredRrep { rrep, auth },
        });
        out.push(AttackerAction::Event(AttackerEvent::LuredVictim {
            victim: rreq.orig,
        }));
        Intercept::Handled
    }
}

/// The hole itself: discard transit data packets, and swallow end-to-end
/// Hello probes (optionally forwarding some as gray-hole camouflage).
#[derive(Debug)]
pub struct DropData {
    /// `None` drops unconditionally (black hole, no RNG draw); `Some(p)`
    /// runs the gray hole's per-packet drop lottery.
    probability: Option<f64>,
    forward_probes: bool,
}

impl DropData {
    /// The black hole: every transit data packet dies here, silently.
    pub fn blackhole() -> Self {
        DropData {
            probability: None,
            forward_probes: false,
        }
    }

    /// The gray hole: drop with probability `p`, re-broadcast the rest as
    /// camouflage; `forward_probes` extends the lottery to Hello probes.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn grayhole(p: f64, forward_probes: bool) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop_probability must be in [0, 1]"
        );
        DropData {
            probability: Some(p),
            forward_probes,
        }
    }
}

impl Interceptor for DropData {
    fn name(&self) -> &'static str {
        "drop-data"
    }

    fn on_wire(
        &mut self,
        core: &mut AttackerCore,
        _from: Addr,
        wire: &Wire,
        _now: Time,
        out: &mut Vec<AttackerAction>,
    ) -> Intercept {
        match wire {
            Wire::Aodv(AodvMessage::Data(data)) => {
                match self.probability {
                    // Black hole: unconditional, drawless drop.
                    None => {
                        core.note_dropped();
                        out.push(AttackerAction::Event(AttackerEvent::DroppedData(*data)));
                    }
                    Some(p) => {
                        if core.rng().random::<f64>() < p {
                            core.note_dropped();
                            out.push(AttackerAction::Event(AttackerEvent::DroppedData(*data)));
                            return Intercept::Handled;
                        }
                        // Camouflage: push the packet back into the network.
                        core.note_forwarded();
                        if data.ttl == 0 {
                            core.note_dropped();
                            out.push(AttackerAction::Event(AttackerEvent::DroppedData(*data)));
                            return Intercept::Handled;
                        }
                        out.push(AttackerAction::Broadcast {
                            wire: Wire::Aodv(AodvMessage::Data(blackdp_aodv::DataPacket {
                                ttl: data.ttl - 1,
                                ..*data
                            })),
                        });
                    }
                }
                Intercept::Handled
            }
            Wire::BlackDp(BlackDpMessage::HelloProbe(_)) => {
                if let Some(p) = self.probability {
                    if self.forward_probes && core.rng().random::<f64>() >= p {
                        core.note_forwarded();
                        out.push(AttackerAction::Broadcast { wire: wire.clone() });
                        return Intercept::Handled;
                    }
                }
                // The probe dies here; a later FakeHelloReply slot may
                // still answer it with a lie, so the chain continues.
                out.push(AttackerAction::Event(AttackerEvent::SwallowedProbe));
                Intercept::Continue
            }
            _ => Intercept::Continue,
        }
    }
}

/// The "anonymity response": answer a swallowed Hello probe with a reply
/// that claims to be the destination, signed with the attacker's own
/// credential — valid signature, wrong signer, which is exactly what the
/// verifier catches.
#[derive(Debug, Default)]
pub struct FakeHelloReply;

impl Interceptor for FakeHelloReply {
    fn name(&self) -> &'static str {
        "fake-hello-reply"
    }

    fn on_wire(
        &mut self,
        core: &mut AttackerCore,
        from: Addr,
        wire: &Wire,
        _now: Time,
        out: &mut Vec<AttackerAction>,
    ) -> Intercept {
        let Wire::BlackDp(BlackDpMessage::HelloProbe(sealed)) = wire else {
            return Intercept::Continue;
        };
        if core.is_dormant() {
            return Intercept::Handled;
        }
        let reply = HelloReply {
            probe_id: sealed.body.probe_id,
            src: sealed.body.dest, // the lie
            dest: sealed.body.src,
            ttl: 16,
        };
        let sealed_reply = core.seal(reply);
        out.push(AttackerAction::SendTo {
            to: from,
            wire: Wire::BlackDp(BlackDpMessage::HelloReply(sealed_reply)),
        });
        Intercept::Handled
    }
}

/// An honest base plus a chain of malicious interceptors: the whole
/// attacker, expressed as middleware composition.
#[derive(Debug)]
pub struct AttackerStack {
    core: AttackerCore,
    chain: Vec<Box<dyn Interceptor>>,
}

impl AttackerStack {
    /// Builds a stack from a credential and an interceptor chain.
    pub fn new(
        keys: Keypair,
        cert: Certificate,
        seed: u64,
        chain: Vec<Box<dyn Interceptor>>,
    ) -> Self {
        AttackerStack {
            core: AttackerCore::new(keys, cert, seed),
            chain,
        }
    }

    /// The shared honest substrate.
    pub fn core(&self) -> &AttackerCore {
        &self.core
    }

    /// Mutable access to the substrate (host membership shells record
    /// clusters and renewed identities here).
    pub fn core_mut(&mut self) -> &mut AttackerCore {
        &mut self.core
    }

    /// Deterministic digest of the whole attacker's mutable state: the
    /// honest core plus every interceptor, folded in chain order (so a
    /// reordered chain digests differently). This is the middleware state
    /// a checkpoint stamp captures for malicious nodes.
    pub fn state_digest(&self) -> u64 {
        let mut h = self.core.state_digest();
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for interceptor in &self.chain {
            mix(interceptor.name().as_bytes());
            mix(&interceptor.state_digest().to_le_bytes());
        }
        h
    }

    /// Processes an incoming packet: passive learning, honest endpoint
    /// termination, then the interceptor chain in order.
    pub fn handle_wire(&mut self, from: Addr, wire: &Wire, now: Time) -> Vec<AttackerAction> {
        self.core.observe(wire);
        let mut out = Vec::new();
        if self.core.terminates_here(wire) {
            return out;
        }
        for interceptor in &mut self.chain {
            if interceptor.on_wire(&mut self.core, from, wire, now, &mut out) == Intercept::Handled
            {
                break;
            }
        }
        out
    }

    /// Periodic behaviour: beacon hellos like a legitimate node so
    /// neighbors keep routing through us, then tick the chain.
    pub fn tick(&mut self, now: Time, hello_interval: Duration) -> Vec<AttackerAction> {
        let mut out = Vec::new();
        let due = match self.core.last_hello {
            None => true,
            Some(t) => now.saturating_since(t) >= hello_interval,
        };
        if due {
            self.core.last_hello = Some(now);
            self.core.seq_counter += 1;
            out.push(AttackerAction::Broadcast {
                wire: Wire::Aodv(AodvMessage::Hello(Hello {
                    orig: self.core.addr(),
                    seq: self.core.seq_counter,
                })),
            });
        }
        for interceptor in &mut self.chain {
            interceptor.on_tick(&mut self.core, now, &mut out);
        }
        out
    }
}
