//! The gray hole (selective black hole) attacker.
//!
//! A gray hole behaves like a black hole during route capture — forged
//! fresh RREPs — but drops data only *probabilistically* (or selectively),
//! forwarding the rest to stay under statistical detectors' radar. The
//! paper's related work (Jhaveri et al. on grayhole/blackhole, Su's
//! selective black holes) treats it as the harder variant; BlackDP's
//! behavioural probes still catch it, because its RREP-forging behaviour
//! is identical — which the `grayhole` ablation bench demonstrates.
//!
//! Since the middleware refactor this is a thin facade over an
//! [`AttackerStack`] with the chain `[ForgeRrep, DropData::grayhole(p,
//! forward_probes)]` — the same forging slot as the black hole, a
//! probabilistic drop slot instead of the unconditional one.

use blackdp::Wire;
use blackdp_aodv::{Addr, SeqNo};
use blackdp_crypto::{Certificate, Keypair, PseudonymId};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};

use crate::blackhole::AttackerAction;
use crate::forge::ForgeParams;
use crate::middleware::{AttackerStack, DropData, ForgeRrep, Interceptor};

/// Gray hole behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayHoleConfig {
    /// Probability of dropping a transit data packet (1.0 = black hole,
    /// 0.0 = honest forwarder with forged routes).
    pub drop_probability: f64,
    /// Sequence-number margin for the forged RREPs.
    pub seq_margin: SeqNo,
    /// Advertised hop count.
    pub fake_hop_count: u8,
    /// Advertised route lifetime.
    pub fake_lifetime: Duration,
    /// Whether end-to-end Hello probes are also forwarded with the same
    /// probability (a stealthier gray hole lets some probes through,
    /// delaying the verifier's timeout ladder).
    pub forward_probes: bool,
}

impl GrayHoleConfig {
    /// The forged-RREP shape shared with the black hole.
    pub fn forge_params(&self) -> ForgeParams {
        ForgeParams {
            seq_margin: self.seq_margin,
            fake_hop_count: self.fake_hop_count,
            fake_lifetime: self.fake_lifetime,
        }
    }
}

impl Default for GrayHoleConfig {
    fn default() -> Self {
        GrayHoleConfig {
            drop_probability: 0.5,
            seq_margin: 120,
            fake_hop_count: 4,
            fake_lifetime: Duration::from_secs(10),
            forward_probes: false,
        }
    }
}

/// A gray hole attacker instance.
///
/// # Examples
///
/// ```
/// use blackdp_attacks::{GrayHole, GrayHoleConfig};
/// use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
/// use blackdp_sim::{Duration, Time};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
/// let keys = Keypair::generate(&mut rng);
/// let cert = ta.enroll(LongTermId(66), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng);
/// let gh = GrayHole::new(keys, cert, GrayHoleConfig { drop_probability: 0.3, ..Default::default() }, 1);
/// assert_eq!(gh.dropped_count() + gh.forwarded_count(), 0);
/// ```
#[derive(Debug)]
pub struct GrayHole {
    cfg: GrayHoleConfig,
    stack: AttackerStack,
}

impl GrayHole {
    /// Creates a gray hole holding a valid insider credential.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.drop_probability` is not a probability.
    pub fn new(keys: Keypair, cert: Certificate, cfg: GrayHoleConfig, seed: u64) -> Self {
        let chain: Vec<Box<dyn Interceptor>> = vec![
            Box::new(ForgeRrep::new(cfg.forge_params(), None)),
            Box::new(DropData::grayhole(cfg.drop_probability, cfg.forward_probes)),
        ];
        GrayHole {
            cfg,
            stack: AttackerStack::new(keys, cert, seed, chain),
        }
    }

    /// Current protocol address.
    pub fn addr(&self) -> Addr {
        self.stack.core().addr()
    }

    /// Current pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.stack.core().pseudonym()
    }

    /// The credential (for membership traffic).
    pub fn cert(&self) -> &Certificate {
        self.stack.core().cert()
    }

    /// The signing keys (for membership traffic).
    pub fn keys(&self) -> &Keypair {
        self.stack.core().keys()
    }

    /// The configuration.
    pub fn config(&self) -> &GrayHoleConfig {
        &self.cfg
    }

    /// Records the cluster from a JREP.
    pub fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.stack.core_mut().set_cluster(cluster);
    }

    /// Data packets dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.stack.core().dropped_count()
    }

    /// Data packets deliberately forwarded (the camouflage).
    pub fn forwarded_count(&self) -> u64 {
        self.stack.core().forwarded_count()
    }

    /// Victims lured.
    pub fn lured_count(&self) -> u64 {
        self.stack.core().lured_count()
    }

    /// Processes an incoming packet.
    ///
    /// Unlike the honest stack, forwarding decisions here are direct: the
    /// gray hole claims routes it does not have, so "forwarding" a packet
    /// means tossing it toward any neighbor — we model the camouflage as a
    /// re-broadcast, which statistically reaches the real next hop when
    /// one exists.
    pub fn handle_wire(&mut self, from: Addr, wire: &Wire, now: Time) -> Vec<AttackerAction> {
        self.stack.handle_wire(from, wire, now)
    }

    /// Periodic hello beaconing (stays in neighbors' tables).
    pub fn tick(&mut self, now: Time, hello_interval: Duration) -> Vec<AttackerAction> {
        self.stack.tick(now, hello_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackhole::AttackerEvent;
    use blackdp::{BlackDpMessage, Sealed};
    use blackdp_aodv::{DataPacket, Message as AodvMessage, Rreq};
    use blackdp_crypto::{LongTermId, TaId, TrustedAuthority};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grayhole(drop_probability: f64) -> GrayHole {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(77),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        GrayHole::new(
            keys,
            cert,
            GrayHoleConfig {
                drop_probability,
                ..GrayHoleConfig::default()
            },
            3,
        )
    }

    fn data(seq: u64) -> DataPacket {
        DataPacket {
            orig: Addr(1),
            dest: Addr(7),
            seq_no: seq,
            ttl: 5,
        }
    }

    #[test]
    fn forges_rreps_like_a_black_hole() {
        let mut gh = grayhole(0.5);
        let rreq = Rreq {
            rreq_id: 1,
            dest: Addr(7),
            dest_seq: Some(10),
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: false,
        };
        let actions = gh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Rreq(rreq)), Time::ZERO);
        let forged = actions
            .iter()
            .find_map(|a| match a {
                AttackerAction::SendTo {
                    wire: Wire::SecuredRrep { rrep, .. },
                    ..
                } => Some(*rrep),
                _ => None,
            })
            .expect("forged RREP");
        assert!(forged.dest_seq >= 130);
        assert_eq!(gh.lured_count(), 1);
    }

    #[test]
    fn drops_at_roughly_the_configured_rate() {
        let mut gh = grayhole(0.3);
        for i in 0..1000 {
            let _ = gh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(data(i))), Time::ZERO);
        }
        let dropped = gh.dropped_count();
        assert!(
            (200..=400).contains(&dropped),
            "expected ~300/1000 dropped, got {dropped}"
        );
        assert_eq!(gh.dropped_count() + gh.forwarded_count(), 1000);
    }

    #[test]
    fn zero_probability_forwards_everything() {
        let mut gh = grayhole(0.0);
        for i in 0..50 {
            let actions =
                gh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(data(i))), Time::ZERO);
            assert!(actions
                .iter()
                .any(|a| matches!(a, AttackerAction::Broadcast { .. })));
        }
        assert_eq!(gh.dropped_count(), 0);
        assert_eq!(gh.forwarded_count(), 50);
    }

    #[test]
    fn one_probability_is_a_black_hole() {
        let mut gh = grayhole(1.0);
        for i in 0..50 {
            let _ = gh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(data(i))), Time::ZERO);
        }
        assert_eq!(gh.dropped_count(), 50);
        assert_eq!(gh.forwarded_count(), 0);
    }

    #[test]
    fn own_traffic_is_never_counted() {
        let mut gh = grayhole(1.0);
        let own = DataPacket {
            orig: Addr(1),
            dest: gh.addr(),
            seq_no: 0,
            ttl: 5,
        };
        let actions = gh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(own)), Time::ZERO);
        assert!(actions.is_empty());
        assert_eq!(gh.dropped_count(), 0);
    }

    #[test]
    fn probe_forwarding_camouflage() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(77),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        let mut gh = GrayHole::new(
            keys,
            cert,
            GrayHoleConfig {
                drop_probability: 0.0,
                forward_probes: true,
                ..GrayHoleConfig::default()
            },
            3,
        );
        let prober_keys = Keypair::generate(&mut rng);
        let prober_cert = ta.enroll(
            LongTermId(1),
            prober_keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        let probe = Sealed::seal(
            blackdp::HelloProbe {
                probe_id: 1,
                src: Addr(1),
                dest: Addr(7),
                ttl: 10,
            },
            prober_cert,
            None,
            &prober_keys,
            &mut rng,
        );
        let actions = gh.handle_wire(
            Addr(1),
            &Wire::BlackDp(BlackDpMessage::HelloProbe(probe)),
            Time::ZERO,
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, AttackerAction::Broadcast { .. })),
            "a fully-forwarding gray hole relays the probe: {actions:?}"
        );
        assert_eq!(gh.forwarded_count(), 1);
    }

    #[test]
    #[should_panic(expected = "drop_probability must be in")]
    fn rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(60),
            &mut rng,
        );
        let _ = GrayHole::new(
            keys,
            cert,
            GrayHoleConfig {
                drop_probability: 1.5,
                ..GrayHoleConfig::default()
            },
            1,
        );
    }

    #[test]
    fn still_answers_probe_rreqs_with_violations() {
        // The detection-relevant behaviour: a gray hole answers the
        // fake-destination probe exactly like a black hole, so BlackDP
        // catches it regardless of its drop rate.
        let mut gh = grayhole(0.1);
        let probe = Rreq {
            rreq_id: 1,
            dest: Addr(0xFAB),
            dest_seq: Some(251),
            orig: Addr(0x8000_0000_0000_0001),
            orig_seq: 1,
            hop_count: 0,
            ttl: 1,
            next_hop_inquiry: true,
        };
        let actions = gh.handle_wire(
            Addr(0x8000_0000_0000_0001),
            &Wire::Aodv(AodvMessage::Rreq(probe)),
            Time::ZERO,
        );
        let forged = actions
            .iter()
            .find_map(|a| match a {
                AttackerAction::SendTo {
                    wire: Wire::SecuredRrep { rrep, .. },
                    ..
                } => Some(*rrep),
                _ => None,
            })
            .expect("answers the probe");
        assert!(forged.dest_seq > 251, "the AODV violation BlackDP confirms");
    }

    #[test]
    fn probe_swallow_still_emits_the_event() {
        // With forward_probes off the probe dies with a SwallowedProbe
        // event and no RNG draw — identical to the black hole's swallow.
        let mut gh = grayhole(0.5);
        let mut rng = StdRng::seed_from_u64(99);
        let mut ta = TrustedAuthority::new(TaId(9), &mut rng);
        let prober_keys = Keypair::generate(&mut rng);
        let prober_cert = ta.enroll(
            LongTermId(1),
            prober_keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        let probe = Sealed::seal(
            blackdp::HelloProbe {
                probe_id: 3,
                src: Addr(1),
                dest: Addr(7),
                ttl: 10,
            },
            prober_cert,
            None,
            &prober_keys,
            &mut rng,
        );
        let actions = gh.handle_wire(
            Addr(1),
            &Wire::BlackDp(BlackDpMessage::HelloProbe(probe)),
            Time::ZERO,
        );
        assert_eq!(
            actions,
            vec![AttackerAction::Event(AttackerEvent::SwallowedProbe)]
        );
    }
}
