//! Shared forged-RREP construction.
//!
//! Both the black hole and the gray hole capture routes the same way: an
//! immediate RREP whose destination sequence number sits `seq_margin`
//! above anything the attacker has observed ("a very high SN … to
//! guarantee its RREP is selected", Section II-C). This module is the
//! single implementation both attackers — and any interceptor composition
//! built from [`crate::middleware`] — share.

use blackdp_aodv::{Addr, Rrep, Rreq, SeqNo};
use blackdp_sim::Duration;

/// The knobs of a forged route reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForgeParams {
    /// How far above the highest sequence number seen so far the forged
    /// RREP climbs (the paper's example forges SN 120 against a legitimate
    /// 20, and 200 against 75).
    pub seq_margin: SeqNo,
    /// The hop count advertised in forged RREPs (the paper's example
    /// uses 4).
    pub fake_hop_count: u8,
    /// Lifetime advertised in forged RREPs.
    pub fake_lifetime: Duration,
}

impl Default for ForgeParams {
    fn default() -> Self {
        ForgeParams {
            seq_margin: 120,
            fake_hop_count: 4,
            fake_lifetime: Duration::from_secs(10),
        }
    }
}

/// Builds the forged RREP answering `rreq` and escalates `highest_seen`
/// past the claimed sequence number so consecutive forgeries keep
/// outbidding both the competition and the attacker's own earlier lies.
///
/// `disclose` is the next hop revealed when the RREQ carries a next-hop
/// inquiry: the cooperative primary names its teammate here, a lone
/// attacker names itself.
pub fn forge_rrep(
    params: &ForgeParams,
    highest_seen: &mut SeqNo,
    rreq: &Rreq,
    disclose: Addr,
) -> Rrep {
    let forged_seq = (*highest_seen)
        .max(rreq.dest_seq.unwrap_or(0))
        .saturating_add(params.seq_margin);
    *highest_seen = forged_seq;
    Rrep {
        dest: rreq.dest,
        dest_seq: forged_seq,
        orig: rreq.orig,
        hop_count: params.fake_hop_count,
        lifetime: params.fake_lifetime,
        next_hop: rreq.next_hop_inquiry.then_some(disclose),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rreq(dest_seq: Option<SeqNo>, inquiry: bool) -> Rreq {
        Rreq {
            rreq_id: 1,
            dest: Addr(7),
            dest_seq,
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: inquiry,
        }
    }

    #[test]
    fn outbids_the_highest_seen_sequence_number() {
        let params = ForgeParams::default();
        let mut highest = 500;
        let rrep = forge_rrep(&params, &mut highest, &rreq(Some(20), false), Addr(9));
        assert_eq!(rrep.dest_seq, 620, "500 seen + margin 120");
        assert_eq!(highest, 620, "the lie becomes the new floor");
    }

    #[test]
    fn outbids_the_rreq_hint_when_it_is_fresher() {
        let params = ForgeParams::default();
        let mut highest = 0;
        let rrep = forge_rrep(&params, &mut highest, &rreq(Some(251), false), Addr(9));
        assert_eq!(rrep.dest_seq, 371, "251 hinted + margin 120");
    }

    #[test]
    fn unknown_seq_flag_still_forges_from_the_margin() {
        let params = ForgeParams::default();
        let mut highest = 0;
        let rrep = forge_rrep(&params, &mut highest, &rreq(None, false), Addr(9));
        assert_eq!(rrep.dest_seq, params.seq_margin);
    }

    #[test]
    fn consecutive_forgeries_escalate_monotonically() {
        let params = ForgeParams::default();
        let mut highest = 0;
        let a = forge_rrep(&params, &mut highest, &rreq(Some(10), false), Addr(9));
        let b = forge_rrep(&params, &mut highest, &rreq(Some(10), false), Addr(9));
        assert!(b.dest_seq > a.dest_seq, "{} then {}", a.dest_seq, b.dest_seq);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let params = ForgeParams::default();
        let mut highest = SeqNo::MAX - 5;
        let rrep = forge_rrep(&params, &mut highest, &rreq(None, false), Addr(9));
        assert_eq!(rrep.dest_seq, SeqNo::MAX);
        assert_eq!(highest, SeqNo::MAX);
    }

    #[test]
    fn discloses_the_named_next_hop_only_on_inquiry() {
        let params = ForgeParams::default();
        let mut highest = 0;
        let quiet = forge_rrep(&params, &mut highest, &rreq(Some(1), false), Addr(42));
        assert_eq!(quiet.next_hop, None);
        let asked = forge_rrep(&params, &mut highest, &rreq(Some(1), true), Addr(42));
        assert_eq!(asked.next_hop, Some(Addr(42)));
    }

    #[test]
    fn copies_the_advertised_shape_from_params() {
        let params = ForgeParams {
            seq_margin: 7,
            fake_hop_count: 2,
            fake_lifetime: Duration::from_secs(3),
        };
        let mut highest = 0;
        let rrep = forge_rrep(&params, &mut highest, &rreq(Some(0), false), Addr(9));
        assert_eq!(rrep.hop_count, 2);
        assert_eq!(rrep.lifetime, Duration::from_secs(3));
        assert_eq!(rrep.dest_seq, 7);
    }
}
