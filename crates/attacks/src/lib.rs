//! # blackdp-attacks — black hole attacker implementations
//!
//! Implements the adversary of Section II-C as a sans-io state machine:
//!
//! * **Single black hole** — answers *any* RREQ immediately with an RREP
//!   whose destination sequence number is far above anything legitimate
//!   ("a very high SN … to guarantee its RREP is selected"), then drops
//!   every data packet attracted onto itself.
//! * **Cooperative black hole** — two attackers pair up: the primary
//!   discloses its teammate as the next hop when asked, and the teammate
//!   endorses the fabricated route by answering probes the same way.
//! * **Evasion policies** — the behaviours the paper observes in the
//!   certificate-renewal zone (clusters 8–10, Section IV-B): acting
//!   legitimately during detection, fleeing the network, and renewing the
//!   pseudonymous identity mid-detection.
//!
//! The attacker signs its RREPs with its *own* valid certificate (it is a
//! compromised insider, not an outsider), which is exactly why
//! authentication alone cannot stop it and behavioural probing is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blackhole;
pub mod forge;
mod grayhole;
pub mod middleware;

pub use blackhole::{AttackerAction, AttackerConfig, AttackerEvent, BlackHole, EvasionPolicy};
pub use forge::{forge_rrep, ForgeParams};
pub use grayhole::{GrayHole, GrayHoleConfig};
pub use middleware::{
    AttackerCore, AttackerStack, DropData, Evasion, FakeHelloReply, ForgeRrep, Intercept,
    Interceptor,
};
