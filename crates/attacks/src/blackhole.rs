//! The black hole attacker, composed from middleware interceptors.

use blackdp::Wire;
use blackdp_aodv::{Addr, DataPacket, SeqNo};
use blackdp_crypto::{Certificate, Keypair, PseudonymId};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};

use crate::forge::ForgeParams;
use crate::middleware::{
    AttackerStack, DropData, Evasion, FakeHelloReply, ForgeRrep, Interceptor,
};

/// How the attacker behaves once it believes detection is possible
/// (Section IV-B lists these as the reasons accuracy drops in the
/// certificate-renewal zone, clusters 8–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvasionPolicy {
    /// No evasion: always attack (clusters 1–7 behaviour).
    #[default]
    None,
    /// "The attacker acted legitimately during the detection phase": stop
    /// answering RREQs while dormant.
    ActLegitimately,
    /// "The attacker fled from the network": the scenario despawns the
    /// vehicle when this policy fires.
    Flee,
    /// "Certificate renewal where the attacker takes advantage of changing
    /// its identity during the detection process".
    RenewIdentity,
}

/// Attack-behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerConfig {
    /// How far above the highest sequence number seen so far the forged
    /// RREP climbs (the paper's example forges SN 120 against a legitimate
    /// 20, and 200 against 75).
    pub seq_margin: SeqNo,
    /// The hop count advertised in forged RREPs (the paper's example
    /// uses 4).
    pub fake_hop_count: u8,
    /// Lifetime advertised in forged RREPs.
    pub fake_lifetime: Duration,
    /// The cooperating teammate, disclosed on next-hop inquiries.
    pub teammate: Option<Addr>,
    /// Whether to answer Hello probes with a fake reply claiming to be the
    /// destination (the "anonymity response" path) instead of silently
    /// dropping them.
    pub fake_hello_reply: bool,
    /// Evasion behaviour in the renewal zone.
    pub evasion: EvasionPolicy,
}

impl AttackerConfig {
    /// The forged-RREP shape shared with the gray hole.
    pub fn forge_params(&self) -> ForgeParams {
        ForgeParams {
            seq_margin: self.seq_margin,
            fake_hop_count: self.fake_hop_count,
            fake_lifetime: self.fake_lifetime,
        }
    }
}

impl Default for AttackerConfig {
    fn default() -> Self {
        AttackerConfig {
            seq_margin: 120,
            fake_hop_count: 4,
            fake_lifetime: Duration::from_secs(10),
            teammate: None,
            fake_hello_reply: false,
            evasion: EvasionPolicy::None,
        }
    }
}

/// An instruction for the host embedding a [`BlackHole`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttackerAction {
    /// Transmit to a specific node.
    SendTo {
        /// The target's protocol address.
        to: Addr,
        /// The packet.
        wire: Wire,
    },
    /// Broadcast to everyone in range.
    Broadcast {
        /// The packet.
        wire: Wire,
    },
    /// An observable event for metrics.
    Event(AttackerEvent),
}

/// Observable attacker events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerEvent {
    /// A forged RREP was sent to lure `victim`.
    LuredVictim {
        /// The RREQ originator being deceived.
        victim: Addr,
    },
    /// A data packet attracted by the forged route was dropped.
    DroppedData(DataPacket),
    /// An end-to-end Hello probe was swallowed (or answered with a fake).
    SwallowedProbe,
    /// The attacker went dormant (acting legitimately).
    WentDormant,
}

/// A single (or cooperative-half) black hole attacker.
///
/// Since the middleware refactor this is a thin facade over an
/// [`AttackerStack`] with the chain `[Evasion, ForgeRrep,
/// DropData::blackhole(), FakeHelloReply?]`.
///
/// # Examples
///
/// ```
/// use blackdp_attacks::{AttackerAction, AttackerConfig, BlackHole};
/// use blackdp_aodv::{Addr, Message as AodvMessage, Rreq};
/// use blackdp::Wire;
/// use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
/// use blackdp_sim::{Duration, Time};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
/// let keys = Keypair::generate(&mut rng);
/// let cert = ta.enroll(LongTermId(66), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng);
/// let mut bh = BlackHole::new(keys, cert, AttackerConfig::default(), 1);
///
/// // Any RREQ gets an immediate forged, *signed* RREP.
/// let rreq = Rreq { rreq_id: 1, dest: Addr(7), dest_seq: Some(0), orig: Addr(1),
///                   orig_seq: 1, hop_count: 0, ttl: 10, next_hop_inquiry: false };
/// let actions = bh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Rreq(rreq)), Time::ZERO);
/// assert!(actions.iter().any(|a| matches!(a, AttackerAction::SendTo { wire: Wire::SecuredRrep { .. }, .. })));
/// ```
#[derive(Debug)]
pub struct BlackHole {
    cfg: AttackerConfig,
    stack: AttackerStack,
}

impl BlackHole {
    /// Creates an attacker holding a valid (compromised-insider)
    /// credential.
    pub fn new(keys: Keypair, cert: Certificate, cfg: AttackerConfig, seed: u64) -> Self {
        let mut chain: Vec<Box<dyn Interceptor>> = vec![
            Box::new(Evasion),
            Box::new(ForgeRrep::new(cfg.forge_params(), cfg.teammate)),
            Box::new(DropData::blackhole()),
        ];
        if cfg.fake_hello_reply {
            chain.push(Box::new(FakeHelloReply));
        }
        BlackHole {
            cfg,
            stack: AttackerStack::new(keys, cert, seed, chain),
        }
    }

    /// The attacker's current protocol address (its pseudonym).
    pub fn addr(&self) -> Addr {
        self.stack.core().addr()
    }

    /// The attacker's current pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.stack.core().pseudonym()
    }

    /// The attacker's current (valid!) certificate — used by host nodes to
    /// produce the legitimate-looking membership traffic (JREQ signing)
    /// that keeps the attacker registered in its cluster.
    pub fn cert(&self) -> &Certificate {
        self.stack.core().cert()
    }

    /// The attacker's current signing keys (see [`Self::cert`]).
    pub fn keys(&self) -> &Keypair {
        self.stack.core().keys()
    }

    /// The configuration.
    pub fn config(&self) -> &AttackerConfig {
        &self.cfg
    }

    /// Data packets dropped so far.
    pub fn dropped_count(&self) -> u64 {
        self.stack.core().dropped_count()
    }

    /// Victims lured so far.
    pub fn lured_count(&self) -> u64 {
        self.stack.core().lured_count()
    }

    /// True if the attacker is currently dormant (acting legitimately).
    pub fn is_dormant(&self) -> bool {
        self.stack.core().is_dormant()
    }

    /// Puts the attacker to sleep or wakes it (the `ActLegitimately`
    /// evasion, driven by the scenario when entering the renewal zone).
    pub fn set_dormant(&mut self, dormant: bool) {
        self.stack.core_mut().set_dormant(dormant);
    }

    /// Swaps in a renewed identity (`RenewIdentity` evasion): new keys and
    /// certificate, fresh pseudonym.
    pub fn renew_identity(&mut self, keys: Keypair, cert: Certificate) {
        self.stack.core_mut().renew_identity(keys, cert);
    }

    /// Records the cluster learned from a JREP.
    pub fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.stack.core_mut().set_cluster(cluster);
    }

    /// Processes an incoming packet.
    pub fn handle_wire(&mut self, from: Addr, wire: &Wire, now: Time) -> Vec<AttackerAction> {
        self.stack.handle_wire(from, wire, now)
    }

    /// Periodic behaviour: beacon hellos like a legitimate node so
    /// neighbors keep routing through us.
    pub fn tick(&mut self, now: Time, hello_interval: Duration) -> Vec<AttackerAction> {
        self.stack.tick(now, hello_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp::{BlackDpMessage, Sealed};
    use blackdp_aodv::{Message as AodvMessage, Rrep, Rreq};
    use blackdp_crypto::{LongTermId, TaId, TrustedAuthority};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rng: StdRng,
        ta: TrustedAuthority,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(31);
        let ta = TrustedAuthority::new(TaId(0), &mut rng);
        Fixture { rng, ta }
    }

    fn attacker(fx: &mut Fixture, cfg: AttackerConfig) -> BlackHole {
        let keys = Keypair::generate(&mut fx.rng);
        let cert = fx.ta.enroll(
            LongTermId(66),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        BlackHole::new(keys, cert, cfg, 7)
    }

    fn rreq(dest: u64, orig: u64, dest_seq: Option<SeqNo>, inquiry: bool) -> Rreq {
        Rreq {
            rreq_id: 1,
            dest: Addr(dest),
            dest_seq,
            orig: Addr(orig),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: inquiry,
        }
    }

    fn forged_rrep(actions: &[AttackerAction]) -> Option<Rrep> {
        actions.iter().find_map(|a| match a {
            AttackerAction::SendTo {
                wire: Wire::SecuredRrep { rrep, .. },
                ..
            } => Some(*rrep),
            _ => None,
        })
    }

    #[test]
    fn replies_to_any_rreq_with_inflated_seq() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::Aodv(AodvMessage::Rreq(rreq(7, 1, Some(20), false))),
            Time::ZERO,
        );
        let rrep = forged_rrep(&actions).expect("forged RREP");
        assert_eq!(rrep.dest, Addr(7));
        assert_eq!(rrep.orig, Addr(1));
        assert!(rrep.dest_seq >= 140, "20 seen + margin 120");
        assert_eq!(bh.lured_count(), 1);
    }

    #[test]
    fn forged_rrep_signature_verifies_as_insider() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::Aodv(AodvMessage::Rreq(rreq(7, 1, None, false))),
            Time::ZERO,
        );
        let auth = actions
            .iter()
            .find_map(|a| match a {
                AttackerAction::SendTo {
                    wire: Wire::SecuredRrep { auth, .. },
                    ..
                } => Some(auth.clone()),
                _ => None,
            })
            .unwrap();
        // The envelope is VALID — the attacker is a certified insider. Only
        // behaviour can expose it.
        assert!(auth.verify(fx.ta.public_key(), Time::from_secs(1)).is_ok());
        assert_ne!(
            blackdp::addr_of(auth.signer()),
            Addr(7),
            "but the signer is not the claimed destination"
        );
    }

    #[test]
    fn escalates_above_every_seen_sequence_number() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        // Observe a competitor RREP with seq 500.
        let competitor = Rrep {
            dest: Addr(7),
            dest_seq: 500,
            orig: Addr(1),
            hop_count: 2,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = bh.handle_wire(
            Addr(3),
            &Wire::Aodv(AodvMessage::Rrep(competitor)),
            Time::ZERO,
        );
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::Aodv(AodvMessage::Rreq(rreq(7, 1, Some(0), false))),
            Time::ZERO,
        );
        assert!(forged_rrep(&actions).unwrap().dest_seq > 500);
    }

    #[test]
    fn drops_transit_data() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let data = DataPacket {
            orig: Addr(1),
            dest: Addr(7),
            seq_no: 0,
            ttl: 5,
        };
        let actions = bh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(data)), Time::ZERO);
        assert!(matches!(
            &actions[..],
            [AttackerAction::Event(AttackerEvent::DroppedData(_))]
        ));
        assert_eq!(bh.dropped_count(), 1);
        // Data addressed to the attacker itself is not "dropped".
        let own = DataPacket {
            orig: Addr(1),
            dest: bh.addr(),
            seq_no: 1,
            ttl: 5,
        };
        let actions = bh.handle_wire(Addr(1), &Wire::Aodv(AodvMessage::Data(own)), Time::ZERO);
        assert!(actions.is_empty());
    }

    #[test]
    fn discloses_teammate_on_inquiry() {
        let mut fx = fixture();
        let teammate = Addr(424242);
        let mut bh = attacker(
            &mut fx,
            AttackerConfig {
                teammate: Some(teammate),
                ..AttackerConfig::default()
            },
        );
        let actions = bh.handle_wire(
            Addr(50),
            &Wire::Aodv(AodvMessage::Rreq(rreq(10, 50, Some(251), true))),
            Time::ZERO,
        );
        let rrep = forged_rrep(&actions).unwrap();
        assert_eq!(rrep.next_hop, Some(teammate));
        assert!(rrep.dest_seq > 251, "claims freshness it cannot have");
    }

    #[test]
    fn swallows_hello_probes_silently_by_default() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let prober_keys = Keypair::generate(&mut fx.rng);
        let prober_cert = fx.ta.enroll(
            LongTermId(1),
            prober_keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        let probe = Sealed::seal(
            blackdp::HelloProbe {
                probe_id: 1,
                src: Addr(1),
                dest: Addr(7),
                ttl: 10,
            },
            prober_cert,
            None,
            &prober_keys,
            &mut fx.rng,
        );
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::BlackDp(BlackDpMessage::HelloProbe(probe)),
            Time::ZERO,
        );
        assert_eq!(
            actions,
            vec![AttackerAction::Event(AttackerEvent::SwallowedProbe)],
            "no reply, no forward: the probe dies here"
        );
    }

    #[test]
    fn fake_hello_reply_claims_to_be_destination() {
        let mut fx = fixture();
        let mut bh = attacker(
            &mut fx,
            AttackerConfig {
                fake_hello_reply: true,
                ..AttackerConfig::default()
            },
        );
        let prober_keys = Keypair::generate(&mut fx.rng);
        let prober_cert = fx.ta.enroll(
            LongTermId(1),
            prober_keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        let probe = Sealed::seal(
            blackdp::HelloProbe {
                probe_id: 5,
                src: Addr(1),
                dest: Addr(7),
                ttl: 10,
            },
            prober_cert,
            None,
            &prober_keys,
            &mut fx.rng,
        );
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::BlackDp(BlackDpMessage::HelloProbe(probe)),
            Time::ZERO,
        );
        let reply = actions
            .iter()
            .find_map(|a| match a {
                AttackerAction::SendTo {
                    wire: Wire::BlackDp(BlackDpMessage::HelloReply(r)),
                    ..
                } => Some(r.clone()),
                _ => None,
            })
            .expect("fake reply sent");
        assert_eq!(reply.body.src, Addr(7), "claims to be the destination");
        assert_eq!(reply.body.probe_id, 5);
        // The signature is valid but the signer is the attacker, not Addr(7)
        // — which is what the verifier catches.
        assert!(reply.verify(fx.ta.public_key(), Time::from_secs(1)).is_ok());
        assert_ne!(blackdp::addr_of(reply.signer()), Addr(7));
    }

    #[test]
    fn dormant_attacker_acts_like_honest_node() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        bh.set_dormant(true);
        assert!(bh.is_dormant());
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::Aodv(AodvMessage::Rreq(rreq(7, 1, Some(0), false))),
            Time::ZERO,
        );
        assert!(forged_rrep(&actions).is_none(), "no forged RREP");
        assert!(
            actions.iter().any(|a| matches!(
                a,
                AttackerAction::Broadcast {
                    wire: Wire::Aodv(AodvMessage::Rreq(_))
                }
            )),
            "refloods like an honest node"
        );
    }

    #[test]
    fn identity_renewal_swaps_pseudonym() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let old_addr = bh.addr();
        let new_keys = Keypair::generate(&mut fx.rng);
        let new_cert = fx.ta.enroll(
            LongTermId(66),
            new_keys.public(),
            Time::from_secs(10),
            Duration::from_secs(600),
            &mut fx.rng,
        );
        bh.renew_identity(new_keys, new_cert);
        assert_ne!(bh.addr(), old_addr);
    }

    #[test]
    fn beacons_hellos_to_stay_connected() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let a0 = bh.tick(Time::ZERO, Duration::from_secs(1));
        assert!(matches!(
            &a0[..],
            [AttackerAction::Broadcast {
                wire: Wire::Aodv(AodvMessage::Hello(_))
            }]
        ));
        // Not due again immediately.
        assert!(bh
            .tick(Time::from_millis(500), Duration::from_secs(1))
            .is_empty());
        assert!(!bh
            .tick(Time::from_secs(2), Duration::from_secs(1))
            .is_empty());
    }

    #[test]
    fn ignores_rreqs_for_itself() {
        let mut fx = fixture();
        let mut bh = attacker(&mut fx, AttackerConfig::default());
        let own = bh.addr();
        let actions = bh.handle_wire(
            Addr(1),
            &Wire::Aodv(AodvMessage::Rreq(rreq(own.0, 1, None, false))),
            Time::ZERO,
        );
        assert!(forged_rrep(&actions).is_none());
    }
}
