//! # blackdp-bench — figure regeneration and reporting helpers
//!
//! The binaries in this crate regenerate every table and figure of the
//! paper's evaluation (Section IV):
//!
//! | Target | Reproduces |
//! |--------|-----------|
//! | `table1` | Table I simulation parameters (printed from the live configuration, with derived quantities checked) |
//! | `fig4` | Figure 4: detection accuracy / false positives / false negatives vs. attacker cluster, single and cooperative |
//! | `fig5` | Figure 5: number of detection packets per scenario |
//! | `baseline_comparison` | Ablation A3: BlackDP vs. sequence-number baselines vs. no defense |
//! | `sole_responder` | Ablation A4: the Section V-A failure case where the attacker is the only responder |
//!
//! Criterion microbenchmarks cover the crypto substrate, the AODV state
//! machine, the verification table, and end-to-end trial latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

pub mod probe;

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Renders a simple two-column parameter table.
pub fn param_table(title: &str, rows: &[(&str, String)]) -> String {
    let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(9);
    let val_w = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0).max(5);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "| {:key_w$} | {:val_w$} |", "Parameter", "Value");
    let _ = writeln!(
        out,
        "|{:-<w1$}|{:-<w2$}|",
        "",
        "",
        w1 = key_w + 2,
        w2 = val_w + 2
    );
    for (k, v) in rows {
        let _ = writeln!(out, "| {k:key_w$} | {v:val_w$} |");
    }
    out
}

/// Summarizes a set of integer samples as `min–max (mean μ)`.
pub fn range_summary(samples: &[u32]) -> String {
    match (samples.iter().min(), samples.iter().max()) {
        (Some(&lo), Some(&hi)) => {
            let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
            format!("{lo}-{hi} (mean {mean:.1}, n={})", samples.len())
        }
        _ => "no samples".to_owned(),
    }
}

/// Draws a unit-height ASCII bar for a rate in `[0, 1]`.
pub fn bar(rate: f64, width: usize) -> String {
    let filled = (rate.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.125), " 12.5%");
    }

    #[test]
    fn range_summary_formats() {
        assert_eq!(range_summary(&[6, 6, 8]), "6-8 (mean 6.7, n=3)");
        assert_eq!(range_summary(&[]), "no samples");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###", "clamped");
    }

    #[test]
    fn param_table_renders_all_rows() {
        let t = param_table("T", &[("a", "1".into()), ("bb", "22".into())]);
        assert!(t.contains("| a "));
        assert!(t.contains("| bb"));
        assert!(t.contains("22"));
    }
}
