//! Static probe worlds for radio-medium benchmarks.
//!
//! The neighbor-query benchmarks need worlds whose *only* cost is the
//! medium itself — no protocol stacks, no timers — at controlled vehicle
//! counts well beyond what a Table-I scenario spawns. [`probe_world`]
//! populates a highway-shaped strip with stationary [`ProbeNode`]s placed
//! by a deterministic LCG, so every run (and every comparison between the
//! grid index and the brute-force scan) sees identical geometry.

use blackdp_sim::{Channel, Context, Node, NodeId, Position, Time, World, WorldConfig};

/// Length of the probe highway strip in meters.
pub const STRIP_LENGTH_M: f64 = 10_000.0;

/// Width of the probe highway strip in meters.
pub const STRIP_WIDTH_M: f64 = 200.0;

/// A stationary node that ignores all traffic; exists purely to occupy a
/// position on the radio medium.
#[derive(Debug)]
pub struct ProbeNode {
    at: Position,
}

impl ProbeNode {
    /// A probe pinned at `at`.
    pub fn new(at: Position) -> Self {
        ProbeNode { at }
    }
}

impl Node<u32, u8> for ProbeNode {
    fn position(&self, _now: Time) -> Position {
        self.at
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u8>, _token: u8) {}
}

/// The deterministic probe layout: `n` positions on the strip, derived
/// from `seed` by a 64-bit LCG (same multiplier as MMIX).
pub fn probe_positions(n: usize, seed: u64) -> Vec<Position> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut step = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Map the top 53 bits to [0, 1): uniform and exactly representable.
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let x = step() * STRIP_LENGTH_M;
            let y = step() * STRIP_WIDTH_M;
            Position::new(x, y)
        })
        .collect()
}

/// Builds a world of `n` stationary probes with the given radio range.
///
/// The world uses [`WorldConfig::default`] apart from `radio_range_m`, so
/// the neighbor index is whatever the simulator defaults to (the grid);
/// callers compare against [`World::neighbors_of_scan`] for the
/// brute-force reference.
pub fn probe_world(n: usize, radio_range_m: f64, seed: u64) -> (World<u32, u8>, Vec<NodeId>) {
    let cfg = WorldConfig {
        radio_range_m,
        ..WorldConfig::default()
    };
    let mut world = World::new(cfg);
    let ids = probe_positions(n, seed)
        .into_iter()
        .map(|at| world.spawn(Box::new(ProbeNode::new(at))))
        .collect();
    (world, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic_and_in_bounds() {
        let a = probe_positions(100, 7);
        let b = probe_positions(100, 7);
        assert_eq!(a.len(), 100);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!((pa.x, pa.y), (pb.x, pb.y));
            assert!((0.0..STRIP_LENGTH_M).contains(&pa.x));
            assert!((0.0..STRIP_WIDTH_M).contains(&pa.y));
        }
        let c = probe_positions(100, 8);
        assert!(
            a.iter().zip(&c).any(|(pa, pc)| pa.x != pc.x),
            "different seeds must change the layout"
        );
    }

    #[test]
    fn probe_world_spawns_all_nodes() {
        let (mut world, ids) = probe_world(60, 300.0, 1);
        assert_eq!(ids.len(), 60);
        assert_eq!(world.node_count(), 60);
        // Grid and scan agree on an arbitrary probe's neighborhood.
        let center = ids[30];
        assert_eq!(world.neighbors_of(center), world.neighbors_of_scan(center));
    }
}
