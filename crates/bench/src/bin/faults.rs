//! Robustness-under-failure gate (experiment E9): sweeps randomized
//! infrastructure faults — RSU crash/restart, TA outages, backhaul
//! partitions, radio bursts — of growing intensity against a staged black
//! hole, printing detection rates and time-to-recover per intensity and
//! asserting the recovery invariants. Exits non-zero on violation.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin faults [quick|full]
//! ```
//!
//! `quick` (default) uses few repetitions; `full` uses more.

use blackdp_scenario::{fault_sweep, ScenarioConfig};

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, label: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {label}");
        } else {
            println!("FAIL  {label}: {detail}");
            self.failures.push(label.to_owned());
        }
    }
}

fn main() {
    let full = std::env::args().nth(1).as_deref() == Some("full");
    let reps: u32 = if full { 12 } else { 5 };
    let cfg = ScenarioConfig::paper_table1();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    let intensities = [0.0, 0.3, 0.6, 1.0];
    let points = fault_sweep(&cfg, &intensities, reps);

    println!(
        "{:>9}  {:>8}  {:>6}  {:>6}  {:>6}  {:>7}  {:>9}  {:>7}",
        "intensity", "accuracy", "fp", "fn", "pdr", "crashes", "recover_s", "retries"
    );
    for p in &points {
        println!(
            "{:>9.1}  {:>8.3}  {:>6.3}  {:>6.3}  {:>6.3}  {:>7}  {:>9}  {:>7}",
            p.intensity,
            p.rates.accuracy,
            p.rates.fp_rate,
            p.rates.fn_rate,
            p.rates.mean_pdr,
            p.crashes,
            p.mean_time_to_recover_s
                .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}")),
            p.revocation_retries,
        );
    }
    println!();

    for p in &points {
        gate.check(
            &format!("faults/{:.1}: zero false positives", p.intensity),
            p.rates.fp_rate == 0.0,
            format!("fp_rate {:.3}", p.rates.fp_rate),
        );
    }

    let baseline = &points[0];
    gate.check(
        "faults/0.0: fault-free sweep detects perfectly",
        baseline.rates.accuracy >= 0.999 && baseline.crashes == 0,
        format!(
            "accuracy {:.3}, crashes {}",
            baseline.rates.accuracy, baseline.crashes
        ),
    );

    let faulted: Vec<_> = points.iter().filter(|p| p.intensity > 0.0).collect();
    let total_crashes: u64 = faulted.iter().map(|p| p.crashes).sum();
    let total_restarts: u64 = faulted.iter().map(|p| p.restarts).sum();
    gate.check(
        "faults: crashes were injected and all restarted",
        total_crashes > 0 && total_restarts == total_crashes,
        format!("crashes {total_crashes}, restarts {total_restarts}"),
    );

    for p in &faulted {
        gate.check(
            &format!("faults/{:.1}: accuracy floor under faults", p.intensity),
            p.rates.accuracy >= 0.8,
            format!("accuracy {:.3}", p.rates.accuracy),
        );
        if p.crashes > 0 {
            gate.check(
                &format!("faults/{:.1}: crashed segments repopulate", p.intensity),
                p.mean_time_to_recover_s.is_some(),
                "no restart ever saw a member re-join".to_owned(),
            );
        }
    }

    if let Some(worst) = faulted
        .iter()
        .filter_map(|p| p.mean_time_to_recover_s)
        .fold(None::<f64>, |m, s| Some(m.map_or(s, |m| m.max(s))))
    {
        gate.check(
            "faults: membership recovers within 5 virtual seconds",
            worst <= 5.0,
            format!("worst mean time-to-recover {worst:.2}s"),
        );
    }

    if gate.failures.is_empty() {
        println!("\nAll fault-recovery gates passed.");
    } else {
        println!("\n{} gate(s) failed: {:?}", gate.failures.len(), gate.failures);
        std::process::exit(1);
    }
}
