//! `exec` — the PR-10 windowed-executor verification-throughput track
//! (`results/BENCH_pr10.json`).
//!
//! The workload is a 100,000-node strip carrying **platoon-relay
//! beacons**: every 25th node is a platoon leader whose periodic beacon
//! relays its followers' individually signed member reports (the V2X
//! aggregation pattern — receivers authenticate the whole platoon from
//! one broadcast). Every receiver in radio range verifies the leader's
//! envelope plus each member envelope it carries. Two legs run the same
//! world, differing only in *how* events execute and *how* envelopes
//! verify:
//!
//! * **Leg A (PR-8 baseline)**: serial executor, each receiver calls the
//!   scalar [`Sealed::verify`] inline — full signature math per envelope
//!   per receiver, so one broadcast heard by 24 receivers costs 24×
//!   (members + 1) verifications.
//! * **Leg B (PR-10)**: conservative-window parallel executor
//!   (`Windowed { threads: 8 }`) with a window-boundary verification
//!   prefetcher on the window tap: each window's *unique* envelopes
//!   flush through one batch [`VerifyQueue`] during the serial scan,
//!   every verdict lands in the process-global envelope memo, and the
//!   receivers' in-handler `verify_one` calls — running in parallel on
//!   the pool's worker lanes — become memo hits. Each envelope is proven
//!   once per window, not once per receiver.
//!
//! Gates (absolute floors, like every bench bin):
//!
//! 1. **identity** — Leg B under `Windowed { 8 }` finishes on the exact
//!    `EngineStamp`/`Stats::digest` of the serial executor, and on the
//!    exact stamp of Leg A (verification style is behaviorally
//!    invisible). The tentpole's bit-identity claim, at benchmark N.
//! 2. **speedup** — median paired-round event-throughput ratio
//!    Leg B / Leg A ≥ [`SPEEDUP_FLOOR`].
//! 3. **flush width** — the prefetcher's mean `VerifyQueue` flush width
//!    strictly exceeds [`FLUSH_WIDTH_FLOOR`]: window-boundary flushes
//!    really do batch past the ≤ 2 signatures-per-flush ceiling of the
//!    in-handler queue (the PR-7 finding).
//! 4. **clean** — zero verification failures anywhere: honest traffic
//!    must audit clean through every path.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use blackdp::{
    envelope_memo_clear, BoundaryAuditStats, BoundaryAuditor, Sealed, SignBytes, VerifyQueue,
};
use blackdp_crypto::{Certificate, Keypair, LongTermId, PublicKey, TaId, TrustedAuthority};
use blackdp_scenario::atomic_write;
use blackdp_sim::{
    Channel, Context, Duration, ExecutorMode, Node, NodeId, Position, Time, WindowEvent, World,
    WorldBackend, WorldConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OUT_PATH: &str = "results/BENCH_pr10.json";
const SCHEMA: &str = "blackdp-exec/v1";

/// Nodes on the strip (the PR-8 track's benchmark N).
const N: usize = 100_000;

/// Every `BROADCAST_STRIDE`-th node leads a platoon and beacons; the rest
/// only listen and verify. Keeps the verification volume bounded while
/// every broadcast still fans out to ~24 in-range receivers.
const BROADCAST_STRIDE: usize = 25;

/// Followers per platoon: each leader beacon relays this many member
/// envelopes, so a receiver verifies `MEMBERS + 1` signatures per
/// delivery.
const MEMBERS: usize = 6;

/// Minimum median Leg B / Leg A event-throughput ratio.
const SPEEDUP_FLOOR: f64 = 2.0;

/// The prefetcher's mean envelopes-per-flush must strictly exceed this
/// (the in-handler queue's structural ceiling).
const FLUSH_WIDTH_FLOOR: f64 = 2.0;

// ---------------------------------------------------------------------------
// Workload: platoon-relay beacons on a strip
// ---------------------------------------------------------------------------

/// One follower's signed safety report, re-sealed fresh every round.
#[derive(Debug, Clone, PartialEq)]
struct MemberReport {
    member: u32,
    round: u64,
}

impl SignBytes for MemberReport {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"exmbr");
        out.extend_from_slice(&self.member.to_be_bytes());
        out.extend_from_slice(&self.round.to_be_bytes());
    }
}

/// The leader's beacon body: its own identity and round, plus the relayed
/// member envelopes. The outer signature binds the members by their
/// signature *scalars* alone — a Schnorr challenge `e` already commits to
/// the signed message, so a relay cannot swap a member's report without
/// either breaking the member's own verification (body changed under its
/// `e`) or the outer's (scalars changed under the leader's signature).
/// Scalar binding keeps the outer signed-byte stream fixed-width per
/// member, which matters because the deferred verifier hashes these
/// bytes once per receiver per window.
#[derive(Debug, Clone, PartialEq)]
struct PlatoonBeacon {
    leader: u32,
    round: u64,
    members: Vec<Sealed<MemberReport>>,
}

impl SignBytes for PlatoonBeacon {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"exbcn");
        out.extend_from_slice(&self.leader.to_be_bytes());
        out.extend_from_slice(&self.round.to_be_bytes());
        for m in &self.members {
            out.extend_from_slice(&m.signature.e.to_be_bytes());
            out.extend_from_slice(&m.signature.s.to_be_bytes());
        }
    }
}

type Packet = Sealed<PlatoonBeacon>;

/// A leader's signing material: its own credential plus one per follower.
#[derive(Clone)]
struct PlatoonCreds {
    keys: Keypair,
    cert: Certificate,
    members: Vec<(Keypair, Certificate)>,
}

/// Leader-only node state (listeners carry `None`).
struct LeaderState {
    creds: PlatoonCreds,
    phase: Duration,
    period: Duration,
    /// Nonce source for sealing; timers run serially in both executors,
    /// so the draw order is executor-invariant.
    sign_rng: StdRng,
    round: u64,
}

/// A strip node: leaders seal and broadcast on a staggered timer; every
/// node authenticates everything it hears, either inline (scalar) or
/// through a `VerifyQueue` backed by the global envelope memo.
struct PlatoonNode {
    start: Position,
    velocity_x: f64,
    leader: Option<LeaderState>,
    ta_key: PublicKey,
    /// Leg B verifies through the queue (and thus the envelope memo).
    queued: bool,
    queue: VerifyQueue,
    verified: u64,
}

impl Node<Packet, u8> for PlatoonNode {
    fn position(&self, now: Time) -> Position {
        Position::new(
            self.start.x + self.velocity_x * now.as_secs_f64(),
            self.start.y,
        )
    }
    fn on_start(&mut self, ctx: &mut Context<'_, Packet, u8>) {
        if let Some(leader) = &self.leader {
            ctx.set_timer(leader.phase, 0);
        }
    }
    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Packet, u8>,
        _from: NodeId,
        p: Packet,
        _ch: Channel,
    ) {
        let now = ctx.now();
        let mut ok = 0u64;
        let mut err = 0u64;
        if self.queued {
            let mut tally = |r: Result<(), blackdp::AuthError>| match r {
                Ok(()) => ok += 1,
                Err(_) => err += 1,
            };
            tally(self.queue.verify_one(&p, self.ta_key, now));
            for m in &p.body.members {
                tally(self.queue.verify_one(m, self.ta_key, now));
            }
        } else {
            let mut tally = |r: Result<(), blackdp::AuthError>| match r {
                Ok(()) => ok += 1,
                Err(_) => err += 1,
            };
            tally(p.verify(self.ta_key, now));
            for m in &p.body.members {
                tally(m.verify(self.ta_key, now));
            }
        }
        self.verified += ok + err;
        ctx.count_by("verified_ok", ok);
        ctx.count_by("verified_err", err);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Packet, u8>, _token: u8) {
        let leader = self.leader.as_mut().expect("only leaders arm timers");
        leader.round += 1;
        let members = leader
            .creds
            .members
            .iter()
            .enumerate()
            .map(|(m, (keys, cert))| {
                Sealed::seal(
                    MemberReport {
                        member: m as u32,
                        round: leader.round,
                    },
                    *cert,
                    None,
                    keys,
                    &mut leader.sign_rng,
                )
            })
            .collect();
        let body = PlatoonBeacon {
            leader: leader.creds.cert.pseudonym.0 as u32,
            round: leader.round,
            members,
        };
        ctx.broadcast(Sealed::seal(
            body,
            leader.creds.cert,
            None,
            &leader.creds.keys,
            &mut leader.sign_rng,
        ));
        let period = leader.period;
        ctx.set_timer(period, 0);
    }
    fn state_digest(&self) -> u64 {
        let round = self.leader.as_ref().map_or(0, |l| l.round);
        self.verified ^ (round << 32)
    }
}

/// Everything shared by every run of one benchmark invocation, so both
/// legs build bit-identical worlds (same enrollment order, same keys,
/// same trajectories).
struct Fleet {
    ta_key: PublicKey,
    /// Credentials for leader slots, `None` for listeners, indexed by
    /// node.
    creds: Vec<Option<PlatoonCreds>>,
}

impl Fleet {
    fn provision(n: usize) -> Fleet {
        let mut rng = StdRng::seed_from_u64(0xeec5_10b5);
        let mut ta = TrustedAuthority::new(TaId(1), &mut rng);
        let mut next_id = 0u64;
        let mut enroll = |ta: &mut TrustedAuthority, rng: &mut StdRng| {
            let keys = Keypair::generate(rng);
            next_id += 1;
            let cert = ta.enroll(
                LongTermId(next_id),
                keys.public(),
                Time::ZERO,
                Duration::from_secs(3600),
                rng,
            );
            (keys, cert)
        };
        let creds = (0..n)
            .map(|i| {
                (i % BROADCAST_STRIDE == 0).then(|| {
                    let (keys, cert) = enroll(&mut ta, &mut rng);
                    let members = (0..MEMBERS).map(|_| enroll(&mut ta, &mut rng)).collect();
                    PlatoonCreds {
                        keys,
                        cert,
                        members,
                    }
                })
            })
            .collect();
        Fleet {
            ta_key: ta.public_key(),
            creds,
        }
    }

    fn build(&self, executor: ExecutorMode, queued: bool) -> World<Packet, u8> {
        let cfg = WorldConfig {
            radio_range_m: 300.0,
            seed: 0xb1ac_4d10,
            backend: WorldBackend::Sharded { shards: 4 },
            motion_bound_mps: 35.0,
            // This workload sends nothing over the wired channel, so the
            // wired latency is set to the radio latency instead of the
            // 1 ms default: the conservative window spans
            // `min(radio, wired)`, and a latency no packet ever uses
            // should not halve every window.
            wired_latency: Duration::from_millis(2),
            executor,
            ..WorldConfig::default()
        };
        let mut world = World::new(cfg);
        for (i, creds) in self.creds.iter().enumerate() {
            let speed = 10.0 + (i % 20) as f64;
            let dir = if i % 2 == 0 { 1.0 } else { -1.0 };
            let leader = creds.as_ref().map(|creds| LeaderState {
                creds: creds.clone(),
                // Staggered across the whole period so broadcasts land on
                // distinct timestamps.
                phase: Duration::from_micros((i as u64 * 131) % 1_000_000 + 1),
                period: Duration::from_micros(1_000_000 + (i as u64 % 997) * 404),
                sign_rng: StdRng::seed_from_u64(0x5ea1 ^ i as u64),
                round: 0,
            });
            world.spawn(Box::new(PlatoonNode {
                start: Position::new(i as f64 * 25.0, (i % 8) as f64 * 20.0),
                velocity_x: speed * dir,
                leader,
                ta_key: self.ta_key,
                queued,
                queue: VerifyQueue::new(),
                verified: 0,
            }));
        }
        world
    }
}

/// A cheap per-window dedup key: the certificate's and envelope's
/// signature scalars. Within one window the honest broadcast fan-out
/// delivers byte-identical envelope copies, so equal keys mean equal
/// envelopes here; the dedup only trims the *observational* prefetch
/// stream — every receiver's handler still verifies its own copy against
/// the full-byte-keyed memo, so verdicts never ride this shortcut.
fn sig_key<T: SignBytes>(sealed: &Sealed<T>) -> u128 {
    blackdp_crypto::fast_hash_128(&[
        &sealed.cert.signature.e.to_be_bytes(),
        &sealed.cert.signature.s.to_be_bytes(),
        &sealed.signature.e.to_be_bytes(),
        &sealed.signature.s.to_be_bytes(),
    ])
}

/// Installs the window-boundary verification prefetcher: each admitted
/// delivery's unique envelopes (outer beacon + relayed member reports)
/// enqueue during the serial scan, and the whole window flushes as one
/// batch at the `Flush` mark — warming the global memo before any
/// handler runs.
fn attach_prefetch(
    world: &mut World<Packet, u8>,
    ta_key: PublicKey,
) -> Rc<RefCell<BoundaryAuditor>> {
    let auditor = Rc::new(RefCell::new(BoundaryAuditor::new(ta_key, 4096)));
    let sink = Rc::clone(&auditor);
    let mut seen: HashSet<u128, blackdp_crypto::DigestHasherBuilder> = HashSet::default();
    world.set_window_tap(Box::new(move |event: WindowEvent<'_, Packet>| match event {
        WindowEvent::Delivery { at, payload, .. } => {
            // One key decides the whole delivery: a beacon's members
            // travel only inside that beacon, so a duplicate outer means
            // every inner was already observed too.
            if seen.insert(sig_key(payload)) {
                let mut sink = sink.borrow_mut();
                sink.observe(payload, at);
                for m in &payload.body.members {
                    if seen.insert(sig_key(m)) {
                        sink.observe(m, at);
                    }
                }
            }
        }
        WindowEvent::Flush { .. } => {
            // `seen` persists across windows (an envelope proven once is
            // proven for the leg — the memo it warmed is global too) and
            // only resets on a size cap so a long run stays bounded.
            if seen.len() > 1 << 16 {
                seen.clear();
            }
            sink.borrow_mut().flush();
        }
    }));
    auditor
}

/// One timed leg: runs the world to the virtual horizon and reports wall
/// seconds plus executed events (scheduled minus still-pending) and the
/// identity witnesses.
struct LegResult {
    wall_secs: f64,
    executed: u64,
    events_per_s: f64,
    stamp: blackdp_sim::EngineStamp,
    stats_digest: u64,
    verified_ok: u64,
    verified_err: u64,
    audit: Option<BoundaryAuditStats>,
}

fn timed_leg(fleet: &Fleet, executor: ExecutorMode, queued: bool, horizon: Time) -> LegResult {
    // Every leg starts crypto-cold so rounds are comparable: no verdicts
    // leak across legs through the process-global envelope memo or the
    // per-thread certificate cache.
    envelope_memo_clear();
    blackdp_crypto::cert_cache_clear();
    let mut world = fleet.build(executor, queued);
    let auditor = queued.then(|| attach_prefetch(&mut world, fleet.ta_key));
    let started = Instant::now();
    world.run_until(horizon);
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let stamp = world.engine_stamp();
    let executed = stamp.scheduled - stamp.pending;
    let audit = auditor.map(|a| {
        let mut a = a.borrow_mut();
        a.flush();
        a.stats()
    });
    LegResult {
        wall_secs,
        executed,
        events_per_s: executed as f64 / wall_secs,
        stamp,
        stats_digest: world.stats().digest(),
        verified_ok: world.stats().get("verified_ok"),
        verified_err: world.stats().get("verified_err"),
        audit,
    }
}

// ---------------------------------------------------------------------------
// Reporting (mirrors the scale bin's JSON shape)
// ---------------------------------------------------------------------------

struct Metrics(Vec<(String, f64)>);

impl Metrics {
    fn put(&mut self, name: &str, value: f64) {
        self.0.retain(|(n, _)| n != name);
        self.0.push((name.to_owned(), value));
    }
}

fn render_json(mode: &str, n: usize, baseline: &Metrics, latest: &Metrics) -> String {
    let obj = |m: &Metrics| {
        let mut s = String::new();
        for (i, (name, value)) in m.0.iter().enumerate() {
            let sep = if i + 1 == m.0.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {value:.3}{sep}");
        }
        s
    };
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"n\": {n},\n  \"baseline\": {{\n{}  }},\n  \"latest\": {{\n{}  }}\n}}\n",
        obj(baseline),
        obj(latest)
    )
}

fn load_baseline(path: &str) -> Option<(String, Metrics)> {
    let text = std::fs::read_to_string(path).ok()?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mode = text
        .split("\"mode\": \"")
        .nth(1)?
        .split('"')
        .next()?
        .to_owned();
    let body = text.split("\"baseline\": {").nth(1)?.split('}').next()?;
    let mut metrics = Metrics(Vec::new());
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if let Ok(value) = value.trim().parse::<f64>() {
            metrics.put(name.trim().trim_matches('"'), value);
        }
    }
    Some((mode, metrics))
}

struct Gate {
    name: String,
    pass: bool,
    detail: String,
}

fn gate(gates: &mut Vec<Gate>, name: &str, pass: bool, detail: String) {
    let verdict = if pass { "PASS" } else { "FAIL" };
    println!("  [{verdict}] {name}: {detail}");
    gates.push(Gate {
        name: name.to_owned(),
        pass,
        detail,
    });
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let (rounds, horizon) = match mode.as_str() {
        "smoke" => (3usize, Time::from_millis(400)),
        "full" => (5, Time::from_millis(900)),
        other => {
            eprintln!("usage: exec [smoke|full] (got {other:?})");
            std::process::exit(2);
        }
    };

    let mut gates: Vec<Gate> = Vec::new();
    let mut latest = Metrics(Vec::new());
    latest.put("exec_n", N as f64);

    println!("==> exec: provisioning {N} nodes ({} platoons of {MEMBERS})", N / BROADCAST_STRIDE);
    let fleet = Fleet::provision(N);

    // -- Identity: windowed ≡ serial at benchmark N -------------------------
    println!("==> exec: bit-identity, Leg B serial vs Windowed{{8}}");
    let id_serial = timed_leg(&fleet, ExecutorMode::Serial, true, horizon);
    let id_windowed = timed_leg(&fleet, ExecutorMode::Windowed { threads: 8 }, true, horizon);
    assert_eq!(
        id_serial.stamp, id_windowed.stamp,
        "EngineStamp diverged between serial and windowed executors"
    );
    assert_eq!(
        id_serial.stats_digest, id_windowed.stats_digest,
        "Stats digest diverged between serial and windowed executors"
    );
    gate(
        &mut gates,
        "exec/identity",
        true,
        format!(
            "serial and Windowed{{8}} agree on EngineStamp and Stats digest over {} event(s)",
            id_windowed.executed
        ),
    );

    if std::env::var_os("EXEC_PROBE").is_some() {
        let legs: [(&str, ExecutorMode, bool); 5] = [
            ("serial+scalar", ExecutorMode::Serial, false),
            ("serial+memo", ExecutorMode::Serial, true),
            ("win1+memo", ExecutorMode::Windowed { threads: 1 }, true),
            ("win8+memo", ExecutorMode::Windowed { threads: 8 }, true),
            ("win8+scalar", ExecutorMode::Windowed { threads: 8 }, false),
        ];
        for (name, ex, queued) in legs {
            let r = timed_leg(&fleet, ex, queued, horizon);
            println!(
                "  probe {name:>14}: {:>9.0} ev/s ({:.3}s, {} events)",
                r.events_per_s, r.wall_secs, r.executed
            );
        }
    }

    // -- Paired throughput rounds ------------------------------------------
    println!("==> exec: paired rounds, Leg A (scalar+serial) vs Leg B (memo+windowed)");
    let mut ratios = Vec::new();
    let mut last_a: Option<LegResult> = None;
    let mut last_b: Option<LegResult> = None;
    let mut audit_total = BoundaryAuditStats::default();
    for round in 0..rounds {
        let a = timed_leg(&fleet, ExecutorMode::Serial, false, horizon);
        let b = timed_leg(&fleet, ExecutorMode::Windowed { threads: 8 }, true, horizon);
        // Cross-leg identity: the verification style must be behaviorally
        // invisible — same events, same stamps, same counters.
        assert_eq!(a.stamp, b.stamp, "Leg A and Leg B stamps diverged");
        assert_eq!(a.verified_ok, b.verified_ok, "verification counters diverged");
        let ratio = b.events_per_s / a.events_per_s;
        println!(
            "  round {round}: A {:>9.0} ev/s ({:.2}s), B {:>9.0} ev/s ({:.2}s) → {ratio:.2}x",
            a.events_per_s, a.wall_secs, b.events_per_s, b.wall_secs
        );
        ratios.push(ratio);
        let audit = b.audit.expect("Leg B runs with the prefetcher attached");
        audit_total.enqueued += audit.enqueued;
        audit_total.flushes += audit.flushes;
        audit_total.failures += audit.failures;
        audit_total.max_width = audit_total.max_width.max(audit.max_width);
        last_a = Some(a);
        last_b = Some(b);
    }
    let (a, b) = (last_a.unwrap(), last_b.unwrap());
    let speedup = median(&mut ratios);
    latest.put("exec_events", a.executed as f64);
    latest.put("exec_verified_per_event", (MEMBERS + 1) as f64);
    latest.put("exec_events_per_s_scalar_serial", a.events_per_s);
    latest.put("exec_events_per_s_memo_windowed", b.events_per_s);
    latest.put("exec_speedup_median", speedup);
    latest.put("exec_verified_ok", a.verified_ok as f64);
    gate(
        &mut gates,
        "exec/speedup",
        speedup >= SPEEDUP_FLOOR,
        format!(
            "median Leg B / Leg A throughput {speedup:.2}x over {rounds} paired round(s) \
             (floor {SPEEDUP_FLOOR:.1}x)"
        ),
    );

    // -- Prefetch flush width ----------------------------------------------
    let mean_width = if audit_total.flushes == 0 {
        0.0
    } else {
        audit_total.enqueued as f64 / audit_total.flushes as f64
    };
    latest.put("exec_prefetch_enqueued", audit_total.enqueued as f64);
    latest.put("exec_prefetch_flushes", audit_total.flushes as f64);
    latest.put("exec_prefetch_mean_width", mean_width);
    latest.put("exec_prefetch_max_width", audit_total.max_width as f64);
    gate(
        &mut gates,
        "exec/flush-width",
        mean_width > FLUSH_WIDTH_FLOOR && audit_total.flushes > 0,
        format!(
            "{} unique envelope(s) over {} window flush(es): mean width {mean_width:.2} \
             (must exceed {FLUSH_WIDTH_FLOOR:.1}), widest {}",
            audit_total.enqueued, audit_total.flushes, audit_total.max_width
        ),
    );
    gate(
        &mut gates,
        "exec/clean",
        audit_total.failures == 0 && a.verified_err == 0 && b.verified_err == 0,
        format!(
            "{} prefetch failure(s), {} / {} in-handler failure(s) on honest traffic",
            audit_total.failures, a.verified_err, b.verified_err
        ),
    );

    // -- Report ------------------------------------------------------------
    let baseline = match load_baseline(OUT_PATH) {
        Some((stored_mode, stored)) if stored_mode == mode => stored,
        _ => Metrics(latest.0.clone()),
    };
    let json = render_json(&mode, N, &baseline, &latest);
    atomic_write(Path::new(OUT_PATH), json.as_bytes()).expect("write BENCH_pr10.json");
    println!("wrote {OUT_PATH}");

    let failed: Vec<&Gate> = gates.iter().filter(|g| !g.pass).collect();
    if failed.is_empty() {
        println!("exec: all {} gate(s) pass", gates.len());
    } else {
        for g in &failed {
            eprintln!("exec: FAILED {}: {}", g.name, g.detail);
        }
        std::process::exit(1);
    }
}
