//! `scale` — the PR-8 large-N shard-scaling track (`results/BENCH_pr8.json`).
//!
//! Three sections, all gated:
//!
//! 1. **Scaling curve** — a large moving-beacon world (N = 100,000 in
//!    smoke, N = 1,000,000 in full) runs a fixed event budget under the
//!    serial backend and under `Sharded { shards }` for each tracked shard
//!    count. Every sharded run must finish on the **same** `EngineStamp`
//!    and `Stats::digest` as the serial oracle (the differential claim,
//!    re-checked at benchmark scale), and the recorded events/s must show
//!    the algorithmic win: the serial grid rebuilds O(N) at every jittered
//!    broadcast timestamp, while the sharded backend's motion-bound
//!    staleness horizon makes rebuilds rare. Gates: best sharded speedup
//!    ≥ [`SPEEDUP_FLOOR`] over serial, and a tolerance-monotone curve —
//!    on a one-core container extra shards cannot help, but they must
//!    never collapse below [`MONOTONE_FLOOR`] of the best seen so far.
//! 2. **Churn** — a smaller world run long enough that nodes cross band
//!    boundaries across several rebuild horizons; gates that handoffs
//!    actually happened and the stamp still matches serial.
//! 3. **Boundary audit** — a real 90-vehicle scenario on the sharded
//!    backend with [`attach_boundary_audit`] tapping cross-band sealed
//!    envelopes into a [`BoundaryAuditor`] batch; gates that flushes
//!    reached the batch verifier's lane threshold and nothing failed.
//!
//! All gates are absolute floors (like the perf bin's `SPEEDUP_FLOORS`):
//! a baseline file cannot ratchet them away.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use blackdp_scenario::{
    atomic_write, attach_boundary_audit, build_scenario, drain_boundary_audit, ScenarioConfig,
    TrialSpec,
};
use blackdp_sim::{
    Channel, Context, Duration, Node, NodeId, Position, ShardDiagnostics, Time, World,
    WorldBackend, WorldConfig,
};

const OUT_PATH: &str = "results/BENCH_pr8.json";
const SCHEMA: &str = "blackdp-scale/v1";

/// Shard counts the scaling curve tracks, ascending.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Minimum best-sharded-over-serial events/s ratio at benchmark N. The
/// win is algorithmic (rebuild avoidance), not thread parallelism, so it
/// must hold even on a single-core container.
const SPEEDUP_FLOOR: f64 = 3.0;

/// Scaling-curve regression floor: each shard count's events/s must stay
/// within this fraction of the best seen at any smaller shard count. On
/// one core the curve is expected to be flat; this catches a collapse
/// (e.g. per-shard overhead growing superlinearly) without demanding
/// parallel speedup the hardware cannot give.
const MONOTONE_FLOOR: f64 = 0.5;

/// The batch verifier's scalar/SIMD crossover (crypto `LANE_THRESHOLD`):
/// boundary-audit flushes must reach at least this width.
const LANE_THRESHOLD: usize = 4;

// ---------------------------------------------------------------------------
// Workload: moving beacons on a strip
// ---------------------------------------------------------------------------

/// A beacon on a straight-line trajectory that rebroadcasts on a periodic
/// timer. Periods and phases are staggered per index so broadcasts land
/// on distinct timestamps — the access pattern that forces the serial
/// grid to rebuild O(N) per broadcast while the sharded backend's
/// staleness horizon keeps its index live.
struct Beacon {
    start: Position,
    velocity_x: f64,
    phase: Duration,
    period: Duration,
    heard: u64,
}

impl Node<u32, u8> for Beacon {
    fn position(&self, now: Time) -> Position {
        Position::new(
            self.start.x + self.velocity_x * now.as_secs_f64(),
            self.start.y,
        )
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
        ctx.set_timer(self.phase, 0);
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
        self.heard += 1;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _token: u8) {
        ctx.broadcast(0);
        ctx.set_timer(self.period, 0);
    }
    fn state_digest(&self) -> u64 {
        self.heard
    }
}

/// Strip geometry shared by every run of one section, so serial and
/// sharded worlds are built identically (same spawn order, same
/// trajectories) and their stamps are comparable.
struct Strip {
    n: usize,
    spacing_m: f64,
    range_m: f64,
    /// Declared motion bound; actual speeds stay strictly inside it.
    bound_mps: f64,
    period_base: Duration,
}

impl Strip {
    fn build(&self, backend: WorldBackend) -> World<u32, u8> {
        let cfg = WorldConfig {
            radio_range_m: self.range_m,
            seed: 0xb1ac_4d07,
            backend,
            motion_bound_mps: self.bound_mps,
            ..WorldConfig::default()
        };
        let mut world = World::new(cfg);
        let base = self.period_base.as_micros();
        for i in 0..self.n {
            // Speeds 10..30 m/s, alternating direction; periods and start
            // phases staggered so no two broadcasts share a timestamp.
            let speed = 10.0 + (i % 20) as f64;
            let dir = if i % 2 == 0 { 1.0 } else { -1.0 };
            world.spawn(Box::new(Beacon {
                start: Position::new(i as f64 * self.spacing_m, (i % 8) as f64 * 20.0),
                velocity_x: speed * dir,
                phase: Duration::from_micros((i as u64 * 131) % base + 1),
                period: Duration::from_micros(base + (i as u64 % 997) * 404),
                heard: 0,
            }));
        }
        world
    }
}

/// One timed run: executes exactly `budget` events and reports events/s
/// plus the bit-identity witnesses. Build time is excluded — the curve
/// measures steady-state event throughput, not spawn cost.
struct RunResult {
    events_per_s: f64,
    executed: u64,
    stamp: blackdp_sim::EngineStamp,
    stats_digest: u64,
    diagnostics: Option<ShardDiagnostics>,
}

fn timed_run(strip: &Strip, backend: WorldBackend, budget: u64) -> RunResult {
    let mut world = strip.build(backend);
    let started = Instant::now();
    let executed = world.run_to_completion(budget);
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    RunResult {
        events_per_s: executed as f64 / secs,
        executed,
        stamp: world.engine_stamp(),
        stats_digest: world.stats().digest(),
        diagnostics: world.shard_diagnostics(),
    }
}

// ---------------------------------------------------------------------------
// Reporting (mirrors the perf bin's JSON shape)
// ---------------------------------------------------------------------------

struct Metrics(Vec<(String, f64)>);

impl Metrics {
    fn put(&mut self, name: &str, value: f64) {
        self.0.retain(|(n, _)| n != name);
        self.0.push((name.to_owned(), value));
    }
}

fn render_json(mode: &str, n: usize, baseline: &Metrics, latest: &Metrics) -> String {
    let obj = |m: &Metrics| {
        let mut s = String::new();
        for (i, (name, value)) in m.0.iter().enumerate() {
            let sep = if i + 1 == m.0.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {value:.3}{sep}");
        }
        s
    };
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"n\": {n},\n  \"baseline\": {{\n{}  }},\n  \"latest\": {{\n{}  }}\n}}\n",
        obj(baseline),
        obj(latest)
    )
}

/// Returns the stored `mode` and `baseline` entries of a previous run, or
/// `None` when the file is absent or not recognizably ours.
fn load_baseline(path: &str) -> Option<(String, Metrics)> {
    let text = std::fs::read_to_string(path).ok()?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mode = text
        .split("\"mode\": \"")
        .nth(1)?
        .split('"')
        .next()?
        .to_owned();
    let body = text.split("\"baseline\": {").nth(1)?.split('}').next()?;
    let mut metrics = Metrics(Vec::new());
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if let Ok(value) = value.trim().parse::<f64>() {
            metrics.put(name.trim().trim_matches('"'), value);
        }
    }
    Some((mode, metrics))
}

// ---------------------------------------------------------------------------
// Gates
// ---------------------------------------------------------------------------

struct Gate {
    name: String,
    pass: bool,
    detail: String,
}

fn gate(gates: &mut Vec<Gate>, name: &str, pass: bool, detail: String) {
    let verdict = if pass { "PASS" } else { "FAIL" };
    println!("  [{verdict}] {name}: {detail}");
    gates.push(Gate {
        name: name.to_owned(),
        pass,
        detail,
    });
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let smoke = match mode.as_str() {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("usage: scale [smoke|full] (got {other:?})");
            std::process::exit(2);
        }
    };
    // Full mode scales N to the million-vehicle track; the event budget
    // grows much more slowly because the serial oracle's cost per
    // broadcast is O(N) — the budget only needs enough broadcasts to
    // dominate the one-off build and first rebuild.
    let (n, budget) = if smoke {
        (100_000usize, 120_000u64)
    } else {
        (1_000_000usize, 150_000u64)
    };

    let mut gates: Vec<Gate> = Vec::new();
    let mut latest = Metrics(Vec::new());
    latest.put("scale_n", n as f64);

    // -- Section 1: scaling curve ------------------------------------------
    println!("==> scale: events/s vs shard count, N = {n} ({mode})");
    let strip = Strip {
        n,
        spacing_m: 25.0,
        range_m: 300.0,
        bound_mps: 35.0,
        period_base: Duration::from_secs(1),
    };
    let serial = timed_run(&strip, WorldBackend::Serial, budget);
    println!(
        "  serial: {:>12.0} events/s ({} events)",
        serial.events_per_s, serial.executed
    );
    latest.put("scale_events_per_s_serial", serial.events_per_s);

    let mut best = 0.0f64;
    let mut best_speedup = 0.0f64;
    let mut monotone_ok = true;
    for shards in SHARD_COUNTS {
        let run = timed_run(&strip, WorldBackend::Sharded { shards }, budget);
        let speedup = run.events_per_s / serial.events_per_s;
        let diag = run.diagnostics.expect("sharded run has diagnostics");
        println!(
            "  shards {shards}: {:>12.0} events/s ({speedup:.2}x, {} rebuild(s), {} handoff(s))",
            run.events_per_s, diag.full_rebuilds, diag.handoffs
        );
        latest.put(&format!("scale_events_per_s_shards{shards}"), run.events_per_s);
        latest.put(&format!("scale_speedup_shards{shards}"), speedup);

        // The differential claim at benchmark scale: every sharded run
        // lands on the serial oracle's exact witnesses.
        assert_eq!(run.executed, serial.executed, "event budget mismatch");
        assert_eq!(
            run.stamp, serial.stamp,
            "EngineStamp diverged from serial at {shards} shard(s)"
        );
        assert_eq!(
            run.stats_digest, serial.stats_digest,
            "Stats digest diverged from serial at {shards} shard(s)"
        );

        if run.events_per_s < MONOTONE_FLOOR * best {
            monotone_ok = false;
        }
        best = best.max(run.events_per_s);
        best_speedup = best_speedup.max(speedup);
    }
    latest.put("scale_speedup_best", best_speedup);
    gate(
        &mut gates,
        "scale/identity",
        true,
        format!(
            "serial and all sharded runs agree on EngineStamp and Stats digest at N = {n}"
        ),
    );
    gate(
        &mut gates,
        "scale/speedup",
        best_speedup >= SPEEDUP_FLOOR,
        format!("best sharded speedup {best_speedup:.2}x (floor {SPEEDUP_FLOOR:.1}x)"),
    );
    gate(
        &mut gates,
        "scale/monotone",
        monotone_ok,
        format!(
            "each shard count holds ≥ {MONOTONE_FLOOR:.1}x of the best smaller-count events/s"
        ),
    );

    // -- Section 2: churn (handoffs across horizons) -----------------------
    println!("==> scale: boundary churn, N = 2000 over 30 virtual seconds");
    let churn = Strip {
        n: 2_000,
        spacing_m: 50.0,
        range_m: 300.0,
        bound_mps: 35.0,
        period_base: Duration::from_secs(4),
    };
    let run_churn = |backend: WorldBackend| {
        let mut world = churn.build(backend);
        world.run_until(Time::from_secs(30));
        let diag = world.shard_diagnostics();
        (world.engine_stamp(), world.stats().digest(), diag)
    };
    let (churn_serial_stamp, churn_serial_digest, _) = run_churn(WorldBackend::Serial);
    let (churn_stamp, churn_digest, diag) = run_churn(WorldBackend::Sharded { shards: 4 });
    let diag = diag.expect("sharded churn run has diagnostics");
    latest.put("churn_handoffs", diag.handoffs as f64);
    latest.put("churn_full_rebuilds", diag.full_rebuilds as f64);
    assert_eq!(churn_stamp, churn_serial_stamp, "churn stamp diverged");
    assert_eq!(churn_digest, churn_serial_digest, "churn digest diverged");
    gate(
        &mut gates,
        "churn/handoffs",
        diag.handoffs > 0 && diag.full_rebuilds >= 4,
        format!(
            "{} handoff(s) across {} rebuild horizon(s), stamp identical to serial",
            diag.handoffs, diag.full_rebuilds
        ),
    );

    // -- Section 3: boundary audit through the batch verifier --------------
    println!("==> scale: cross-band boundary audit, 90-vehicle scenario");
    let mut cfg = ScenarioConfig::small_test();
    cfg.vehicles = 90;
    cfg.sim_duration = Duration::from_secs(8);
    cfg.backend = WorldBackend::Sharded { shards: 4 };
    let mut built = build_scenario(&cfg, &TrialSpec::single(7, 2, 10));
    let auditor = attach_boundary_audit(&mut built, 2 * LANE_THRESHOLD);
    built
        .world
        .run_until(Time::from_micros(cfg.sim_duration.as_micros()));
    let audit = drain_boundary_audit(&auditor);
    latest.put("audit_enqueued", audit.enqueued as f64);
    latest.put("audit_flushes", audit.flushes as f64);
    latest.put("audit_max_width", audit.max_width as f64);
    latest.put("audit_failures", audit.failures as f64);
    gate(
        &mut gates,
        "audit/width",
        audit.max_width >= LANE_THRESHOLD && audit.enqueued > 0,
        format!(
            "{} envelope(s) in {} flush(es), widest {} (lane threshold {LANE_THRESHOLD})",
            audit.enqueued, audit.flushes, audit.max_width
        ),
    );
    gate(
        &mut gates,
        "audit/clean",
        audit.failures == 0,
        format!("{} audit failure(s)", audit.failures),
    );

    // -- Report ------------------------------------------------------------
    // Baseline policy mirrors the perf bin: keep a stored same-mode
    // baseline for events/s history, else this run seeds it. All gates
    // above are absolute, so the baseline is informational.
    let baseline = match load_baseline(OUT_PATH) {
        Some((stored_mode, stored)) if stored_mode == mode => stored,
        _ => Metrics(latest.0.clone()),
    };
    let json = render_json(&mode, n, &baseline, &latest);
    atomic_write(Path::new(OUT_PATH), json.as_bytes()).expect("write BENCH_pr8.json");
    println!("wrote {OUT_PATH}");

    let failed: Vec<&Gate> = gates.iter().filter(|g| !g.pass).collect();
    if failed.is_empty() {
        println!("scale: all {} gate(s) pass", gates.len());
    } else {
        for g in &failed {
            eprintln!("scale: FAILED {}: {}", g.name, g.detail);
        }
        std::process::exit(1);
    }
}
