//! A command-line trial runner: stage any single scenario and inspect it.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin trial -- \
//!     [--seed N] [--attack none|false|single|cooperative|grayhole] \
//!     [--cluster C] [--drop P] [--evasion none|legit|flee|renew] \
//!     [--dest C|none] [--vehicles N] [--loss P] [--defense blackdp|none|peak|threshold|first] \
//!     [--moves] [--verbose] [--journal]
//! ```

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    attach_journal, build_scenario, harvest, AttackSetup, DefenseMode, RsuNode, ScenarioConfig,
    TrialSpec,
};
use blackdp_sim::Time;

fn parse_args() -> Result<(ScenarioConfig, TrialSpec, bool, bool), String> {
    let mut cfg = ScenarioConfig::paper_table1();
    let mut seed = 1u64;
    let mut attack = "single".to_owned();
    let mut cluster = 2u32;
    let mut drop = 0.5f64;
    let mut evasion = EvasionPolicy::None;
    let mut dest: Option<u32> = Some(5);
    let mut moves = false;
    let mut verbose = false;
    let mut journal = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => seed = next(&mut i)?.parse().map_err(|e| format!("seed: {e}"))?,
            "--attack" => attack = next(&mut i)?,
            "--cluster" => cluster = next(&mut i)?.parse().map_err(|e| format!("cluster: {e}"))?,
            "--drop" => drop = next(&mut i)?.parse().map_err(|e| format!("drop: {e}"))?,
            "--evasion" => {
                evasion = match next(&mut i)?.as_str() {
                    "none" => EvasionPolicy::None,
                    "legit" => EvasionPolicy::ActLegitimately,
                    "flee" => EvasionPolicy::Flee,
                    "renew" => EvasionPolicy::RenewIdentity,
                    other => return Err(format!("unknown evasion `{other}`")),
                }
            }
            "--dest" => {
                let v = next(&mut i)?;
                dest = if v == "none" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("dest: {e}"))?)
                };
            }
            "--vehicles" => {
                cfg.vehicles = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("vehicles: {e}"))?
            }
            "--loss" => cfg.radio_loss = next(&mut i)?.parse().map_err(|e| format!("loss: {e}"))?,
            "--defense" => {
                cfg.defense = match next(&mut i)?.as_str() {
                    "blackdp" => DefenseMode::BlackDp,
                    "none" => DefenseMode::None,
                    "peak" => DefenseMode::BaselinePeak,
                    "threshold" => DefenseMode::BaselineThreshold,
                    "first" => DefenseMode::BaselineFirstRrep,
                    other => return Err(format!("unknown defense `{other}`")),
                }
            }
            "--moves" => moves = true,
            "--verbose" => verbose = true,
            "--journal" => journal = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let attack = match attack.as_str() {
        "none" => AttackSetup::None,
        "false" => AttackSetup::FalseSuspicion {
            cross_cluster: false,
        },
        "single" => AttackSetup::Single { cluster },
        "cooperative" => AttackSetup::Cooperative { cluster },
        "grayhole" => AttackSetup::GrayHole {
            cluster,
            drop_probability: drop,
        },
        other => return Err(format!("unknown attack `{other}`")),
    };
    let spec = TrialSpec {
        seed,
        attack,
        evasion,
        source_cluster: 1,
        dest_cluster: dest,
        attacker_moves: moves,
        attacker_fake_hello: false,
    };
    Ok((cfg, spec, verbose, journal))
}

fn main() {
    let (cfg, spec, verbose, want_journal) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("see the module docs (`--help` equivalent) at the top of trial.rs");
            std::process::exit(2);
        }
    };

    println!("spec: {spec:?}");
    let mut built = build_scenario(&cfg, &spec);
    let journal = want_journal.then(|| attach_journal(&mut built));
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    if let Some(journal) = &journal {
        let journal = journal.borrow();
        println!("--- frame journal: {} deliveries ---", journal.len());
        for (kind, count) in journal.kind_histogram() {
            println!("{kind:>14} x {count}");
        }
    }

    if verbose {
        println!("--- statistics ---");
        for (k, v) in built.world.stats().iter() {
            println!("{k} = {v}");
        }
        println!("--- RSU timelines ---");
        for &r in &built.rsus {
            let rsu = built.world.get::<RsuNode>(r).unwrap();
            for (t, e) in rsu.timeline() {
                println!("{t} cluster {}: {e:?}", rsu.cluster_head().cluster());
            }
        }
    }

    let outcome = harvest(&cfg, &spec, &built);
    println!("--- outcome ---");
    println!("class:              {:?}", outcome.class);
    println!("reported:           {}", outcome.reported);
    println!("attacker confirmed: {}", outcome.attacker_confirmed);
    println!("attacker revoked:   {}", outcome.attacker_revoked);
    println!("detection packets:  {:?}", outcome.detection_packets);
    println!(
        "detection latency:  {}",
        outcome
            .detection_latency
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "data:               {} sent / {} delivered (PDR {:.0}%), {} dropped by attacker",
        outcome.data_sent,
        outcome.data_delivered,
        outcome.pdr() * 100.0,
        outcome.data_dropped_by_attacker
    );
    for (suspect, verdict, packets) in &outcome.detections {
        println!("episode:            {suspect} → {verdict:?} ({packets} packets)");
    }
}
