//! Regenerates **Figure 5 — Number of detection packets** needed by
//! BlackDP's RSUs per detection scenario.
//!
//! Paper values: 4–6 packets with no attacker; 6 for a single attacker in
//! the originator's cluster; 8 when it responds then moves to the next
//! cluster; 9 when it additionally started in a different cluster; 8–11
//! for cooperative attacks.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin fig5 [repetitions-per-scenario]
//! ```

use blackdp_bench::range_summary;
use blackdp_scenario::{fig5, ScenarioConfig};

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let cfg = ScenarioConfig::paper_table1();

    println!("Figure 5 — detection packets per scenario ({repetitions} trials each)");
    println!("{:-<100}", "");
    let rows = fig5(&cfg, repetitions);
    for row in &rows {
        println!(
            "{:50} paper {:>2}-{:<2}  measured {}",
            row.label,
            row.paper_range.0,
            row.paper_range.1,
            range_summary(&row.measured),
        );
    }
    println!();

    // Shape check: measured ranges overlap the paper's bands.
    let mut in_band = 0usize;
    for row in &rows {
        if let (Some(lo), Some(hi)) = (row.min(), row.max()) {
            let (plo, phi) = row.paper_range;
            // Allow one packet of slack: message orderings under radio
            // jitter legitimately add or save a forward.
            if hi >= plo.saturating_sub(1) && lo <= phi + 1 {
                in_band += 1;
            } else {
                println!(
                    "OUT OF BAND: {} measured {lo}-{hi} vs paper {plo}-{phi}",
                    row.label
                );
            }
        }
    }
    println!(
        "shape: {in_band}/{} scenarios within one packet of the paper's bands",
        rows.len()
    );
}
