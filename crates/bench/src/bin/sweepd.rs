//! `sweepd` — supervised, crash-resumable sweep driver.
//!
//! Runs a fixed campaign of fuzz-corpus trials through the scenario
//! orchestrator with checkpointing workers, and proves the crash-safety
//! story end to end:
//!
//! * `sweepd serial` — compute the campaign serially and print the
//!   canonical merged result text (the oracle).
//! * `sweepd run --dir D [--workers N] [--chaos] [--dawdle] [--die-after K]`
//!   — run the campaign under supervision. `--chaos` makes every worker
//!   SIGKILL itself on its first attempt *after* persisting its checkpoint
//!   snapshot (the retry resumes from it); `--die-after K` SIGKILLs the
//!   orchestrator itself once `K` batch results exist, leaving a
//!   half-finished campaign directory for a later resume.
//! * `sweepd worker [--chaos] [--dawdle] <dir> <index> <arg> <attempt>` —
//!   the per-batch worker (spawned by `run`; not for direct use).
//! * `sweepd smoke` — the CI gate: serial oracle vs. a worker-chaos
//!   campaign vs. an orchestrator-kill-then-resume campaign, asserting
//!   every merged result is byte-identical to the oracle.
//!
//! Worker results are written atomically, so a SIGKILL at any instant
//! leaves either a complete result or none — never a torn file — and the
//! merged campaign output is bit-identical to the serial run regardless
//! of crash, retry, steal, or resume interleavings.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration as WallDuration;

use blackdp_scenario::{
    atomic_write, chain_trace, done_path, heartbeat_path, merge_results, nearest_checkpoint,
    record_trial_with_checkpoints, resume_trial, run_campaign, trial_fingerprint, BatchSpec,
    FuzzCase, OrchestratorConfig, Snapshot, TraceEvent, TrialOutcome, WorkerCommand,
};
use blackdp_sim::Duration;

/// Seeds of the fixed smoke campaign (one batch per seed).
const CAMPAIGN_SEEDS: [u64; 5] = [11, 23, 37, 51, 68];

/// Checkpoints per trial.
const CHECKPOINTS: u64 = 4;

/// How long `--dawdle` workers stall before committing their result, so
/// an orchestrator kill reliably lands mid-campaign.
const DAWDLE: WallDuration = WallDuration::from_millis(300);

fn campaign_batches() -> Vec<BatchSpec> {
    CAMPAIGN_SEEDS
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let mut case = FuzzCase::baseline(seed);
            case.sim_secs = 12;
            case.vehicles = 24;
            BatchSpec {
                index: i as u32,
                arg: case.to_line(),
            }
        })
        .collect()
}

/// Canonical per-batch result text — a pure function of the case and the
/// (deterministic) trial, so any two honest computations of a batch
/// render byte-identical results.
fn render_result(case: &FuzzCase, outcome: &TrialOutcome, events: &[TraceEvent]) -> String {
    format!(
        "case {}\nclass={:?} reported={} attacker_confirmed={} honest_confirmed={} \
         revoked={} sent={} delivered={} events={} chain={:#018x}\n",
        case.to_line(),
        outcome.class,
        outcome.reported,
        outcome.attacker_confirmed,
        outcome.honest_confirmed,
        outcome.attacker_revoked,
        outcome.data_sent,
        outcome.data_delivered,
        events.len(),
        chain_trace(events),
    )
}

fn snap_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("batch_{index}.snap"))
}

fn sigkill_self() -> ! {
    let _ = Command::new("kill")
        .arg("-9")
        .arg(std::process::id().to_string())
        .status();
    // SIGKILL is not catchable; if the kill binary itself was missing,
    // fall back to an abnormal exit so the supervisor still sees a crash.
    std::process::exit(9);
}

/// Computes one batch: record with checkpoints (persisting the snapshot),
/// or — when a snapshot from a killed predecessor exists — resume from
/// its mid-flight checkpoint instead of starting over.
fn compute_batch(dir: &Path, index: u32, case: &FuzzCase, chaos_crash: bool) -> String {
    let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
    let horizon = cfg.sim_duration.as_micros();
    let interval = Duration::from_micros((horizon / CHECKPOINTS).max(1));

    let resumed = std::fs::read(snap_path(dir, index))
        .ok()
        .and_then(|bytes| Snapshot::decode(&bytes).ok())
        .filter(|snap| snap.fingerprint == trial_fingerprint(&cfg, &spec, &faults))
        .and_then(|snap| {
            let from = nearest_checkpoint(&snap, horizon / 2)?;
            resume_trial(&cfg, &spec, &faults, &snap, from).ok()
        });

    let (outcome, events) = match resumed {
        Some(pair) => pair,
        None => {
            let (outcome, events, snapshot) =
                record_trial_with_checkpoints(&cfg, &spec, &faults, interval);
            let _ = atomic_write(&snap_path(dir, index), &snapshot.encode());
            if chaos_crash {
                // Die *after* the checkpoint snapshot is durable but
                // before the result commits: the retry must resume.
                sigkill_self();
            }
            (outcome, events)
        }
    };
    render_result(case, &outcome, &events)
}

fn worker_main(mut args: Vec<String>) -> i32 {
    let mut chaos = false;
    let mut dawdle = false;
    while args.first().map(String::as_str) == Some("--chaos")
        || args.first().map(String::as_str) == Some("--dawdle")
    {
        match args.remove(0).as_str() {
            "--chaos" => chaos = true,
            _ => dawdle = true,
        }
    }
    let [dir, index, arg, attempt] = &args[..] else {
        eprintln!("sweepd worker: expected <dir> <index> <arg> <attempt>");
        return 2;
    };
    let dir = PathBuf::from(dir);
    let index: u32 = index.parse().expect("batch index");
    let attempt: u32 = attempt.parse().expect("attempt");
    let case = match FuzzCase::parse_line(arg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sweepd worker: bad case line: {e}");
            return 2;
        }
    };

    // Heartbeat: touch the per-attempt file every 100 ms while computing.
    let hb = heartbeat_path(&dir, index, attempt);
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let (hb, stop) = (hb.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = std::fs::write(&hb, b"hb");
                std::thread::sleep(WallDuration::from_millis(100));
            }
        })
    };

    let text = compute_batch(&dir, index, &case, chaos && attempt == 1);
    if dawdle {
        std::thread::sleep(DAWDLE);
    }
    let write = atomic_write(&done_path(&dir, index), text.as_bytes());
    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    match write {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("sweepd worker: cannot write result: {e}");
            1
        }
    }
}

fn orchestrator_cfg(dir: PathBuf, workers: usize) -> OrchestratorConfig {
    OrchestratorConfig {
        campaign_dir: dir,
        max_workers: workers,
        batch_timeout: WallDuration::from_secs(120),
        heartbeat_timeout: WallDuration::from_secs(15),
        max_attempts: 3,
        backoff_base: WallDuration::from_millis(50),
        steal_after: WallDuration::from_secs(60),
        poll_interval: WallDuration::from_millis(20),
    }
}

fn worker_command(chaos: bool, dawdle: bool) -> WorkerCommand {
    let mut args = vec!["worker".to_string()];
    if chaos {
        args.push("--chaos".into());
    }
    if dawdle {
        args.push("--dawdle".into());
    }
    WorkerCommand {
        program: std::env::current_exe().expect("current exe"),
        args,
    }
}

fn run_main(args: &[String]) -> i32 {
    let mut dir = None;
    let mut workers = 2usize;
    let mut chaos = false;
    let mut dawdle = false;
    let mut die_after = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = it.next().cloned(),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(2),
            "--chaos" => chaos = true,
            "--dawdle" => dawdle = true,
            "--die-after" => die_after = it.next().and_then(|v| v.parse::<u32>().ok()),
            other => {
                eprintln!("sweepd run: unknown argument {other}");
                return 2;
            }
        }
    }
    let Some(dir) = dir.map(PathBuf::from) else {
        eprintln!("sweepd run: --dir is required");
        return 2;
    };
    let batches = campaign_batches();

    if let Some(k) = die_after {
        // Chaos monitor: SIGKILL ourselves — the orchestrator — once k
        // batch results exist, simulating a mid-campaign daemon crash.
        let dir = dir.clone();
        let total = batches.len() as u32;
        std::thread::spawn(move || loop {
            let done = (0..total).filter(|&i| done_path(&dir, i).exists()).count() as u32;
            if done >= k {
                sigkill_self();
            }
            std::thread::sleep(WallDuration::from_millis(20));
        });
    }

    let cfg = orchestrator_cfg(dir.clone(), workers);
    let report = match run_campaign(&worker_command(chaos, dawdle), &batches, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweepd run: orchestrator failure: {e}");
            return 1;
        }
    };
    println!(
        "sweepd: {} batches, {} launches, resumed {:?}, retried {:?}, stolen {:?}, failed {:?}",
        report.batches.len(),
        report.launches,
        report.resumed(),
        report.retried(),
        report.stolen(),
        report.failed(),
    );
    i32::from(!report.all_completed())
}

fn serial_oracle() -> String {
    campaign_batches()
        .iter()
        .map(|b| {
            let case = FuzzCase::parse_line(&b.arg).expect("campaign case");
            // Compute in a throwaway directory so no snapshot can leak in.
            let scratch = std::env::temp_dir().join(format!(
                "blackdp_sweepd_serial_{}_{}",
                std::process::id(),
                b.index
            ));
            let _ = std::fs::remove_dir_all(&scratch);
            let text = compute_batch(&scratch, b.index, &case, false);
            let _ = std::fs::remove_dir_all(&scratch);
            text
        })
        .collect()
}

fn smoke_main() -> i32 {
    let exe = std::env::current_exe().expect("current exe");
    let root = std::env::temp_dir().join(format!("blackdp_sweepd_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut failures: Vec<String> = Vec::new();

    println!("sweepd smoke: computing serial oracle…");
    let oracle = serial_oracle();

    // --- Gate 1: every worker SIGKILLed mid-batch; retries must resume
    // from their persisted checkpoints and the merge must match the oracle.
    println!("sweepd smoke: worker-chaos campaign (every worker SIGKILLs once)…");
    let chaos_dir = root.join("worker_chaos");
    let batches = campaign_batches();
    let cfg = orchestrator_cfg(chaos_dir.clone(), 3);
    match run_campaign(&worker_command(true, false), &batches, &cfg) {
        Ok(report) => {
            if !report.all_completed() {
                failures.push(format!("worker-chaos campaign failed: {:?}", report.failed()));
            }
            if report.retried().len() != batches.len() {
                failures.push(format!(
                    "every chaos worker should have died once: retried {:?}",
                    report.retried()
                ));
            }
            match merge_results(&chaos_dir, batches.len() as u32) {
                Ok(merged) if merged == oracle.as_bytes() => {
                    println!("sweepd smoke: worker-chaos merge is byte-identical to the oracle");
                }
                Ok(merged) => failures.push(format!(
                    "worker-chaos merge differs from oracle ({} vs {} bytes)",
                    merged.len(),
                    oracle.len()
                )),
                Err(e) => failures.push(format!("worker-chaos merge failed: {e}")),
            }
        }
        Err(e) => failures.push(format!("worker-chaos campaign did not run: {e}")),
    }

    // --- Gate 2: the orchestrator itself is SIGKILLed mid-campaign; a
    // fresh orchestrator must resume from the completed batches on disk
    // and still merge byte-identically.
    println!("sweepd smoke: orchestrator-kill campaign (daemon dies after 2 batches)…");
    let kill_dir = root.join("orch_kill");
    let status = Command::new(&exe)
        .args(["run", "--workers", "2", "--dawdle", "--die-after", "2", "--dir"])
        .arg(&kill_dir)
        .status()
        .expect("spawn sweepd run");
    if status.success() {
        // The monitor should have killed it; a clean exit means the whole
        // campaign outran the chaos, which defeats the resume assertion.
        failures.push("orchestrator survived its own kill switch".into());
    }
    let done_before_resume = (0..batches.len() as u32)
        .filter(|&i| done_path(&kill_dir, i).exists())
        .count();
    if done_before_resume == 0 || done_before_resume >= batches.len() {
        failures.push(format!(
            "orchestrator kill should leave a partial campaign, found {done_before_resume}/{} done",
            batches.len()
        ));
    }
    let cfg = orchestrator_cfg(kill_dir.clone(), 2);
    match run_campaign(&worker_command(false, false), &batches, &cfg) {
        Ok(report) => {
            if !report.all_completed() {
                failures.push(format!("resumed campaign failed: {:?}", report.failed()));
            }
            if report.resumed() as usize != done_before_resume {
                failures.push(format!(
                    "resume should skip the {done_before_resume} finished batches, skipped {}",
                    report.resumed()
                ));
            }
            match merge_results(&kill_dir, batches.len() as u32) {
                Ok(merged) if merged == oracle.as_bytes() => {
                    println!(
                        "sweepd smoke: resumed merge is byte-identical to the oracle \
                         ({done_before_resume} batches survived the kill)"
                    );
                }
                Ok(merged) => failures.push(format!(
                    "resumed merge differs from oracle ({} vs {} bytes)",
                    merged.len(),
                    oracle.len()
                )),
                Err(e) => failures.push(format!("resumed merge failed: {e}")),
            }
        }
        Err(e) => failures.push(format!("resumed campaign did not run: {e}")),
    }

    let _ = std::fs::remove_dir_all(&root);
    if failures.is_empty() {
        println!("sweepd smoke: PASS — crash-resume output is bit-identical to the serial oracle");
        0
    } else {
        for f in &failures {
            eprintln!("sweepd smoke: FAIL — {f}");
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serial") => {
            print!("{}", serial_oracle());
            0
        }
        Some("run") => run_main(&args[1..]),
        Some("worker") => worker_main(args[1..].to_vec()),
        Some("smoke") | None => smoke_main(),
        Some(other) => {
            eprintln!("sweepd: unknown mode {other} (expected serial|run|worker|smoke)");
            2
        }
    };
    std::process::exit(code);
}
