//! Sensitivity ablations — how BlackDP's detection holds up when the
//! paper's idealized assumptions are relaxed:
//!
//! * **radio loss**: the paper assumes a lossless channel; here the
//!   unit-disk link drops each transmission with probability `p`;
//! * **vehicle density**: the paper fixes 100 vehicles; fewer fragment
//!   the multi-hop chain;
//! * **two-way traffic**: a fraction of vehicles drive the other way
//!   (a first step toward the "urban topology" future work).
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin sensitivity [repetitions]
//! ```

use blackdp_bench::pct;
use blackdp_scenario::{
    density_sweep, fading_sweep, loss_sweep, two_way_sweep, ScenarioConfig, SweepPoint,
};

fn print_sweep(title: &str, unit: &str, points: &[SweepPoint]) {
    println!("{title}");
    println!(
        "{:>10} | {:>9} {:>7} {:>7} | {:>7} | {:>12}",
        unit, "accuracy", "FP", "FN", "PDR", "latency"
    );
    println!("{:-<66}", "");
    for p in points {
        println!(
            "{:>10} | {:>9} {:>7} {:>7} | {:>7} | {:>12}",
            format!("{:.2}", p.x),
            pct(p.rates.accuracy),
            pct(p.rates.fp_rate),
            pct(p.rates.fn_rate),
            pct(p.rates.mean_pdr),
            p.mean_latency_s
                .map(|l| format!("{l:.1}s"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!();
}

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cfg = ScenarioConfig::paper_table1();

    print_sweep(
        &format!("Radio loss sweep ({repetitions} trials per point)"),
        "loss",
        &loss_sweep(&cfg, &[0.0, 0.05, 0.10, 0.20], repetitions),
    );
    print_sweep(
        &format!("Vehicle density sweep ({repetitions} trials per point)"),
        "vehicles",
        &density_sweep(&cfg, &[40, 70, 100, 150], repetitions),
    );
    print_sweep(
        &format!("Two-way traffic sweep ({repetitions} trials per point)"),
        "backward",
        &two_way_sweep(&cfg, &[0.0, 0.25, 0.5], repetitions),
    );
    print_sweep(
        &format!("Fading-radio sweep ({repetitions} trials per point; 1.00 = unit disk)"),
        "full frac",
        &fading_sweep(&cfg, &[1.0, 0.8, 0.6, 0.4], repetitions),
    );
    println!("shapes: accuracy should degrade gracefully with loss (probe retries absorb");
    println!("small loss), stay high across densities that keep the chain connected, and");
    println!("be direction-agnostic (detection is per-cluster, not per-direction).");
}
