//! Ablation A3 — defense comparison: packet delivery and detection
//! quality of BlackDP versus the sequence-number baselines of Section V-A
//! (Tan threshold, Jhaveri PEAK, Jaiswal first-RREP) and plain undefended
//! AODV, under a single black hole near the source.
//!
//! Expected shape: no defense collapses PDR (the black hole swallows the
//! traffic); the sequence-number baselines recover most of the PDR when
//! honest alternatives exist; BlackDP both recovers PDR *and* is the only
//! defense that isolates the attacker network-wide (revocation).
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin baseline_comparison [repetitions]
//! ```

use blackdp_bench::pct;
use blackdp_scenario::{defense_comparison, DefenseMode, ScenarioConfig};

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = ScenarioConfig::paper_table1();

    println!("Defense comparison under a single black hole ({repetitions} trials each)");
    println!(
        "{:22} | {:>10} | {:>9} | {:>9} | {:>9}",
        "defense", "PDR(attack)", "PDR(clean)", "TP rate", "FP rate"
    );
    println!("{:-<72}", "");
    for result in defense_comparison(&cfg, repetitions) {
        let name = match result.defense {
            DefenseMode::None => "none (plain AODV)",
            DefenseMode::BaselineThreshold => "threshold (Tan)",
            DefenseMode::BaselinePeak => "PEAK (Jhaveri)",
            DefenseMode::BaselineFirstRrep => "first-RREP (Jaiswal)",
            DefenseMode::BlackDp => "BlackDP (this paper)",
        };
        // For baselines "TP" means the attacker was locally avoided is not
        // measured here; the accuracy column reflects *network-level*
        // confirmation, which only BlackDP performs.
        println!(
            "{:22} | {:>10} | {:>9} | {:>9} | {:>9}",
            name,
            pct(result.under_attack.mean_pdr),
            pct(result.clean_pdr),
            pct(result.under_attack.accuracy),
            pct(result.under_attack.fp_rate),
        );
    }
    println!();
    println!("note: TP rate counts trials where the attacker was confirmed AND isolated");
    println!("network-wide; sequence-number baselines only avoid routes locally, so their");
    println!("TP rate is 0 by design — their value shows in the PDR column.");
}
