//! Regenerates **Table I — Simulation parameters** from the live
//! configuration and checks the derived quantities the paper states
//! (cluster count `p = l / r`, speed band, ranges).
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin table1
//! ```

use blackdp_bench::param_table;
use blackdp_scenario::ScenarioConfig;

fn main() {
    let cfg = ScenarioConfig::paper_table1();
    let plan = cfg.plan();

    let rows = vec![
        (
            "Vehicle speed",
            format!("{:.0}-{:.0}km", cfg.min_speed_kmh, cfg.max_speed_kmh),
        ),
        ("#Vehicles", format!("{}", cfg.vehicles)),
        ("#RSUs (CHs)", format!("{}", plan.cluster_count())),
        ("Transmission range", format!("{:.0}m", cfg.range_m)),
        (
            "Highway length",
            format!("{:.0}km", cfg.highway_length_m / 1000.0),
        ),
        ("Highway width", format!("{:.0}m", cfg.highway_width_m)),
        ("Cluster length", format!("{:.0}m", cfg.cluster_len_m)),
    ];
    print!("{}", param_table("TABLE I: Simulation parameters", &rows));

    // Derived checks the paper asserts.
    assert_eq!(
        plan.cluster_count(),
        (cfg.highway_length_m / cfg.cluster_len_m).ceil() as u32,
        "p = l / r must hold"
    );
    assert_eq!(plan.cluster_count(), 10);
    println!();
    println!(
        "derived: p = l / r = {:.0}m / {:.0}m = {} cluster heads  [OK]",
        cfg.highway_length_m,
        cfg.cluster_len_m,
        plan.cluster_count()
    );
    println!(
        "derived: RSU positions centered per segment at x = {:?} m  [OK]",
        plan.clusters()
            .filter_map(|c| plan.rsu_position(c).map(|p| p.x))
            .collect::<Vec<_>>()
    );
}
