//! Ablation A4 — the Section V-A failure case: *"There might be a
//! situation where the attacker is the connector of two networks in a
//! highway and responds with a RREP. In this case, none of the previous
//! techniques can detect the attack."*
//!
//! We stage exactly that: the attacker's forged RREP is the **only** reply
//! the source ever sees (the destination does not exist in the network),
//! and its forged sequence number is kept modest so static thresholds pass
//! it. The sequence-number baselines accept the route; BlackDP's
//! behavioural probe still catches the attacker.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin sole_responder [repetitions]
//! ```

use blackdp_attacks::EvasionPolicy;
use blackdp_bench::pct;
use blackdp_scenario::{
    run_trial, AttackSetup, DefenseMode, RateSummary, ScenarioConfig, TrialSpec,
};

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("Sole-responder failure case ({repetitions} trials each)");
    println!("destination absent; the attacker's RREP is the only reply; forged SN modest");
    println!(
        "{:22} | {:>16} | {:>14}",
        "defense", "attacker caught", "route accepted"
    );
    println!("{:-<60}", "");

    for defense in [
        DefenseMode::BaselineThreshold,
        DefenseMode::BaselinePeak,
        DefenseMode::BaselineFirstRrep,
        DefenseMode::BlackDp,
    ] {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.defense = defense;
        let outcomes: Vec<_> = (0..repetitions)
            .map(|rep| {
                let spec = TrialSpec {
                    seed: 40_000 + u64::from(rep) * 17,
                    attack: AttackSetup::Single { cluster: 2 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    // The paper's "destination may not exist" case: nobody
                    // else can answer, so no SN comparison is possible.
                    dest_cluster: None,
                    attacker_moves: false,
                    attacker_fake_hello: false,
                };
                run_trial(&cfg, &spec)
            })
            .collect();
        let rates = RateSummary::from_outcomes(&outcomes);
        // "route accepted" = the attacker lured traffic: for baselines the
        // forged route is installed and data disappears into it; proxied by
        // data the attacker dropped.
        let accepted = outcomes
            .iter()
            .filter(|o| o.data_dropped_by_attacker > 0)
            .count() as f64
            / outcomes.len() as f64;
        let name = match defense {
            DefenseMode::BaselineThreshold => "threshold (Tan)",
            DefenseMode::BaselinePeak => "PEAK (Jhaveri)",
            DefenseMode::BaselineFirstRrep => "first-RREP (Jaiswal)",
            DefenseMode::BlackDp => "BlackDP (this paper)",
            DefenseMode::None => "none",
        };
        println!(
            "{:22} | {:>16} | {:>14}",
            name,
            pct(rates.accuracy),
            pct(accepted)
        );
    }
    println!();
    println!("paper claim: SN-based methods assume multiple RREPs per RREQ; with a sole");
    println!("responder they cannot judge, while BlackDP examines behaviour directly via");
    println!("trusted RSUs and still detects (accuracy column).");
}
