//! Coverage-guided scenario fuzzer and CI fuzz gate.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin fuzz -- smoke
//! cargo run --release -p blackdp-bench --bin fuzz -- run 10000 [seed]
//! cargo run --release -p blackdp-bench --bin fuzz -- replay <file.case>
//! cargo run --release -p blackdp-bench --bin fuzz -- golden
//! ```
//!
//! * `smoke` — the deterministic CI gate: replays the checked-in
//!   regression corpus, runs a fixed-seed randomized budget, checks the
//!   metamorphic oracles, requires ≥5 distinct invariants exercised, zero
//!   false positives on attacker-free runs, and bit-identical
//!   record→replay journals for 10 seeds. Exits non-zero on any failure.
//! * `run N` — the exploration mode: N coverage-guided trials; any case
//!   that panics, violates an invariant, or breaks a metamorphic oracle
//!   is written to `results/fuzz_corpus/` for triage.
//! * `replay FILE` — re-executes one corpus case verbosely.
//! * `golden` — regenerates `results/golden/illustrative_example.trace`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use blackdp_scenario::{
    diff_traces, encode_trace, metamorphic_failures, parallel_map, record_trial, run_case,
    CaseReport, FuzzCase, ScenarioConfig, TrialSpec,
};
use blackdp_sim::WorldBackend;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Where triggering cases live, relative to the repo root.
const CORPUS_DIR: &str = "results/fuzz_corpus";
/// Where the golden illustrative-example trace lives.
const GOLDEN_TRACE: &str = "results/golden/illustrative_example.trace";

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, label: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {label}");
        } else {
            println!("FAIL  {label}: {detail}");
            self.failures.push(label.to_owned());
        }
    }
}

/// The canonical illustrative-example trial pinned by the golden trace:
/// Figure 5's single-attacker episode with a moving suspect, at
/// test scale so the snapshot test replays it quickly in debug builds.
pub fn golden_setup() -> (ScenarioConfig, TrialSpec) {
    let cfg = ScenarioConfig::small_test();
    let mut spec = TrialSpec::single(42, 2, cfg.plan().cluster_count());
    spec.attacker_moves = true;
    (cfg, spec)
}

fn load_corpus(dir: &Path) -> Vec<(PathBuf, FuzzCase)> {
    let mut cases = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return cases;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fuzz: unreadable corpus file {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match FuzzCase::parse_line(line) {
                Ok(case) => cases.push((path.clone(), case)),
                Err(e) => {
                    eprintln!("fuzz: bad case in {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
    cases
}

/// Runs a case plus its metamorphic oracles (the expensive part — twin
/// runs — only fires on eligible cases).
fn run_full(case: &FuzzCase) -> (CaseReport, Vec<String>) {
    let report = run_case(case);
    let meta = metamorphic_failures(case, &report);
    (report, meta)
}

fn describe(report: &CaseReport, meta: &[String]) -> String {
    if let Some(p) = &report.panic {
        return format!("panicked: {p}");
    }
    let mut parts: Vec<String> = report.violations.iter().take(3).cloned().collect();
    parts.extend(meta.iter().cloned());
    parts.join("; ")
}

fn smoke() -> i32 {
    let mut gate = Gate {
        failures: Vec::new(),
    };
    let mut exercised_names: BTreeSet<&'static str> = BTreeSet::new();

    // --- 1. Regression corpus replays clean. ---
    let corpus = load_corpus(Path::new(CORPUS_DIR));
    let corpus_results = parallel_map(&corpus, |(_, case)| run_full(case));
    let mut corpus_bad = Vec::new();
    for ((path, _), (report, meta)) in corpus.iter().zip(&corpus_results) {
        for (name, n) in &report.exercised {
            if *n > 0 {
                exercised_names.insert(name);
            }
        }
        if !report.is_clean() || !meta.is_empty() {
            corpus_bad.push(format!("{}: {}", path.display(), describe(report, meta)));
        }
    }
    gate.check(
        &format!("fuzz/corpus: {} checked-in cases replay clean", corpus.len()),
        corpus_bad.is_empty(),
        corpus_bad.join(" | "),
    );

    // --- 2. Fixed-seed randomized budget. ---
    let mut cases: Vec<FuzzCase> = (0..40u64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xF00D_0000 + i);
            FuzzCase::random(&mut rng)
        })
        .collect();
    // Guarantee attacker-free coverage for the FP oracle.
    for i in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xFACE_0000 + i);
        let mut case = FuzzCase::random(&mut rng);
        case.attack_kind = 0;
        cases.push(case);
    }
    let results = parallel_map(&cases, run_full);
    let mut random_bad = Vec::new();
    let mut attacker_free = 0usize;
    for (case, (report, meta)) in cases.iter().zip(&results) {
        for (name, n) in &report.exercised {
            if *n > 0 {
                exercised_names.insert(name);
            }
        }
        if case.attack_kind == 0 {
            attacker_free += 1;
        }
        if !report.is_clean() || !meta.is_empty() {
            random_bad.push(format!(
                "`{}` → {}",
                case.to_line(),
                describe(report, meta)
            ));
        }
    }
    gate.check(
        &format!(
            "fuzz/random: {} fixed-seed cases clean ({attacker_free} attacker-free)",
            cases.len()
        ),
        random_bad.is_empty(),
        random_bad.join(" | "),
    );
    gate.check(
        "fuzz/fp: attacker-free runs present and confirm nothing",
        attacker_free >= 8,
        format!("only {attacker_free} attacker-free cases"),
    );

    // --- 3. Invariant coverage. ---
    gate.check(
        &format!(
            "fuzz/invariants: ≥5 distinct invariants exercised ({})",
            exercised_names
                .iter()
                .copied()
                .collect::<Vec<_>>()
                .join(", ")
        ),
        exercised_names.len() >= 5,
        format!("only {} exercised", exercised_names.len()),
    );

    // --- 4. Record → replay bit-identity for 10 seeds. ---
    let seeds: Vec<u64> = (0..10).collect();
    let replay_results = parallel_map(&seeds, |&seed| {
        let case = FuzzCase::baseline(seed);
        let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
        let (_, first) = record_trial(&cfg, &spec, &faults);
        let (_, second) = record_trial(&cfg, &spec, &faults);
        let bit_identical = encode_trace(&first) == encode_trace(&second);
        (
            seed,
            first.len(),
            diff_traces(&first, &second).map(|d| d.to_string()),
            bit_identical,
        )
    });
    let mut replay_bad = Vec::new();
    for (seed, len, divergence, bit_identical) in &replay_results {
        if *len == 0 {
            replay_bad.push(format!("seed {seed}: empty trace"));
        }
        if let Some(d) = divergence {
            replay_bad.push(format!("seed {seed}: {d}"));
        } else if !bit_identical {
            replay_bad.push(format!("seed {seed}: encoded journals differ"));
        }
    }
    gate.check(
        "fuzz/replay: record→replay bit-identical for 10 seeds",
        replay_bad.is_empty(),
        replay_bad.join(" | "),
    );

    // --- 5. Golden trace still matches, when present. ---
    match std::fs::read(GOLDEN_TRACE) {
        Ok(bytes) => {
            let (cfg, spec) = golden_setup();
            let ok = match blackdp_scenario::decode_trace(&bytes) {
                Ok(expected) => {
                    let faults = blackdp_scenario::FaultSpec::none();
                    match blackdp_scenario::replay_divergence(&cfg, &spec, &faults, &expected) {
                        None => (true, String::new()),
                        Some(d) => (false, d.to_string()),
                    }
                }
                Err(e) => (false, e.to_string()),
            };
            gate.check("fuzz/golden: illustrative-example trace replays", ok.0, ok.1);
        }
        Err(_) => println!("SKIP  fuzz/golden: {GOLDEN_TRACE} not present"),
    }

    // --- 6. Backend equivalence under shards: the golden Figure-5 trace
    // and the serial trace of every corpus case must replay byte-
    // identically through the sharded backend at shard counts 1, 2 and 7
    // — no golden refresh, ever: the sharded engine reproduces the serial
    // bytes or it is wrong. ---
    let shard_counts = [1u32, 2, 7];
    let mut backend_bad = Vec::new();
    if let Ok(bytes) = std::fs::read(GOLDEN_TRACE) {
        if let Ok(expected) = blackdp_scenario::decode_trace(&bytes) {
            let (cfg, spec) = golden_setup();
            let faults = blackdp_scenario::FaultSpec::none();
            for &shards in &shard_counts {
                let mut cfg = cfg.clone();
                cfg.backend = WorldBackend::Sharded { shards };
                if let Some(d) =
                    blackdp_scenario::replay_divergence(&cfg, &spec, &faults, &expected)
                {
                    backend_bad.push(format!("golden trace under {shards} shard(s): {d}"));
                }
            }
        }
    }
    let shard_checks: Vec<(FuzzCase, u32)> = corpus
        .iter()
        .flat_map(|(_, case)| shard_counts.iter().map(|&s| (case.clone(), s)))
        .collect();
    let shard_results = parallel_map(&shard_checks, |(case, shards)| {
        let (spec, faults) = (case.spec(), case.faults());
        let mut serial_cfg = case.config();
        serial_cfg.backend = WorldBackend::Serial;
        let (_, expected) = record_trial(&serial_cfg, &spec, &faults);
        let mut sharded_cfg = case.config();
        sharded_cfg.backend = WorldBackend::Sharded { shards: *shards };
        blackdp_scenario::replay_divergence(&sharded_cfg, &spec, &faults, &expected)
            .map(|d| format!("`{}` under {shards} shard(s): {d}", case.to_line()))
    });
    backend_bad.extend(shard_results.into_iter().flatten());
    gate.check(
        &format!(
            "fuzz/shards: golden + {} corpus case(s) replay byte-identically \
             at shard counts {shard_counts:?}",
            corpus.len()
        ),
        backend_bad.is_empty(),
        backend_bad.join(" | "),
    );

    finish(gate)
}

fn explore(budget: usize, seed: u64) -> i32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut global: BTreeSet<String> = BTreeSet::new();
    let mut interesting: Vec<FuzzCase> = vec![FuzzCase::baseline(seed)];
    let mut executed = 0usize;
    let mut found = 0usize;
    let mut exercised_names: BTreeSet<&'static str> = BTreeSet::new();
    let batch_size = 64usize;

    std::fs::create_dir_all(CORPUS_DIR).ok();
    while executed < budget {
        let n = batch_size.min(budget - executed);
        let batch: Vec<FuzzCase> = (0..n)
            .map(|_| {
                if !interesting.is_empty() && rng.random_range(0..100u32) < 70 {
                    let parent = &interesting[rng.random_range(0..interesting.len())];
                    parent.mutate(&mut rng)
                } else {
                    FuzzCase::random(&mut rng)
                }
            })
            .collect();
        // `BLACKDP_FUZZ_TRACE=1` echoes every case before it runs, so a
        // hung or pathologically slow trial is identifiable from the log.
        let trace = std::env::var_os("BLACKDP_FUZZ_TRACE").is_some();
        let results = parallel_map(&batch, |case| {
            if trace {
                eprintln!("fuzz-trace: {}", case.to_line());
            }
            run_full(case)
        });
        for (case, (report, meta)) in batch.iter().zip(&results) {
            executed += 1;
            for (name, cnt) in &report.exercised {
                if *cnt > 0 {
                    exercised_names.insert(name);
                }
            }
            if !report.is_clean() || !meta.is_empty() {
                found += 1;
                let path = format!("{CORPUS_DIR}/found-{:04}.case", found);
                let body = format!(
                    "# {}\n{}\n",
                    describe(report, meta).replace('\n', " "),
                    case.to_line()
                );
                if let Err(e) = blackdp_scenario::atomic_write(Path::new(&path), body.as_bytes()) {
                    eprintln!("fuzz: cannot write {path}: {e}");
                }
                println!("TRIGGER  {} → {}", case.to_line(), describe(report, meta));
            }
            let new_features: Vec<String> = report
                .features
                .iter()
                .filter(|f| !global.contains(*f))
                .cloned()
                .collect();
            if !new_features.is_empty() {
                global.extend(new_features);
                interesting.push(case.clone());
            }
        }
        println!(
            "fuzz: {executed}/{budget} trials, {} features, {} interesting, {found} triggers",
            global.len(),
            interesting.len()
        );
    }
    println!(
        "fuzz: done — {executed} trials, {} features, invariants exercised: {}",
        global.len(),
        exercised_names
            .iter()
            .copied()
            .collect::<Vec<_>>()
            .join(", ")
    );
    if found == 0 {
        0
    } else {
        println!("fuzz: {found} triggering case(s) written to {CORPUS_DIR}/");
        1
    }
}

fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz: cannot read {path}: {e}");
            return 1;
        }
    };
    let mut status = 0;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let case = match FuzzCase::parse_line(line) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fuzz: {e}");
                return 1;
            }
        };
        let (report, meta) = run_full(&case);
        println!("case: {}", case.to_line());
        match &report.outcome {
            Some(o) => println!(
                "  class {:?}, pdr {:.3}, detections {}",
                o.class,
                o.pdr(),
                o.detections.len()
            ),
            None => println!("  no outcome (panicked)"),
        }
        for (name, n) in &report.exercised {
            println!("  exercised {name}: {n}");
        }
        if report.is_clean() && meta.is_empty() {
            println!("  CLEAN");
        } else {
            status = 1;
            if let Some(p) = &report.panic {
                println!("  PANIC: {p}");
            }
            for v in &report.violations {
                println!("  VIOLATION: {v}");
            }
            for m in &meta {
                println!("  METAMORPHIC: {m}");
            }
        }
    }
    status
}

fn golden() -> i32 {
    let (cfg, spec) = golden_setup();
    let faults = blackdp_scenario::FaultSpec::none();
    let (outcome, events) = record_trial(&cfg, &spec, &faults);
    let bytes = encode_trace(&events);
    if let Err(e) = blackdp_scenario::atomic_write(Path::new(GOLDEN_TRACE), &bytes) {
        eprintln!("fuzz: cannot write {GOLDEN_TRACE}: {e}");
        return 1;
    }
    println!(
        "fuzz: wrote {GOLDEN_TRACE} — {} events, {} bytes, class {:?}",
        events.len(),
        bytes.len(),
        outcome.class
    );
    0
}

fn finish(gate: Gate) -> i32 {
    println!();
    if gate.failures.is_empty() {
        println!("fuzz gate: all checks passed");
        0
    } else {
        println!("fuzz gate: {} check(s) FAILED", gate.failures.len());
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        None | Some("smoke") => smoke(),
        Some("run") => {
            let budget = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(1000usize);
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1u64);
            explore(budget, seed)
        }
        Some("replay") => match args.get(1) {
            Some(path) => replay(path),
            None => {
                eprintln!("usage: fuzz replay <file.case>");
                1
            }
        },
        Some("golden") => golden(),
        Some(other) => {
            eprintln!("usage: fuzz [smoke|run N [seed]|replay FILE|golden] (got `{other}`)");
            1
        }
    };
    std::process::exit(code);
}
