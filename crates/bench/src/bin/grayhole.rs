//! Gray hole ablation — detection rate and packet delivery versus the
//! attacker's per-packet drop probability.
//!
//! Expected shape: BlackDP's detection accuracy stays **flat** across drop
//! probabilities — the examination probes route-capture behaviour (forged
//! RREPs), not the data plane — while the victim's PDR degrades with the
//! drop rate until isolation kicks in. This extends the paper toward its
//! related work on selective/gray holes (Jhaveri et al., Su).
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin grayhole [repetitions]
//! ```

use blackdp_bench::{bar, pct};
use blackdp_scenario::{grayhole_sweep, ScenarioConfig};

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let cfg = ScenarioConfig::paper_table1();
    let probs = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("Gray hole ablation ({repetitions} trials per point)");
    println!(
        "{:>10} | {:>9} {:>7} | {:>7} | detection",
        "drop prob", "accuracy", "FP", "PDR"
    );
    println!("{:-<64}", "");
    let points = grayhole_sweep(&cfg, &probs, repetitions);
    for p in &points {
        println!(
            "{:>10} | {:>9} {:>7} | {:>7} | {}",
            format!("{:.0}%", p.drop_probability * 100.0),
            pct(p.rates.accuracy),
            pct(p.rates.fp_rate),
            pct(p.rates.mean_pdr),
            bar(p.rates.accuracy, 24),
        );
    }
    println!();
    println!("shape: the detection column should be flat (probing is data-plane-independent);");
    println!("a drop probability of 100% is exactly the black hole of the main experiments.");
}
