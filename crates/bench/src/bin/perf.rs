//! Performance gate: times the optimized hot paths — neighbor queries
//! (spatial grid vs. brute-force scan), the crypto substrate (SHA-256,
//! fixed-base exponentiation, Schnorr sign/verify, cached certificate
//! verification) and end-to-end trial throughput (serial vs. parallel
//! sweep) — then writes `results/BENCH_pr2.json` and fails if any gated
//! metric regressed more than 25% against the recorded baseline.
//!
//! The PR-7 raw-speed track adds batch Schnorr verification (per-sig
//! cost at storm batch sizes vs. the inline `verify_ns`), multi-lane
//! SHA-256 throughput, and a steady-state allocation probe for the
//! event loop (the binary runs under a counting allocator; after the
//! probe workload warms up, processing further events must allocate
//! nothing and the event slab must not grow). Those metrics land in
//! `results/BENCH_pr7.json` with the same baseline-comparison format.
//!
//! Usage: `perf [smoke|full]` (default `full`). Smoke shrinks repeat
//! counts and the end-to-end scenario so CI finishes in seconds.
//!
//! Gating policy: per-operation metrics (`*_ns`, `*_mb_s`) are gated
//! against the recorded baseline, normalized by a calibration probe so
//! CPU-frequency drift is not read as a regression. Speedup ratios are
//! quotients of two measurements — their noise compounds — so they are
//! held to absolute floors (`SPEEDUP_FLOORS`) instead: a broken
//! optimization collapses toward 1x, far below any floor. End-to-end
//! wall-clock metrics are recorded for inspection but *not* gated —
//! they track container load, not code. The parallel-sweep speedup is
//! additionally required to reach 2x, but only when more than one
//! worker thread is actually available (a single-core container cannot
//! speed anything up).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use blackdp_bench::probe::probe_world;
use blackdp_crypto::field::{pow_g, pow_mod, G, P, Q};
use blackdp_crypto::sha256::lanes;
use blackdp_crypto::sig::VerifyBatch;
use blackdp_crypto::{cert_cache_clear, sha256, Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_scenario::{
    fig4_cell, fig4_cell_serial, worker_count, AttackKind, ScenarioConfig,
};
use blackdp_sim::{
    Channel, Context, Duration, Node, NodeId, Position, Time, World, WorldConfig,
};
use std::hint::black_box;

/// Counts every heap allocation the process makes, so the event-loop
/// probe can assert the sim's steady state allocates nothing per event.
/// Deallocations are uncounted on purpose: a free/alloc churn pair per
/// event is exactly the regression the probe exists to catch.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const OUT_PATH: &str = "results/BENCH_pr2.json";
const OUT_PATH_PR7: &str = "results/BENCH_pr7.json";
const SCHEMA: &str = "blackdp-perf/v1";
const NEIGHBOR_COUNTS: [usize; 4] = [60, 250, 1000, 4000];
/// Regression tolerance: latest may be at most 25% worse than baseline.
const TOLERANCE: f64 = 1.25;
/// Acceptance floor for the parallel sweep (when threads are available).
const MIN_PARALLEL_SPEEDUP: f64 = 2.0;
/// The seed tree's end-to-end throughput (`e2e_trials_per_s` recorded in
/// BENCH_pr2.json before the raw-speed pass), the denominator for
/// `e2e_speedup_vs_seed`. ROADMAP item 3 targets 5x this figure.
const SEED_TRIALS_PER_S: f64 = 157.5;
/// Signatures per batch in the RREP-storm measurement. Well past the
/// "batch ≥ 16" point the acceptance gate cares about, and big enough
/// that per-batch fixed costs stop dominating the per-signature figure.
const STORM_BATCH: usize = 64;
/// Absolute floors for speedup ratios. A ratio is the quotient of two
/// measurements, so its run-to-run noise compounds — gating it against a
/// recorded baseline flakes. A floor is what actually matters: if an
/// optimization stops working its ratio collapses toward 1x, far below
/// any of these.
const SPEEDUP_FLOORS: &[(&str, f64)] = &[
    ("neighbor_speedup_250", 2.0),
    ("neighbor_speedup_1000", 5.0),
    ("neighbor_speedup_4000", 5.0),
    ("pow_g_speedup", 2.0),
    ("cert_cache_speedup", 2.0),
    ("batch_verify_speedup", 3.0),
    ("sha256_lanes_speedup", 2.0),
    // Honest floor, not the 5x aspiration: the in-loop improvement that
    // survives bit-identical-trace discipline lands near 2x (see
    // EXPERIMENTS E13), and both this ratio's terms are wall-clock, so
    // the floor keeps margin for container load. A collapsed
    // optimization still lands at ~1x, well below it.
    ("e2e_speedup_vs_seed", 1.5),
];

/// This run's reference probe reading (`calib_lcg_ns`), as `f64` bits.
/// Set once in `main` after warmup; single-threaded, so relaxed ordering.
static REF_PROBE_NS: AtomicU64 = AtomicU64::new(0);

fn ref_probe_ns() -> f64 {
    f64::from_bits(REF_PROBE_NS.load(Ordering::Relaxed))
}

/// One fixed serial-dependency multiply/add chain — a proxy for the
/// machine's current effective clock.
#[inline(never)]
fn lcg_chain() {
    let mut x = black_box(0x243F_6A88_85A3_08D3u64);
    for _ in 0..64 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    black_box(x);
}

/// Raw timing of `chains` probe chains, in ns per chain.
fn probe_ns(chains: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..chains {
        lcg_chain();
    }
    start.elapsed().as_nanos() as f64 / f64::from(chains)
}

/// Best-of-`reps` raw probe reading. Recorded as `calib_lcg_ns`, used as
/// this run's reference machine speed, and compared across runs by the
/// gate so persistent CPU-frequency differences between a baseline
/// recording and a CI run do not read as code regressions.
fn calibrate(reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(probe_ns(20_000));
    }
    best
}

/// Best-of-`reps` timing of `inner` invocations of `f`, in ns per call.
///
/// The container is CPU-quota throttled: a measurement window either
/// runs clean or is hit by a multi-millisecond stall that inflates it
/// wildly. Short windows and best-of-many discard the stalls. Each rep
/// is additionally bracketed by calibration probes; when even the
/// cleaner probe ran >10% over the run's reference the whole
/// neighbourhood was being throttled, and the reading is scaled back
/// toward reference speed (at most 3x — the dead-band and the "never
/// scale up" clamp keep probe jitter from deflating clean readings).
/// Code regressions cannot hide behind this: slow *code* leaves the
/// adjacent probes at full speed.
fn time_ns(reps: u32, inner: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let pre = probe_ns(2_000);
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(inner);
        let post = probe_ns(2_000);
        let reference = ref_probe_ns();
        let forgive = if reference > 0.0 {
            (1.1 * reference / pre.min(post)).clamp(1.0 / 3.0, 1.0)
        } else {
            1.0
        };
        best = best.min(ns * forgive);
    }
    best
}

/// Robust speedup measurement: times `base` and `fast` in immediately
/// adjacent windows within each rep and takes the median of the per-rep
/// ratios. Pairing cancels slow drift (CPU frequency, container
/// contention) that plagues ratios of independently-timed best-of
/// readings, and the median discards reps where a quota stall hit one
/// window of the pair.
fn ratio_median(
    reps: u32,
    inner_base: u32,
    mut base: impl FnMut(),
    inner_fast: u32,
    mut fast: impl FnMut(),
) -> f64 {
    let window = |inner: u32, f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        start.elapsed().as_nanos() as f64 / f64::from(inner)
    };
    let mut ratios: Vec<f64> = (0..reps.max(9))
        .map(|_| window(inner_base, &mut base) / window(inner_fast, &mut fast))
        .collect();
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

struct Metrics(Vec<(String, f64)>);

impl Metrics {
    fn put(&mut self, name: &str, value: f64) {
        self.0.push((name.to_owned(), value));
    }

    fn get(&self, name: &str) -> Option<f64> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

fn measure_neighbors(m: &mut Metrics, reps: u32, inner: u32) {
    for n in NEIGHBOR_COUNTS {
        let (mut world, ids) = probe_world(n, 300.0, 42);
        // Average over a spread of query centers so one lucky cell cannot
        // skew the figure.
        let centers: Vec<_> = (0..16).map(|i| ids[i * n / 16]).collect();
        let grid_ns = time_ns(reps, inner, || {
            for &c in &centers {
                black_box(world.neighbors_of(black_box(c)));
            }
        }) / centers.len() as f64;
        let (world, _) = probe_world(n, 300.0, 42);
        let scan_ns = time_ns(reps, inner, || {
            for &c in &centers {
                black_box(world.neighbors_of_scan(black_box(c)));
            }
        }) / centers.len() as f64;
        m.put(&format!("neighbor_grid_ns_{n}"), grid_ns);
        m.put(&format!("neighbor_scan_ns_{n}"), scan_ns);
        m.put(&format!("neighbor_speedup_{n}"), scan_ns / grid_ns);
    }
}

fn measure_crypto(m: &mut Metrics, reps: u32, inner: u32) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Hashing 4 KiB is slow per call; many short timing windows dodge
    // scheduler interference better than a few long ones.
    let data = vec![0x5Au8; 4096];
    let ns = time_ns(reps * 5, (inner / 20).max(25), || {
        black_box(sha256(black_box(&data)));
    });
    m.put("sha256_mb_s", data.len() as f64 * 1000.0 / ns);

    let scalars: Vec<u64> = (1..64u64)
        .map(|i| (i.wrapping_mul(0x2545_F491) % Q).max(1))
        .collect();
    let mut i = 0;
    let pow_mod_ns = time_ns(reps, inner, || {
        i = (i + 1) % scalars.len();
        black_box(pow_mod(G, black_box(scalars[i]), P));
    });
    let mut i = 0;
    let pow_g_ns = time_ns(reps, inner, || {
        i = (i + 1) % scalars.len();
        black_box(pow_g(black_box(scalars[i])));
    });
    m.put("pow_mod_ns", pow_mod_ns);
    m.put("pow_g_ns", pow_g_ns);
    m.put("pow_g_speedup", pow_mod_ns / pow_g_ns);

    let mut rng = StdRng::seed_from_u64(11);
    let keys = Keypair::generate(&mut rng);
    let msg = b"RREP dest=7 seq=75 hops=3 lifetime=6s";
    let sig = keys.sign(msg, &mut rng);
    m.put(
        "sign_ns",
        time_ns(reps, inner, || {
            black_box(keys.sign(black_box(msg), &mut rng));
        }),
    );
    m.put(
        "verify_ns",
        time_ns(reps, inner, || {
            black_box(keys.public().verify(black_box(msg), black_box(&sig)));
        }),
    );

    let mut rng = StdRng::seed_from_u64(12);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let subject = Keypair::generate(&mut rng);
    let cert = ta.enroll(
        LongTermId(77),
        subject.public(),
        Time::from_secs(0),
        Duration::from_secs(3600),
        &mut rng,
    );
    let now = Time::from_secs(10);
    let ta_key = ta.public_key();
    let cold_ns = time_ns(reps, inner.min(2_000), || {
        cert_cache_clear();
        black_box(cert.verify(ta_key, now)).ok();
    });
    cert_cache_clear();
    let _ = cert.verify(ta_key, now);
    let warm_ns = time_ns(reps, inner, || {
        black_box(cert.verify(ta_key, now)).ok();
    });
    cert_cache_clear();
    m.put("cert_verify_cold_ns", cold_ns);
    m.put("cert_verify_warm_ns", warm_ns);
    m.put("cert_cache_speedup", cold_ns / warm_ns);
}

fn measure_e2e(m: &mut Metrics, smoke: bool) -> usize {
    let cfg = if smoke {
        ScenarioConfig::small_test()
    } else {
        ScenarioConfig::paper_table1()
    };
    let reps = if smoke { 4 } else { 10 };
    let threads = worker_count();

    let start = Instant::now();
    let serial = fig4_cell_serial(&cfg, AttackKind::Single, 2, reps);
    let serial_ms = start.elapsed().as_secs_f64() * 1000.0;

    let start = Instant::now();
    let parallel = fig4_cell(&cfg, AttackKind::Single, 2, reps);
    let parallel_ms = start.elapsed().as_secs_f64() * 1000.0;

    // The parallel sweep must be a pure reordering of work: identical
    // trial outcomes in identical order.
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "parallel sweep diverged from the serial reference"
    );

    m.put("e2e_threads", threads as f64);
    m.put("e2e_serial_ms", serial_ms);
    m.put("e2e_parallel_ms", parallel_ms);
    m.put("e2e_parallel_speedup", serial_ms / parallel_ms);
    m.put(
        "e2e_trials_per_s",
        f64::from(reps) / (parallel_ms / 1000.0),
    );
    threads
}

/// Batch Schnorr verification at RREP-storm shape: one destination
/// answering many route discoveries, so every signature is under the
/// same key and the shared-signer fixed-base fast path is live. The
/// per-signature figure divides the whole round — pushes (arena staging,
/// lane hashing) plus `verify_all` — by the batch size, so it is
/// directly comparable to the inline `verify_ns`.
fn measure_batch_verify(m: &mut Metrics, reps: u32, inner: u32) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(13);
    let keys = Keypair::generate(&mut rng);
    let msgs: Vec<Vec<u8>> = (0..STORM_BATCH)
        .map(|i| format!("RREP dest=7 seq={} hops=3 lifetime=6s", 75 + i).into_bytes())
        .collect();
    let sigs: Vec<_> = msgs.iter().map(|msg| keys.sign(msg, &mut rng)).collect();
    let mut batch = VerifyBatch::new();
    let rounds = (inner / STORM_BATCH as u32).max(50);
    let storm_ns = time_ns(reps, rounds, || {
        for (msg, &sig) in msgs.iter().zip(&sigs) {
            batch.push(msg, sig, keys.public());
        }
        assert!(batch.verify_all().all_valid());
    }) / STORM_BATCH as f64;
    m.put("batch_verify_ns_per_sig", storm_ns);

    // Distinct signers (a Hello burst from many neighbors): the general
    // interleaved-ladder path, no shared-base shortcut.
    let signers: Vec<Keypair> = (0..STORM_BATCH).map(|_| Keypair::generate(&mut rng)).collect();
    let multi_sigs: Vec<_> = msgs
        .iter()
        .zip(&signers)
        .map(|(msg, k)| k.sign(msg, &mut rng))
        .collect();
    let multi_ns = time_ns(reps, rounds, || {
        for ((msg, &sig), k) in msgs.iter().zip(&multi_sigs).zip(&signers) {
            batch.push(msg, sig, k.public());
        }
        assert!(batch.verify_all().all_valid());
    }) / STORM_BATCH as f64;
    m.put("batch_verify_multi_ns_per_sig", multi_ns);

    // Speedup ratios come from paired windows (single verifies against a
    // whole batch round, back to back within each rep, median across
    // reps) rather than dividing the independently-timed figures above:
    // the container's load varies enough across a run that unpaired
    // ratios flake the floor gate. One fast window covers a full
    // `STORM_BATCH`-signature round, hence the scale factor.
    let mut batch = VerifyBatch::new();
    let mut i = 0;
    let speedup = STORM_BATCH as f64
        * ratio_median(
            reps,
            (inner / 8).max(64),
            || {
                i = (i + 1) % msgs.len();
                black_box(keys.public().verify(black_box(&msgs[i]), black_box(&sigs[i])));
            },
            (inner / 512).max(4),
            || {
                for (msg, &sig) in msgs.iter().zip(&sigs) {
                    batch.push(msg, sig, keys.public());
                }
                assert!(batch.verify_all().all_valid());
            },
        );
    let mut batch = VerifyBatch::new();
    let mut i = 0;
    let multi_speedup = STORM_BATCH as f64
        * ratio_median(
            reps,
            (inner / 8).max(64),
            || {
                i = (i + 1) % msgs.len();
                black_box(keys.public().verify(black_box(&msgs[i]), black_box(&sigs[i])));
            },
            (inner / 512).max(4),
            || {
                for ((msg, &sig), k) in msgs.iter().zip(&multi_sigs).zip(&signers) {
                    batch.push(msg, sig, k.public());
                }
                assert!(batch.verify_all().all_valid());
            },
        );
    m.put("batch_verify_speedup", speedup);
    m.put("batch_verify_multi_speedup", multi_speedup);
}

/// Multi-lane SHA-256 throughput over a full complement of independent
/// messages, against the streaming scalar core's `sha256_mb_s`.
fn measure_lanes(m: &mut Metrics, reps: u32, inner: u32) {
    let bufs: Vec<Vec<u8>> = (0..STORM_BATCH)
        .map(|i| vec![0x5Au8 ^ i as u8; 4096])
        .collect();
    let refs: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = bufs.iter().map(Vec::len).sum();
    let mut out = Vec::new();
    let ns = time_ns(reps * 5, (inner / 600).max(8), || {
        lanes::sha256_many(black_box(&refs), &mut out);
        black_box(&out);
    });
    let lanes_mb_s = total_bytes as f64 * 1000.0 / ns;
    m.put("sha256_lanes_mb_s", lanes_mb_s);
    // Paired-window median for the ratio (see `ratio_median`): one fast
    // window hashes all `STORM_BATCH` buffers, one base window hashes a
    // single equal-sized buffer, hence the scale factor.
    let mut out2 = Vec::new();
    let speedup = STORM_BATCH as f64
        * ratio_median(
            reps,
            (inner / 40).max(16),
            || {
                black_box(sha256(black_box(&bufs[0])));
            },
            (inner / 1280).max(2),
            || {
                lanes::sha256_many(black_box(&refs), &mut out2);
                black_box(&out2);
            },
        );
    m.put("sha256_lanes_speedup", speedup);
}

/// Two nodes lobbing a `u64` back and forth forever: every event is a
/// radio delivery, with nothing in the node logic that could allocate.
/// Whatever the steady state allocates is therefore the engine's own
/// per-event cost — which the slab queue and recycled scratch buffers
/// are supposed to have driven to zero.
struct PingNode {
    at: Position,
}

impl Node<u64, ()> for PingNode {
    fn position(&self, _now: Time) -> Position {
        self.at
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, u64, ()>, from: NodeId, ball: u64, _ch: Channel) {
        ctx.send(from, ball.wrapping_add(1));
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, u64, ()>, _token: ()) {}
}

/// Steady-state allocation probe for the event loop. Warms the world
/// past its allocation plateau (buffer growth, stats-key interning, heap
/// and slab sizing all happen here), then counts allocator calls and
/// event-slab growth across a long steady-state window. Both must be
/// exactly zero — gated as hard failures, not baseline comparisons.
fn measure_event_loop_allocs(m: &mut Metrics) {
    const WARMUP_EVENTS: u64 = 20_000;
    const MEASURED_EVENTS: u64 = 50_000;

    let mut world: World<u64, ()> = World::new(WorldConfig::default());
    let a = world.spawn(Box::new(PingNode {
        at: Position::new(0.0, 0.0),
    }));
    let b = world.spawn(Box::new(PingNode {
        at: Position::new(500.0, 0.0),
    }));
    world.inject(Time::ZERO, a, b, 0, Channel::Radio);
    let warmed = world.run_to_completion(WARMUP_EVENTS);
    assert_eq!(warmed, WARMUP_EVENTS, "ping-pong must self-sustain");

    let slots_before = world.event_slab_slots();
    let allocs_before = ALLOC_COUNT.load(Ordering::Relaxed);
    let events = world.run_to_completion(MEASURED_EVENTS);
    let allocs_after = ALLOC_COUNT.load(Ordering::Relaxed);
    let slots_after = world.event_slab_slots();
    assert_eq!(events, MEASURED_EVENTS, "ping-pong must self-sustain");

    m.put(
        "event_loop_allocs_per_event",
        (allocs_after - allocs_before) as f64 / events as f64,
    );
    m.put(
        "event_loop_slab_growth",
        (slots_after - slots_before) as f64,
    );
}

/// Metrics gated against the recorded baseline. End-to-end wall-clock is
/// excluded (it measures machine load) and speedup ratios are gated by
/// [`SPEEDUP_FLOORS`] instead; everything listed here is a per-operation
/// figure that, after machine-speed normalization, is stable run-to-run.
fn gated(name: &str) -> bool {
    // `neighbor_grid_ns_60` is excluded: worlds at or below
    // `SMALL_WORLD_SCAN_MAX` (64) slots deliberately answer neighbor
    // queries by brute-force scan — in the sim every jittered broadcast
    // lands on a fresh timestamp, so the grid would rebuild per query —
    // and the bench's repeated same-timestamp queries make that engine
    // choice look like a grid regression when it is the opposite trade.
    (name.starts_with("neighbor_grid_ns_") && name != "neighbor_grid_ns_60")
        || matches!(
            name,
            "sha256_mb_s"
                | "pow_g_ns"
                | "sign_ns"
                | "verify_ns"
                | "cert_verify_warm_ns"
                | "batch_verify_ns_per_sig"
                | "batch_verify_multi_ns_per_sig"
                | "sha256_lanes_mb_s"
        )
}

/// Metrics belonging to the PR-7 raw-speed track, written to
/// `BENCH_pr7.json` (everything else stays in `BENCH_pr2.json`).
fn pr7_metric(name: &str) -> bool {
    name == "calib_lcg_ns"
        || name.starts_with("batch_verify_")
        || name.starts_with("sha256_lanes_")
        || name.starts_with("event_loop_")
        || matches!(name, "e2e_trials_per_s" | "e2e_speedup_vs_seed")
}

/// `true` when smaller values of this metric are better.
fn lower_is_better(name: &str) -> bool {
    // `_ns_` / `_ms_` catches per-size timings like `neighbor_grid_ns_60`.
    ["_ns", "_ms"]
        .iter()
        .any(|u| name.ends_with(u) || name.contains(&format!("{u}_")))
}

fn render_json(mode: &str, threads: usize, baseline: &Metrics, latest: &Metrics) -> String {
    let obj = |m: &Metrics| {
        let mut s = String::new();
        for (i, (name, value)) in m.0.iter().enumerate() {
            let sep = if i + 1 == m.0.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {value:.3}{sep}");
        }
        s
    };
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"threads\": {threads},\n  \"baseline\": {{\n{}  }},\n  \"latest\": {{\n{}  }}\n}}\n",
        obj(baseline),
        obj(latest)
    )
}

/// Minimal parser for the files this binary writes: returns the stored
/// `mode` and the `baseline` object's entries. Returns `None` when the
/// file is absent or not recognizably ours.
fn load_baseline(path: &str) -> Option<(String, Metrics)> {
    let text = std::fs::read_to_string(path).ok()?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mode = text
        .split("\"mode\": \"")
        .nth(1)?
        .split('"')
        .next()?
        .to_owned();
    let body = text.split("\"baseline\": {").nth(1)?.split('}').next()?;
    let mut metrics = Metrics(Vec::new());
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if let Ok(value) = value.trim().parse::<f64>() {
            metrics.put(name, value);
        }
    }
    Some((mode, metrics))
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let smoke = match mode.as_str() {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("usage: perf [smoke|full] (got {other:?})");
            std::process::exit(2);
        }
    };
    // Full mode buys precision with more repeats, NOT longer windows: on
    // a quota-throttled container a long window is just a bigger target
    // for a stall, while best-of-many short windows converges on clean
    // hardware speed.
    let (reps, inner) = if smoke { (5, 2_000) } else { (17, 2_500) };

    // Let the CPU frequency governor ramp up before taking any timings;
    // the first measurements otherwise land on a half-awake clock.
    let warmup = Instant::now();
    let mut spin = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        spin = spin.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    black_box(spin);

    let mut latest = Metrics(Vec::new());
    let calib = calibrate(reps.max(7));
    REF_PROBE_NS.store(calib.to_bits(), Ordering::Relaxed);
    latest.put("calib_lcg_ns", calib);
    println!("perf [{mode}]: timing neighbor queries...");
    measure_neighbors(&mut latest, reps, inner.min(500));
    println!("perf [{mode}]: timing crypto hot paths...");
    measure_crypto(&mut latest, reps, inner);
    println!("perf [{mode}]: timing batch verification...");
    measure_batch_verify(&mut latest, reps, inner);
    println!("perf [{mode}]: timing multi-lane SHA-256...");
    measure_lanes(&mut latest, reps, inner);
    println!("perf [{mode}]: probing event-loop allocations...");
    measure_event_loop_allocs(&mut latest);
    println!("perf [{mode}]: timing end-to-end sweep...");
    let threads = measure_e2e(&mut latest, smoke);
    let trials_per_s = latest.get("e2e_trials_per_s").unwrap_or(0.0);
    latest.put("e2e_speedup_vs_seed", trials_per_s / SEED_TRIALS_PER_S);

    println!("\n{:<30} {:>12}", "metric", "value");
    for (name, value) in &latest.0 {
        println!("{name:<30} {value:>12.1}");
    }
    // The ROADMAP throughput claim drifts; keep the measured figure in
    // everyone's face so it gets corrected instead of quoted.
    println!(
        "\ne2e throughput: {trials_per_s:.1} trials/s vs the recorded {SEED_TRIALS_PER_S:.1}/s \
         seed baseline ({:+.1} trials/s, {:.2}x; ROADMAP item 3 targets 5x = {:.1}/s)",
        trials_per_s - SEED_TRIALS_PER_S,
        trials_per_s / SEED_TRIALS_PER_S,
        5.0 * SEED_TRIALS_PER_S,
    );

    // Every gated metric is per-operation and mode-independent (smoke and
    // full differ only in repeat counts), so a baseline recorded under
    // either mode is comparable; only the ungated e2e wall-clock figures
    // depend on the mode's scenario size. PR-7 track metrics baseline
    // from their own file; absent entries simply go ungated this run.
    let mut baseline = match load_baseline(OUT_PATH) {
        Some((_stored_mode, stored)) => stored,
        None => Metrics(
            latest
                .0
                .iter()
                .filter(|(n, _)| !pr7_metric(n) || n == "calib_lcg_ns")
                .cloned()
                .collect(),
        ),
    };
    match load_baseline(OUT_PATH_PR7) {
        Some((_stored_mode, stored)) => {
            for (name, value) in stored.0 {
                if baseline.get(&name).is_none() {
                    baseline.put(&name, value);
                }
            }
        }
        None => {
            for entry in latest.0.iter().filter(|(n, _)| pr7_metric(n)) {
                if baseline.get(&entry.0).is_none() {
                    baseline.0.push(entry.clone());
                }
            }
        }
    }

    // Machine-speed correction for absolute metrics: > 1 means this run's
    // CPU is slower than the baseline's, and the tolerance widens so the
    // drift does not read as a code regression. A faster machine needs no
    // correction (raw comparison is already lenient in that direction),
    // and the clamp keeps a broken calibration from masking real
    // regressions.
    let speed = match (latest.get("calib_lcg_ns"), baseline.get("calib_lcg_ns")) {
        (Some(l), Some(b)) if b > 0.0 => (l / b).clamp(1.0, 2.0),
        _ => 1.0,
    };

    let mut failures = Vec::new();
    for (name, &(_, value)) in latest.0.iter().map(|e| (&e.0, e)) {
        if !gated(name) {
            continue;
        }
        let Some(base) = baseline.get(name) else {
            continue;
        };
        let regressed = if lower_is_better(name) {
            value > base * TOLERANCE * speed
        } else {
            value < base / TOLERANCE / speed
        };
        if regressed {
            failures.push(format!(
                "{name}: {value:.1} regressed >25% vs baseline {base:.1} (machine-speed factor {speed:.2})"
            ));
        }
    }

    for &(name, floor) in SPEEDUP_FLOORS {
        let value = latest.get(name).unwrap_or(0.0);
        if value < floor {
            failures.push(format!(
                "{name}: {value:.1}x below the required {floor:.0}x"
            ));
        }
    }
    let par_speedup = latest.get("e2e_parallel_speedup").unwrap_or(0.0);
    if threads > 1 && par_speedup < MIN_PARALLEL_SPEEDUP {
        failures.push(format!(
            "e2e_parallel_speedup: {par_speedup:.2}x below the required {MIN_PARALLEL_SPEEDUP:.0}x with {threads} threads"
        ));
    }
    // The allocation probe gates on exact zero, not a baseline: one
    // alloc per event is a churn regression no tolerance should absorb.
    let allocs_per_event = latest.get("event_loop_allocs_per_event").unwrap_or(f64::NAN);
    if allocs_per_event != 0.0 {
        failures.push(format!(
            "event_loop_allocs_per_event: {allocs_per_event} in steady state (must be exactly 0)"
        ));
    }
    let slab_growth = latest.get("event_loop_slab_growth").unwrap_or(f64::NAN);
    if slab_growth != 0.0 {
        failures.push(format!(
            "event_loop_slab_growth: {slab_growth} slots in steady state (must be exactly 0)"
        ));
    }

    let subset = |keep: &dyn Fn(&str) -> bool, m: &Metrics| {
        Metrics(m.0.iter().filter(|(n, _)| keep(n)).cloned().collect())
    };
    let pr2 = |name: &str| !pr7_metric(name) || matches!(name, "calib_lcg_ns" | "e2e_trials_per_s");
    blackdp_scenario::atomic_write(
        Path::new(OUT_PATH),
        render_json(&mode, threads, &subset(&pr2, &baseline), &subset(&pr2, &latest)).as_bytes(),
    )
    .expect("write BENCH_pr2.json");
    blackdp_scenario::atomic_write(
        Path::new(OUT_PATH_PR7),
        render_json(
            &mode,
            threads,
            &subset(&pr7_metric, &baseline),
            &subset(&pr7_metric, &latest),
        )
        .as_bytes(),
    )
    .expect("write BENCH_pr7.json");
    println!("\nwrote {OUT_PATH} and {OUT_PATH_PR7}");

    if failures.is_empty() {
        println!("perf gate: PASS ({} metrics checked)", latest.0.len());
    } else {
        for f in &failures {
            eprintln!("perf gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}
