//! PR-2 performance gate: times the optimized hot paths — neighbor
//! queries (spatial grid vs. brute-force scan), the crypto substrate
//! (SHA-256, fixed-base exponentiation, Schnorr sign/verify, cached
//! certificate verification) and end-to-end trial throughput (serial vs.
//! parallel sweep) — then writes `results/BENCH_pr2.json` and fails if
//! any gated metric regressed more than 25% against the recorded
//! baseline.
//!
//! Usage: `perf [smoke|full]` (default `full`). Smoke shrinks repeat
//! counts and the end-to-end scenario so CI finishes in seconds.
//!
//! Gating policy: per-operation metrics (`*_ns`, `*_mb_s`) are gated
//! against the recorded baseline, normalized by a calibration probe so
//! CPU-frequency drift is not read as a regression. Speedup ratios are
//! quotients of two measurements — their noise compounds — so they are
//! held to absolute floors (`SPEEDUP_FLOORS`) instead: a broken
//! optimization collapses toward 1x, far below any floor. End-to-end
//! wall-clock metrics are recorded for inspection but *not* gated —
//! they track container load, not code. The parallel-sweep speedup is
//! additionally required to reach 2x, but only when more than one
//! worker thread is actually available (a single-core container cannot
//! speed anything up).

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use blackdp_bench::probe::probe_world;
use blackdp_crypto::field::{pow_g, pow_mod, G, P, Q};
use blackdp_crypto::{cert_cache_clear, sha256, Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_scenario::{
    fig4_cell, fig4_cell_serial, worker_count, AttackKind, ScenarioConfig,
};
use blackdp_sim::{Duration, Time};
use std::hint::black_box;

const OUT_PATH: &str = "results/BENCH_pr2.json";
const SCHEMA: &str = "blackdp-perf/v1";
const NEIGHBOR_COUNTS: [usize; 4] = [60, 250, 1000, 4000];
/// Regression tolerance: latest may be at most 25% worse than baseline.
const TOLERANCE: f64 = 1.25;
/// Acceptance floor for the parallel sweep (when threads are available).
const MIN_PARALLEL_SPEEDUP: f64 = 2.0;
/// Absolute floors for speedup ratios. A ratio is the quotient of two
/// measurements, so its run-to-run noise compounds — gating it against a
/// recorded baseline flakes. A floor is what actually matters: if an
/// optimization stops working its ratio collapses toward 1x, far below
/// any of these.
const SPEEDUP_FLOORS: &[(&str, f64)] = &[
    ("neighbor_speedup_250", 2.0),
    ("neighbor_speedup_1000", 5.0),
    ("neighbor_speedup_4000", 5.0),
    ("pow_g_speedup", 2.0),
    ("cert_cache_speedup", 2.0),
];

/// This run's reference probe reading (`calib_lcg_ns`), as `f64` bits.
/// Set once in `main` after warmup; single-threaded, so relaxed ordering.
static REF_PROBE_NS: AtomicU64 = AtomicU64::new(0);

fn ref_probe_ns() -> f64 {
    f64::from_bits(REF_PROBE_NS.load(Ordering::Relaxed))
}

/// One fixed serial-dependency multiply/add chain — a proxy for the
/// machine's current effective clock.
#[inline(never)]
fn lcg_chain() {
    let mut x = black_box(0x243F_6A88_85A3_08D3u64);
    for _ in 0..64 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    black_box(x);
}

/// Raw timing of `chains` probe chains, in ns per chain.
fn probe_ns(chains: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..chains {
        lcg_chain();
    }
    start.elapsed().as_nanos() as f64 / f64::from(chains)
}

/// Best-of-`reps` raw probe reading. Recorded as `calib_lcg_ns`, used as
/// this run's reference machine speed, and compared across runs by the
/// gate so persistent CPU-frequency differences between a baseline
/// recording and a CI run do not read as code regressions.
fn calibrate(reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(probe_ns(20_000));
    }
    best
}

/// Best-of-`reps` timing of `inner` invocations of `f`, in ns per call.
///
/// The container is CPU-quota throttled: a measurement window either
/// runs clean or is hit by a multi-millisecond stall that inflates it
/// wildly. Short windows and best-of-many discard the stalls. Each rep
/// is additionally bracketed by calibration probes; when even the
/// cleaner probe ran >10% over the run's reference the whole
/// neighbourhood was being throttled, and the reading is scaled back
/// toward reference speed (at most 3x — the dead-band and the "never
/// scale up" clamp keep probe jitter from deflating clean readings).
/// Code regressions cannot hide behind this: slow *code* leaves the
/// adjacent probes at full speed.
fn time_ns(reps: u32, inner: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let pre = probe_ns(2_000);
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(inner);
        let post = probe_ns(2_000);
        let reference = ref_probe_ns();
        let forgive = if reference > 0.0 {
            (1.1 * reference / pre.min(post)).clamp(1.0 / 3.0, 1.0)
        } else {
            1.0
        };
        best = best.min(ns * forgive);
    }
    best
}

struct Metrics(Vec<(String, f64)>);

impl Metrics {
    fn put(&mut self, name: &str, value: f64) {
        self.0.push((name.to_owned(), value));
    }

    fn get(&self, name: &str) -> Option<f64> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

fn measure_neighbors(m: &mut Metrics, reps: u32, inner: u32) {
    for n in NEIGHBOR_COUNTS {
        let (mut world, ids) = probe_world(n, 300.0, 42);
        // Average over a spread of query centers so one lucky cell cannot
        // skew the figure.
        let centers: Vec<_> = (0..16).map(|i| ids[i * n / 16]).collect();
        let grid_ns = time_ns(reps, inner, || {
            for &c in &centers {
                black_box(world.neighbors_of(black_box(c)));
            }
        }) / centers.len() as f64;
        let (world, _) = probe_world(n, 300.0, 42);
        let scan_ns = time_ns(reps, inner, || {
            for &c in &centers {
                black_box(world.neighbors_of_scan(black_box(c)));
            }
        }) / centers.len() as f64;
        m.put(&format!("neighbor_grid_ns_{n}"), grid_ns);
        m.put(&format!("neighbor_scan_ns_{n}"), scan_ns);
        m.put(&format!("neighbor_speedup_{n}"), scan_ns / grid_ns);
    }
}

fn measure_crypto(m: &mut Metrics, reps: u32, inner: u32) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Hashing 4 KiB is slow per call; many short timing windows dodge
    // scheduler interference better than a few long ones.
    let data = vec![0x5Au8; 4096];
    let ns = time_ns(reps * 5, (inner / 20).max(25), || {
        black_box(sha256(black_box(&data)));
    });
    m.put("sha256_mb_s", data.len() as f64 * 1000.0 / ns);

    let scalars: Vec<u64> = (1..64u64)
        .map(|i| (i.wrapping_mul(0x2545_F491) % Q).max(1))
        .collect();
    let mut i = 0;
    let pow_mod_ns = time_ns(reps, inner, || {
        i = (i + 1) % scalars.len();
        black_box(pow_mod(G, black_box(scalars[i]), P));
    });
    let mut i = 0;
    let pow_g_ns = time_ns(reps, inner, || {
        i = (i + 1) % scalars.len();
        black_box(pow_g(black_box(scalars[i])));
    });
    m.put("pow_mod_ns", pow_mod_ns);
    m.put("pow_g_ns", pow_g_ns);
    m.put("pow_g_speedup", pow_mod_ns / pow_g_ns);

    let mut rng = StdRng::seed_from_u64(11);
    let keys = Keypair::generate(&mut rng);
    let msg = b"RREP dest=7 seq=75 hops=3 lifetime=6s";
    let sig = keys.sign(msg, &mut rng);
    m.put(
        "sign_ns",
        time_ns(reps, inner, || {
            black_box(keys.sign(black_box(msg), &mut rng));
        }),
    );
    m.put(
        "verify_ns",
        time_ns(reps, inner, || {
            black_box(keys.public().verify(black_box(msg), black_box(&sig)));
        }),
    );

    let mut rng = StdRng::seed_from_u64(12);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let subject = Keypair::generate(&mut rng);
    let cert = ta.enroll(
        LongTermId(77),
        subject.public(),
        Time::from_secs(0),
        Duration::from_secs(3600),
        &mut rng,
    );
    let now = Time::from_secs(10);
    let ta_key = ta.public_key();
    let cold_ns = time_ns(reps, inner.min(2_000), || {
        cert_cache_clear();
        black_box(cert.verify(ta_key, now)).ok();
    });
    cert_cache_clear();
    let _ = cert.verify(ta_key, now);
    let warm_ns = time_ns(reps, inner, || {
        black_box(cert.verify(ta_key, now)).ok();
    });
    cert_cache_clear();
    m.put("cert_verify_cold_ns", cold_ns);
    m.put("cert_verify_warm_ns", warm_ns);
    m.put("cert_cache_speedup", cold_ns / warm_ns);
}

fn measure_e2e(m: &mut Metrics, smoke: bool) -> usize {
    let cfg = if smoke {
        ScenarioConfig::small_test()
    } else {
        ScenarioConfig::paper_table1()
    };
    let reps = if smoke { 4 } else { 10 };
    let threads = worker_count();

    let start = Instant::now();
    let serial = fig4_cell_serial(&cfg, AttackKind::Single, 2, reps);
    let serial_ms = start.elapsed().as_secs_f64() * 1000.0;

    let start = Instant::now();
    let parallel = fig4_cell(&cfg, AttackKind::Single, 2, reps);
    let parallel_ms = start.elapsed().as_secs_f64() * 1000.0;

    // The parallel sweep must be a pure reordering of work: identical
    // trial outcomes in identical order.
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "parallel sweep diverged from the serial reference"
    );

    m.put("e2e_threads", threads as f64);
    m.put("e2e_serial_ms", serial_ms);
    m.put("e2e_parallel_ms", parallel_ms);
    m.put("e2e_parallel_speedup", serial_ms / parallel_ms);
    m.put(
        "e2e_trials_per_s",
        f64::from(reps) / (parallel_ms / 1000.0),
    );
    threads
}

/// Metrics gated against the recorded baseline. End-to-end wall-clock is
/// excluded (it measures machine load) and speedup ratios are gated by
/// [`SPEEDUP_FLOORS`] instead; everything listed here is a per-operation
/// figure that, after machine-speed normalization, is stable run-to-run.
fn gated(name: &str) -> bool {
    name.starts_with("neighbor_grid_ns_")
        || matches!(
            name,
            "sha256_mb_s" | "pow_g_ns" | "sign_ns" | "verify_ns" | "cert_verify_warm_ns"
        )
}

/// `true` when smaller values of this metric are better.
fn lower_is_better(name: &str) -> bool {
    // `_ns_` / `_ms_` catches per-size timings like `neighbor_grid_ns_60`.
    ["_ns", "_ms"]
        .iter()
        .any(|u| name.ends_with(u) || name.contains(&format!("{u}_")))
}

fn render_json(mode: &str, threads: usize, baseline: &Metrics, latest: &Metrics) -> String {
    let obj = |m: &Metrics| {
        let mut s = String::new();
        for (i, (name, value)) in m.0.iter().enumerate() {
            let sep = if i + 1 == m.0.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {value:.3}{sep}");
        }
        s
    };
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"threads\": {threads},\n  \"baseline\": {{\n{}  }},\n  \"latest\": {{\n{}  }}\n}}\n",
        obj(baseline),
        obj(latest)
    )
}

/// Minimal parser for the files this binary writes: returns the stored
/// `mode` and the `baseline` object's entries. Returns `None` when the
/// file is absent or not recognizably ours.
fn load_baseline(path: &str) -> Option<(String, Metrics)> {
    let text = std::fs::read_to_string(path).ok()?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mode = text
        .split("\"mode\": \"")
        .nth(1)?
        .split('"')
        .next()?
        .to_owned();
    let body = text.split("\"baseline\": {").nth(1)?.split('}').next()?;
    let mut metrics = Metrics(Vec::new());
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if let Ok(value) = value.trim().parse::<f64>() {
            metrics.put(name, value);
        }
    }
    Some((mode, metrics))
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let smoke = match mode.as_str() {
        "smoke" => true,
        "full" => false,
        other => {
            eprintln!("usage: perf [smoke|full] (got {other:?})");
            std::process::exit(2);
        }
    };
    // Full mode buys precision with more repeats, NOT longer windows: on
    // a quota-throttled container a long window is just a bigger target
    // for a stall, while best-of-many short windows converges on clean
    // hardware speed.
    let (reps, inner) = if smoke { (5, 2_000) } else { (17, 2_500) };

    // Let the CPU frequency governor ramp up before taking any timings;
    // the first measurements otherwise land on a half-awake clock.
    let warmup = Instant::now();
    let mut spin = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        spin = spin.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    black_box(spin);

    let mut latest = Metrics(Vec::new());
    let calib = calibrate(reps.max(7));
    REF_PROBE_NS.store(calib.to_bits(), Ordering::Relaxed);
    latest.put("calib_lcg_ns", calib);
    println!("perf [{mode}]: timing neighbor queries...");
    measure_neighbors(&mut latest, reps, inner.min(500));
    println!("perf [{mode}]: timing crypto hot paths...");
    measure_crypto(&mut latest, reps, inner);
    println!("perf [{mode}]: timing end-to-end sweep...");
    let threads = measure_e2e(&mut latest, smoke);

    println!("\n{:<26} {:>12}", "metric", "value");
    for (name, value) in &latest.0 {
        println!("{name:<26} {value:>12.1}");
    }

    // Every gated metric is per-operation and mode-independent (smoke and
    // full differ only in repeat counts), so a baseline recorded under
    // either mode is comparable; only the ungated e2e wall-clock figures
    // depend on the mode's scenario size.
    let baseline = match load_baseline(OUT_PATH) {
        Some((_stored_mode, stored)) => stored,
        None => Metrics(latest.0.clone()),
    };

    // Machine-speed correction for absolute metrics: > 1 means this run's
    // CPU is slower than the baseline's, and the tolerance widens so the
    // drift does not read as a code regression. A faster machine needs no
    // correction (raw comparison is already lenient in that direction),
    // and the clamp keeps a broken calibration from masking real
    // regressions.
    let speed = match (latest.get("calib_lcg_ns"), baseline.get("calib_lcg_ns")) {
        (Some(l), Some(b)) if b > 0.0 => (l / b).clamp(1.0, 2.0),
        _ => 1.0,
    };

    let mut failures = Vec::new();
    for (name, &(_, value)) in latest.0.iter().map(|e| (&e.0, e)) {
        if !gated(name) {
            continue;
        }
        let Some(base) = baseline.get(name) else {
            continue;
        };
        let regressed = if lower_is_better(name) {
            value > base * TOLERANCE * speed
        } else {
            value < base / TOLERANCE / speed
        };
        if regressed {
            failures.push(format!(
                "{name}: {value:.1} regressed >25% vs baseline {base:.1} (machine-speed factor {speed:.2})"
            ));
        }
    }

    for &(name, floor) in SPEEDUP_FLOORS {
        let value = latest.get(name).unwrap_or(0.0);
        if value < floor {
            failures.push(format!(
                "{name}: {value:.1}x below the required {floor:.0}x"
            ));
        }
    }
    let par_speedup = latest.get("e2e_parallel_speedup").unwrap_or(0.0);
    if threads > 1 && par_speedup < MIN_PARALLEL_SPEEDUP {
        failures.push(format!(
            "e2e_parallel_speedup: {par_speedup:.2}x below the required {MIN_PARALLEL_SPEEDUP:.0}x with {threads} threads"
        ));
    }

    blackdp_scenario::atomic_write(
        Path::new(OUT_PATH),
        render_json(&mode, threads, &baseline, &latest).as_bytes(),
    )
    .expect("write BENCH_pr2.json");
    println!("\nwrote {OUT_PATH}");

    if failures.is_empty() {
        println!("perf gate: PASS ({} metrics checked)", latest.0.len());
    } else {
        for f in &failures {
            eprintln!("perf gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}
