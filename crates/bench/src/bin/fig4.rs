//! Regenerates **Figure 4 — Single and cooperative black hole attacks**:
//! detection accuracy, false-positive rate and false-negative rate versus
//! the attacker's cluster position, for both attack kinds.
//!
//! The paper's shape to reproduce: 100 % accuracy with 0 % FP and 0 % FN
//! while the attacker sits in clusters 1–7; accuracy drops (and FN rises)
//! in the certificate-renewal zone, clusters 8–10, because attackers there
//! act legitimately during detection, flee the network, or renew their
//! identity mid-detection. FP stays at zero everywhere.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin fig4 [repetitions-per-cluster]
//! ```
//!
//! The paper repeats the simulation 150 times across treatments; the
//! default here is 15 per cluster per kind (= 300 trials total) to keep
//! the run under a few minutes. Pass a higher count for tighter intervals.

use blackdp_bench::{bar, pct};
use blackdp_scenario::{fig4, AttackKind, ScenarioConfig};

fn main() {
    let repetitions: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let cfg = ScenarioConfig::paper_table1();

    for kind in [AttackKind::Single, AttackKind::Cooperative] {
        let label = match kind {
            AttackKind::Single => "single black hole",
            AttackKind::Cooperative => "cooperative black hole",
        };
        println!("Figure 4 — {label} ({repetitions} trials per cluster)");
        println!(
            "{:>7} | {:>9} {:>7} {:>7} | accuracy",
            "cluster", "accuracy", "FP", "FN"
        );
        println!("{:-<60}", "");
        let points = fig4(&cfg, kind, repetitions);
        for p in &points {
            println!(
                "{:>7} | {:>9} {:>7} {:>7} | {}",
                p.cluster,
                pct(p.rates.accuracy),
                pct(p.rates.fp_rate),
                pct(p.rates.fn_rate),
                bar(p.rates.accuracy, 30),
            );
        }
        // Shape assertions mirroring the paper's reading of the figure.
        let clean: Vec<_> = points.iter().filter(|p| p.cluster <= 7).collect();
        let zone: Vec<_> = points.iter().filter(|p| p.cluster >= 8).collect();
        let clean_acc = clean.iter().map(|p| p.rates.accuracy).sum::<f64>() / clean.len() as f64;
        let zone_acc = zone.iter().map(|p| p.rates.accuracy).sum::<f64>() / zone.len() as f64;
        let max_fp = points
            .iter()
            .map(|p| p.rates.fp_rate)
            .fold(0.0f64, f64::max);
        println!(
            "shape: clusters 1-7 mean accuracy {} | clusters 8-10 mean accuracy {} | max FP {}",
            pct(clean_acc),
            pct(zone_acc),
            pct(max_fp)
        );
        println!(
            "paper: 100% accuracy and 0% FP/FN in clusters 1-7; accuracy drops and FN rises in 8-10; FP stays 0%"
        );
        println!();
    }
}
