//! Ablation A5 in the full simulator — the verification table's dedup
//! under congestion: many vehicles report the same suspect at once
//! ("when the highway is congested and many nodes wish to verify the same
//! suspect node", Section III-B).
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin congestion [reporters] [repetitions]
//! ```

use blackdp_scenario::{congestion_dedup, ScenarioConfig};

fn main() {
    let reporters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let repetitions: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cfg = ScenarioConfig::paper_table1();

    println!("Verification-table dedup under congestion");
    println!("({reporters} vehicles report the same attacker; {repetitions} trials each)");
    println!(
        "{:>8} | {:>18} | {:>18}",
        "dedup", "detection episodes", "probe unicasts"
    );
    println!("{:-<52}", "");
    let results = congestion_dedup(&cfg, reporters, repetitions);
    for r in &results {
        println!(
            "{:>8} | {:>18.1} | {:>18.1}",
            if r.dedup { "on" } else { "off" },
            r.mean_episodes,
            r.mean_probe_sends
        );
    }
    let on = results.iter().find(|r| r.dedup).unwrap();
    let off = results.iter().find(|r| !r.dedup).unwrap();
    println!();
    println!(
        "dedup suppresses {:.0}% of the redundant episodes ({}x fewer probe ladders)",
        (1.0 - on.mean_episodes / off.mean_episodes.max(1.0)) * 100.0,
        (off.mean_episodes / on.mean_episodes.max(1.0)).round()
    );
}
