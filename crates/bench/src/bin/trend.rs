//! `trend` — the bench history in one table.
//!
//! Every optimization PR leaves a `results/BENCH_pr<N>.json` behind
//! (PR 2 micro/e2e, PR 7 raw-speed, PR 8 sharded scale, PR 10 windowed
//! executor), each with its own schema and its own `baseline`/`latest`
//! pair — the baseline block being the numbers frozen when that PR
//! landed (for the earliest file, the seed). Reading the trajectory
//! therefore means opening four files and knowing four layouts. This bin
//! folds them into one report:
//!
//! * a headline table — one row per PR, its signature throughput metric,
//!   baseline → latest with the drift ratio;
//! * the full table — every metric of every file, so regressions hiding
//!   behind a healthy headline still surface.
//!
//! Read-only: parses whatever `results/BENCH_pr*.json` exist (skipping
//! none-such quietly), writes nothing, exits 0 unless no bench file
//! exists at all.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One parsed bench file.
struct BenchFile {
    /// PR number from the filename (`BENCH_pr8.json` → 8).
    pr: u32,
    schema: String,
    mode: String,
    baseline: Vec<(String, f64)>,
    latest: Vec<(String, f64)>,
}

/// Extracts the string value of `"key": "..."` from a JSON text.
fn str_field(text: &str, key: &str) -> Option<String> {
    Some(
        text.split(&format!("\"{key}\": \""))
            .nth(1)?
            .split('"')
            .next()?
            .to_owned(),
    )
}

/// Extracts the flat `"name": number` pairs of the object named `key`.
/// The bench writers emit exactly this shape (no nested objects inside
/// `baseline`/`latest`), so a brace split is a parser.
fn metric_block(text: &str, key: &str) -> Vec<(String, f64)> {
    let Some(body) = text
        .split(&format!("\"{key}\": {{"))
        .nth(1)
        .and_then(|rest| rest.split('}').next())
    else {
        return Vec::new();
    };
    let mut metrics = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if let Ok(value) = value.trim().parse::<f64>() {
            metrics.push((name.trim().trim_matches('"').to_owned(), value));
        }
    }
    metrics
}

fn parse_bench(path: &Path, pr: u32) -> Option<BenchFile> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(BenchFile {
        pr,
        schema: str_field(&text, "schema")?,
        mode: str_field(&text, "mode").unwrap_or_else(|| "?".into()),
        baseline: metric_block(&text, "baseline"),
        latest: metric_block(&text, "latest"),
    })
}

/// The bench files present under `dir`, ascending by PR number.
fn discover(dir: &Path) -> Vec<(u32, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<(u32, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let pr = name
                .strip_prefix("BENCH_pr")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((pr, entry.path()))
        })
        .collect();
    found.sort_unstable_by_key(|&(pr, _)| pr);
    found
}

/// The one metric that summarizes a file, per schema: end-to-end trial
/// rate for the perf tracks, best sharded event rate for the scale
/// track, windowed-executor event rate for the exec track. Falls back to
/// the first metric so unknown future schemas still produce a row.
fn headline(file: &BenchFile) -> Option<String> {
    let latest_names: Vec<&str> = file.latest.iter().map(|(n, _)| n.as_str()).collect();
    let pick = match file.schema.as_str() {
        "blackdp-perf/v1" => ["e2e_trials_per_s", "e2e_parallel_ms"]
            .into_iter()
            .find(|n| latest_names.contains(n)),
        "blackdp-scale/v1" => {
            // Best shard count may differ between baseline and latest:
            // headline the fastest sharded configuration of each.
            return latest_names
                .iter()
                .any(|n| n.starts_with("scale_events_per_s_shards"))
                .then(|| "scale_events_per_s_shards* (best)".to_owned());
        }
        "blackdp-exec/v1" => Some("exec_events_per_s_memo_windowed"),
        _ => None,
    };
    pick.or_else(|| latest_names.first().copied())
        .map(str::to_owned)
}

/// Looks `name` up in a metric list; the scale headline pseudo-metric
/// resolves to the maximum over the sharded event rates.
fn resolve(metrics: &[(String, f64)], name: &str) -> Option<f64> {
    if name == "scale_events_per_s_shards* (best)" {
        return metrics
            .iter()
            .filter(|(n, _)| n.starts_with("scale_events_per_s_shards"))
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("bench metrics are finite"));
    }
    metrics
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
}

fn fmt_value(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let files: Vec<BenchFile> = discover(&dir)
        .into_iter()
        .filter_map(|(pr, path)| parse_bench(&path, pr))
        .collect();
    if files.is_empty() {
        eprintln!("trend: no results/BENCH_pr*.json found under {}", dir.display());
        std::process::exit(1);
    }

    println!("==> bench trend: {} file(s) under {}", files.len(), dir.display());
    println!();
    println!("  headline trajectory (each PR's baseline froze at its landing; PR 2's is the seed)");
    println!(
        "  {:<5} {:>18} {:>6}  {:<38} {:>12} {:>12} {:>8}",
        "PR", "schema", "mode", "metric", "baseline", "latest", "drift"
    );
    for file in &files {
        let Some(metric) = headline(file) else {
            continue;
        };
        let base = resolve(&file.baseline, &metric);
        let latest = resolve(&file.latest, &metric);
        let drift = match (base, latest) {
            (Some(b), Some(l)) if b != 0.0 => format!("{:.2}x", l / b),
            _ => "-".into(),
        };
        println!(
            "  {:<5} {:>18} {:>6}  {:<38} {:>12} {:>12} {:>8}",
            format!("pr{}", file.pr),
            file.schema,
            file.mode,
            metric,
            base.map_or("-".into(), fmt_value),
            latest.map_or("-".into(), fmt_value),
            drift
        );
    }

    println!();
    println!("  all metrics");
    let mut out = String::new();
    for file in &files {
        let _ = writeln!(
            out,
            "  pr{} ({}, {} mode)",
            file.pr, file.schema, file.mode
        );
        for (name, latest) in &file.latest {
            let base = resolve(&file.baseline, name);
            let drift = match base {
                Some(b) if b != 0.0 => format!("{:.2}x", latest / b),
                _ => "-".into(),
            };
            let _ = writeln!(
                out,
                "    {:<40} {:>12} {:>12} {:>8}",
                name,
                base.map_or("-".into(), fmt_value),
                fmt_value(*latest),
                drift
            );
        }
    }
    print!("{out}");
}
