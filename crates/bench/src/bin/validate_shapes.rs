//! One-command validation: runs a reduced version of every experiment and
//! asserts the paper's shapes hold. Exits non-zero on any violation —
//! suitable as a CI gate for the reproduction.
//!
//! ```text
//! cargo run --release -p blackdp-bench --bin validate_shapes [quick|full]
//! ```
//!
//! `quick` (default) uses few repetitions (~1 minute); `full` uses more.

use blackdp_scenario::{
    defense_comparison, fig4_cell, fig5, grayhole_sweep, AttackKind, DefenseMode, RateSummary,
    ScenarioConfig,
};

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, label: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {label}");
        } else {
            println!("FAIL  {label}: {detail}");
            self.failures.push(label.to_owned());
        }
    }
}

fn main() {
    let full = std::env::args().nth(1).as_deref() == Some("full");
    let reps: u32 = if full { 15 } else { 5 };
    let cfg = ScenarioConfig::paper_table1();
    let mut gate = Gate {
        failures: Vec::new(),
    };

    // --- Figure 4 shape: perfection in the clean zone, FN-only loss in the
    // renewal zone, zero FP everywhere. ---
    for kind in [AttackKind::Single, AttackKind::Cooperative] {
        let clean: Vec<_> = [2u32, 5, 7]
            .iter()
            .map(|&c| RateSummary::from_outcomes(&fig4_cell(&cfg, kind, c, reps)))
            .collect();
        let zone = RateSummary::from_outcomes(&fig4_cell(&cfg, kind, 9, reps * 2));
        let clean_acc = clean.iter().map(|r| r.accuracy).sum::<f64>() / clean.len() as f64;
        let max_fp = clean.iter().map(|r| r.fp_rate).fold(zone.fp_rate, f64::max);
        gate.check(
            &format!("fig4/{kind:?}: clusters 1-7 accuracy = 100%"),
            clean_acc >= 0.999,
            format!("got {clean_acc:.3}"),
        );
        gate.check(
            &format!("fig4/{kind:?}: renewal zone accuracy drops"),
            zone.accuracy < clean_acc && zone.fn_rate > 0.0,
            format!("zone accuracy {:.3}, fn {:.3}", zone.accuracy, zone.fn_rate),
        );
        gate.check(
            &format!("fig4/{kind:?}: zero false positives"),
            max_fp == 0.0,
            format!("max FP {max_fp:.3}"),
        );
    }

    // --- Figure 5 shape: within one packet of every band, correct order. ---
    let rows = fig5(&cfg, reps);
    for row in &rows {
        let (plo, phi) = row.paper_range;
        let ok = match (row.min(), row.max()) {
            (Some(lo), Some(hi)) => hi >= plo.saturating_sub(1) && lo <= phi + 1,
            _ => false,
        };
        gate.check(
            &format!("fig5/{}", row.label),
            ok,
            format!(
                "measured {:?}-{:?} vs paper {plo}-{phi}",
                row.min(),
                row.max()
            ),
        );
    }
    let mean = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .map(|r| r.measured.iter().map(|&x| x as f64).sum::<f64>() / r.measured.len() as f64)
            .unwrap_or(f64::NAN)
    };
    gate.check(
        "fig5: ordering no-attack < same-cluster < moved < cross+moved",
        mean("no attacker (false suspicion)") < mean("single, same cluster")
            && mean("single, same cluster") < mean("single, same cluster, moves mid-detection")
            && mean("single, same cluster, moves mid-detection")
                < mean("single, different cluster, moves mid-detection"),
        format!(
            "{:.1} / {:.1} / {:.1} / {:.1}",
            mean("no attacker (false suspicion)"),
            mean("single, same cluster"),
            mean("single, same cluster, moves mid-detection"),
            mean("single, different cluster, moves mid-detection"),
        ),
    );

    // --- Defense comparison: BlackDP dominates; no defense collapses. ---
    let comparison = defense_comparison(&cfg, reps);
    let get = |d: DefenseMode| comparison.iter().find(|r| r.defense == d).unwrap();
    let blackdp = get(DefenseMode::BlackDp);
    let none = get(DefenseMode::None);
    gate.check(
        "comparison: BlackDP detects and isolates",
        blackdp.under_attack.accuracy >= 0.999,
        format!("accuracy {:.3}", blackdp.under_attack.accuracy),
    );
    gate.check(
        "comparison: undefended AODV collapses under attack",
        none.under_attack.mean_pdr < 0.2,
        format!("PDR {:.3}", none.under_attack.mean_pdr),
    );
    gate.check(
        "comparison: BlackDP preserves delivery under attack",
        blackdp.under_attack.mean_pdr > 0.9,
        format!("PDR {:.3}", blackdp.under_attack.mean_pdr),
    );

    // --- Gray hole: detection flat across drop rates. ---
    let gray = grayhole_sweep(&cfg, &[0.0, 0.5, 1.0], reps.min(4));
    let min_acc = gray
        .iter()
        .map(|p| p.rates.accuracy)
        .fold(f64::INFINITY, f64::min);
    gate.check(
        "grayhole: detection independent of drop rate",
        min_acc >= 0.999,
        format!("min accuracy {min_acc:.3}"),
    );

    println!();
    if gate.failures.is_empty() {
        println!("all shapes hold.");
    } else {
        println!(
            "{} shape(s) violated: {:?}",
            gate.failures.len(),
            gate.failures
        );
        std::process::exit(1);
    }
}
