//! Microbenchmarks of the AODV state machine: the per-packet costs every
//! vehicle pays, independent of BlackDP.

use blackdp_aodv::{Addr, Aodv, AodvConfig, Message, Rrep, Rreq};
use blackdp_sim::{Duration, Time};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn fresh_rreq(id: u64) -> Rreq {
    Rreq {
        rreq_id: id,
        dest: Addr(9_999),
        dest_seq: None,
        orig: Addr(1),
        orig_seq: id as u32,
        hop_count: 2,
        ttl: 10,
        next_hop_inquiry: false,
    }
}

fn bench_rreq_processing(c: &mut Criterion) {
    c.bench_function("aodv/handle_fresh_rreq", |b| {
        b.iter_batched(
            || Aodv::new(Addr(5), AodvConfig::default()),
            |mut aodv| {
                for i in 0..64u64 {
                    black_box(aodv.handle_message(
                        Addr(2),
                        Message::Rreq(fresh_rreq(i)),
                        Time::ZERO,
                    ));
                }
                aodv
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("aodv/handle_duplicate_rreq", |b| {
        let mut aodv = Aodv::new(Addr(5), AodvConfig::default());
        let _ = aodv.handle_message(Addr(2), Message::Rreq(fresh_rreq(1)), Time::ZERO);
        b.iter(|| black_box(aodv.handle_message(Addr(2), Message::Rreq(fresh_rreq(1)), Time::ZERO)))
    });
}

fn bench_routing_table_growth(c: &mut Criterion) {
    c.bench_function("aodv/install_200_routes", |b| {
        b.iter_batched(
            || Aodv::new(Addr(5), AodvConfig::default()),
            |mut aodv| {
                for i in 0..200u64 {
                    let rrep = Rrep {
                        dest: Addr(10_000 + i),
                        dest_seq: i as u32,
                        orig: Addr(5),
                        hop_count: 3,
                        lifetime: Duration::from_secs(6),
                        next_hop: None,
                    };
                    black_box(aodv.handle_message(Addr(2), Message::Rrep(rrep), Time::ZERO));
                }
                aodv
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tick(c: &mut Criterion) {
    c.bench_function("aodv/tick_with_100_routes", |b| {
        let mut aodv = Aodv::new(Addr(5), AodvConfig::default());
        for i in 0..100u64 {
            let rrep = Rrep {
                dest: Addr(10_000 + i),
                dest_seq: i as u32,
                orig: Addr(5),
                hop_count: 3,
                lifetime: Duration::from_secs(600),
                next_hop: None,
            };
            let _ = aodv.handle_message(Addr(2), Message::Rrep(rrep), Time::ZERO);
        }
        let mut t = Time::ZERO;
        b.iter(|| {
            t += Duration::from_millis(100);
            black_box(aodv.tick(t))
        })
    });
}

criterion_group!(
    benches,
    bench_rreq_processing,
    bench_routing_table_growth,
    bench_tick
);
criterion_main!(benches);
