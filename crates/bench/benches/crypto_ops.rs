//! Ablation A1 — cost of the cryptographic operations each detection
//! performs (the paper's Limitation section worries about RSU
//! authentication becoming a bottleneck in dense clusters).

use blackdp_crypto::{sha256, Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_sim::{Duration, Time};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let keys = Keypair::generate(&mut rng);
    let msg = b"RREP dest=7 seq=75 hops=3 lifetime=6s";
    let sig = keys.sign(msg, &mut rng);

    c.bench_function("schnorr/sign", |b| {
        b.iter(|| keys.sign(black_box(msg), &mut rng))
    });
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| keys.public().verify(black_box(msg), black_box(&sig)))
    });
}

fn bench_certificates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let subject = Keypair::generate(&mut rng);
    let cert = ta.enroll(
        LongTermId(1),
        subject.public(),
        Time::ZERO,
        Duration::from_secs(600),
        &mut rng,
    );

    c.bench_function("cert/issue", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ta.enroll(
                LongTermId(i),
                subject.public(),
                Time::ZERO,
                Duration::from_secs(600),
                &mut rng,
            )
        })
    });
    c.bench_function("cert/verify", |b| {
        b.iter(|| cert.verify(black_box(ta.public_key()), Time::from_secs(1)))
    });

    // The per-detection authentication bill: one d_req envelope check plus
    // the two probe RREQs (unsigned) — i.e. one cert verify + one body
    // signature verify.
    let body = b"DREQ reporter=1 cluster=2 suspect=66";
    let body_sig = subject.sign(body, &mut rng);
    c.bench_function("detection/auth_bill", |b| {
        b.iter(|| {
            let ok = cert.verify(ta.public_key(), Time::from_secs(1)).is_ok()
                && cert.public_key.verify(black_box(body), &body_sig);
            black_box(ok)
        })
    });
}

fn bench_keygen(c: &mut Criterion) {
    c.bench_function("schnorr/keygen", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| Keypair::generate(&mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_signatures,
    bench_certificates,
    bench_keygen
);
criterion_main!(benches);
