//! Ablation A2 — end-to-end trial cost: wall-clock time to simulate a full
//! Table-I run (clean, single attack, cooperative attack) and scaling with
//! vehicle density. Also reports — via the simulation itself — how long
//! route discovery plus BlackDP verification takes in *virtual* time.

use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    build_scenario, run_trial, AttackSetup, ScenarioConfig, TrialSpec, VehicleNode,
};
use blackdp_sim::Time;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn clean_spec(seed: u64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::None,
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(4),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

fn bench_full_trials(c: &mut Criterion) {
    let cfg = ScenarioConfig::paper_table1();
    let mut group = c.benchmark_group("trial");
    group.sample_size(10);
    group.bench_function("clean_table1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, &clean_spec(seed)))
        })
    });
    group.bench_function("single_attack_table1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, &TrialSpec::single(seed, 2, 10)))
        })
    });
    group.bench_function("cooperative_attack_table1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, &TrialSpec::cooperative(seed, 3, 10)))
        })
    });
    group.finish();
}

fn bench_density_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial/density");
    group.sample_size(10);
    for vehicles in [50u32, 100, 200] {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.vehicles = vehicles;
        group.bench_function(format!("{vehicles}_vehicles"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_trial(&cfg, &clean_spec(seed)))
            })
        });
    }
    group.finish();
}

fn bench_verification_virtual_latency(c: &mut Criterion) {
    // Not a wall-clock benchmark per se: measures how much *simulation*
    // work it takes until the source's route is verified end to end.
    let cfg = ScenarioConfig::paper_table1();
    c.bench_function("trial/until_route_verified", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let mut built = build_scenario(&cfg, &clean_spec(seed));
            let dest_addr = built.dest_addr;
            let mut t = Time::from_secs(2);
            let step = blackdp_sim::Duration::from_millis(200);
            for _ in 0..150 {
                built.world.run_until(t);
                let verified = built
                    .world
                    .get::<VehicleNode>(built.source)
                    .map(|v| v.is_verified(dest_addr))
                    .unwrap_or(false);
                if verified {
                    break;
                }
                t += step;
            }
            black_box(built.world.now())
        })
    });
}

criterion_group!(
    benches,
    bench_full_trials,
    bench_density_scaling,
    bench_verification_virtual_latency
);
criterion_main!(benches);
