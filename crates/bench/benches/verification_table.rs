//! Ablation A5 — the verification table under congestion: the paper's
//! dedup rationale is that "when the highway is congested … many nodes
//! wish to verify the same suspect node". Measures recording cost with
//! heavy duplication and the capacity-eviction path.

use blackdp::VerificationTable;
use blackdp_aodv::Addr;
use blackdp_crypto::PseudonymId;
use blackdp_mobility::ClusterId;
use blackdp_sim::Time;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_dedup_storm(c: &mut Criterion) {
    // 500 reporters all flagging the same suspect (a congested segment).
    c.bench_function("vtable/dedup_500_reports_same_suspect", |b| {
        b.iter_batched(
            || VerificationTable::new(1024),
            |mut table| {
                for i in 0..500u64 {
                    black_box(table.record(
                        Addr(42),
                        Some(ClusterId(3)),
                        PseudonymId(i),
                        ClusterId(2),
                        Time::ZERO,
                    ));
                }
                table
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_distinct_suspects(c: &mut Criterion) {
    c.bench_function("vtable/record_500_distinct_suspects", |b| {
        b.iter_batched(
            || VerificationTable::new(1024),
            |mut table| {
                for i in 0..500u64 {
                    black_box(table.record(
                        Addr(i),
                        None,
                        PseudonymId(i),
                        ClusterId(2),
                        Time::from_micros(i),
                    ));
                }
                table
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_eviction_pressure(c: &mut Criterion) {
    // Table at capacity: every insert walks the eviction scan — the
    // storage-overhead worst case the paper's future work wants reduced.
    c.bench_function("vtable/insert_at_capacity_64", |b| {
        b.iter_batched(
            || {
                let mut table = VerificationTable::new(64);
                for i in 0..64u64 {
                    table.record(
                        Addr(i),
                        None,
                        PseudonymId(i),
                        ClusterId(1),
                        Time::from_micros(i),
                    );
                }
                (table, 64u64)
            },
            |(mut table, mut next)| {
                for _ in 0..32 {
                    next += 1;
                    black_box(table.record(
                        Addr(next),
                        None,
                        PseudonymId(next),
                        ClusterId(1),
                        Time::from_micros(next),
                    ));
                }
                table
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_dedup_storm,
    bench_distinct_suspects,
    bench_eviction_pressure
);
criterion_main!(benches);
