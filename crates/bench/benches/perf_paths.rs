//! PR-2 hot paths — microbenchmarks for the routines the perf work
//! optimized: SHA-256 hashing, Schnorr exponentiation with and without
//! the fixed-base table, certificate verification with a cold and a warm
//! cache, and broadcast neighbor queries (grid vs. brute-force scan) at
//! three vehicle densities.

use blackdp_bench::probe::probe_world;
use blackdp_crypto::field::{pow_g, pow_mod, G, P, Q};
use blackdp_crypto::{cert_cache_clear, Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_sim::{Duration, Time};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/sha256");
    for size in [256usize, 4096] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| blackdp_crypto::sha256(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_fixed_base_exponentiation(c: &mut Criterion) {
    // The same scalars through both paths: the generic square-and-multiply
    // ladder and the precomputed fixed-base window table for G.
    let scalars: Vec<u64> = (1..64u64).map(|i| (i.wrapping_mul(0x2545_F491) % Q).max(1)).collect();
    let mut group = c.benchmark_group("perf/pow");
    group.bench_function("generic_pow_mod", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % scalars.len();
            pow_mod(G, black_box(scalars[i]), P)
        })
    });
    group.bench_function("fixed_base_table", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % scalars.len();
            pow_g(black_box(scalars[i]))
        })
    });
    group.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let keys = Keypair::generate(&mut rng);
    let msg = b"RREP dest=7 seq=75 hops=3 lifetime=6s";
    let sig = keys.sign(msg, &mut rng);
    let mut group = c.benchmark_group("perf/schnorr");
    group.bench_function("sign", |b| b.iter(|| keys.sign(black_box(msg), &mut rng)));
    group.bench_function("verify", |b| {
        b.iter(|| keys.public().verify(black_box(msg), black_box(&sig)))
    });
    group.finish();
}

fn bench_cert_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
    let subject = Keypair::generate(&mut rng);
    let cert = ta.enroll(
        LongTermId(77),
        subject.public(),
        Time::from_secs(0),
        Duration::from_secs(3600),
        &mut rng,
    );
    let now = Time::from_secs(10);
    let ta_key = ta.public_key();
    let mut group = c.benchmark_group("perf/cert_verify");
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            cert_cache_clear();
            black_box(cert.verify(ta_key, now)).is_ok()
        })
    });
    group.bench_function("warm_cache", |b| {
        cert_cache_clear();
        let _ = cert.verify(ta_key, now);
        b.iter(|| black_box(cert.verify(ta_key, now)).is_ok())
    });
    group.finish();
    cert_cache_clear();
}

fn bench_neighbor_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/neighbors");
    for n in [60usize, 250, 1000] {
        let (mut world, ids) = probe_world(n, 300.0, 42);
        let center = ids[n / 2];
        group.bench_function(format!("grid_{n}"), |b| {
            b.iter(|| black_box(world.neighbors_of(black_box(center))).len())
        });
        let (world, ids) = probe_world(n, 300.0, 42);
        let center = ids[n / 2];
        group.bench_function(format!("scan_{n}"), |b| {
            b.iter(|| black_box(world.neighbors_of_scan(black_box(center))).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_fixed_base_exponentiation,
    bench_sign_verify,
    bench_cert_cache,
    bench_neighbor_query
);
criterion_main!(benches);
