//! The three related-work sequence-number detectors.

use std::collections::VecDeque;

use blackdp_aodv::{Addr, Rrep, SeqNo};
use blackdp_sim::{Duration, Time};

/// A per-RREP verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The reply looks legitimate; the route may be used.
    Accept,
    /// The replier is judged malicious; discard the reply (and typically
    /// blacklist the sender locally).
    Suspect,
}

/// A detector that judges individual RREPs as they arrive.
///
/// Implemented by [`PeakDetector`] and [`ThresholdDetector`];
/// [`FirstRrepComparator`] needs the whole discovery window and exposes a
/// batch API instead.
pub trait RrepJudge {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Learn from background traffic (any sequence number observed on the
    /// channel, not only RREPs under judgement).
    fn observe(&mut self, seq: SeqNo, now: Time);

    /// Judge a single incoming RREP.
    fn judge(&mut self, from: Addr, rrep: &Rrep, now: Time) -> Verdict;
}

/// Jaiswal & Kumar \[13\]: collect all RREPs answering one RREQ; if the
/// first one's sequence number is disproportionately high compared to the
/// rest, its sender is declared an attacker.
///
/// # Examples
///
/// ```
/// use blackdp_baselines::FirstRrepComparator;
/// use blackdp_aodv::Addr;
/// use blackdp_sim::Time;
///
/// let mut cmp = FirstRrepComparator::new(2.0);
/// cmp.start(Time::ZERO);
/// cmp.add(Addr(66), 200, Time::from_millis(1)); // the fast forged reply
/// cmp.add(Addr(4), 20, Time::from_millis(4));
/// cmp.add(Addr(5), 22, Time::from_millis(5));
/// let judgement = cmp.conclude();
/// assert_eq!(judgement.suspect, Some(Addr(66)));
/// assert_eq!(judgement.winner, Some(Addr(5)));
/// ```
#[derive(Debug, Clone)]
pub struct FirstRrepComparator {
    /// How many times higher than the best *other* reply the first reply
    /// must be to be declared malicious.
    ratio: f64,
    collected: Vec<(Addr, SeqNo, Time)>,
    started: Option<Time>,
}

/// The outcome of a [`FirstRrepComparator`] discovery window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryJudgement {
    /// The sender judged malicious, if any.
    pub suspect: Option<Addr>,
    /// The sender whose route should be used (highest sequence number
    /// among non-suspects).
    pub winner: Option<Addr>,
}

impl FirstRrepComparator {
    /// Creates a comparator flagging first replies `ratio`× above the best
    /// alternative.
    ///
    /// # Panics
    ///
    /// Panics unless `ratio > 1.0`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 1.0, "ratio must exceed 1.0");
        FirstRrepComparator {
            ratio,
            collected: Vec::new(),
            started: None,
        }
    }

    /// Opens a collection window for a new discovery.
    pub fn start(&mut self, now: Time) {
        self.collected.clear();
        self.started = Some(now);
    }

    /// Records one RREP.
    pub fn add(&mut self, from: Addr, seq: SeqNo, at: Time) {
        self.collected.push((from, seq, at));
    }

    /// Closes the window and judges.
    pub fn conclude(&mut self) -> DiscoveryJudgement {
        self.started = None;
        let mut by_arrival = self.collected.clone();
        by_arrival.sort_by_key(|&(_, _, t)| t);
        let Some(&(first_from, first_seq, _)) = by_arrival.first() else {
            return DiscoveryJudgement {
                suspect: None,
                winner: None,
            };
        };
        let best_other = by_arrival
            .iter()
            .filter(|&&(from, _, _)| from != first_from)
            .map(|&(_, s, _)| s)
            .max();
        let suspect = match best_other {
            // The diagnosed blind spot: a sole responder cannot be judged.
            None => None,
            Some(other) => {
                let threshold = (other as f64 * self.ratio).max(other as f64 + 1.0);
                (first_seq as f64 > threshold).then_some(first_from)
            }
        };
        let winner = by_arrival
            .iter()
            .filter(|&&(from, _, _)| Some(from) != suspect)
            .max_by_key(|&&(_, s, _)| s)
            .map(|&(from, _, _)| from);
        self.collected.clear();
        DiscoveryJudgement { suspect, winner }
    }

    /// Number of replies collected in the open window.
    pub fn collected_len(&self) -> usize {
        self.collected.len()
    }
}

/// Jhaveri et al. \[15\]: a dynamic `PEAK` — the maximum plausible sequence
/// number for the current interval, derived from what has actually been
/// observed plus a per-interval growth allowance.
#[derive(Debug, Clone)]
pub struct PeakDetector {
    /// Allowed sequence-number growth per interval.
    growth_per_interval: SeqNo,
    /// Interval length.
    interval: Duration,
    /// Highest legitimate sequence number seen up to the interval start.
    base: SeqNo,
    /// Observations in the current interval.
    current_max: SeqNo,
    interval_start: Time,
    /// Recent observations window (for reporting).
    recent: VecDeque<SeqNo>,
}

impl PeakDetector {
    /// Creates a detector allowing `growth_per_interval` of sequence
    /// advance every `interval`.
    pub fn new(growth_per_interval: SeqNo, interval: Duration) -> Self {
        PeakDetector {
            growth_per_interval,
            interval,
            base: 0,
            current_max: 0,
            interval_start: Time::ZERO,
            recent: VecDeque::with_capacity(32),
        }
    }

    /// The current `PEAK` bound.
    pub fn peak(&self) -> SeqNo {
        self.base.saturating_add(self.growth_per_interval)
    }

    fn roll(&mut self, now: Time) {
        while now.saturating_since(self.interval_start) >= self.interval {
            self.interval_start += self.interval;
            // Sequence knowledge consolidates at interval boundaries, but
            // only up to PEAK: flagged outliers never poison the base.
            self.base = self.base.max(self.current_max.min(self.peak()));
            self.current_max = 0;
        }
    }
}

impl RrepJudge for PeakDetector {
    fn name(&self) -> &'static str {
        "peak"
    }

    fn observe(&mut self, seq: SeqNo, now: Time) {
        self.roll(now);
        if seq <= self.peak() {
            self.current_max = self.current_max.max(seq);
        }
        if self.recent.len() == 32 {
            self.recent.pop_front();
        }
        self.recent.push_back(seq);
    }

    fn judge(&mut self, _from: Addr, rrep: &Rrep, now: Time) -> Verdict {
        self.roll(now);
        if rrep.dest_seq > self.peak() {
            Verdict::Suspect
        } else {
            self.observe(rrep.dest_seq, now);
            Verdict::Accept
        }
    }
}

/// Tan & Kim \[26\]: a static threshold sized to the environment (small /
/// medium / large network); RREPs whose sequence number exceeds it are
/// discarded.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdDetector {
    threshold: SeqNo,
}

impl ThresholdDetector {
    /// Creates a detector with the given absolute threshold.
    pub fn new(threshold: SeqNo) -> Self {
        ThresholdDetector { threshold }
    }

    /// The paper's "small environment" sizing.
    pub fn small() -> Self {
        ThresholdDetector::new(100)
    }

    /// The paper's "medium environment" sizing.
    pub fn medium() -> Self {
        ThresholdDetector::new(500)
    }

    /// The paper's "large environment" sizing.
    pub fn large() -> Self {
        ThresholdDetector::new(2000)
    }

    /// The configured threshold.
    pub fn threshold(&self) -> SeqNo {
        self.threshold
    }
}

impl RrepJudge for ThresholdDetector {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn observe(&mut self, _seq: SeqNo, _now: Time) {}

    fn judge(&mut self, _from: Addr, rrep: &Rrep, _now: Time) -> Verdict {
        if rrep.dest_seq > self.threshold {
            Verdict::Suspect
        } else {
            Verdict::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rrep(seq: SeqNo) -> Rrep {
        Rrep {
            dest: Addr(7),
            dest_seq: seq,
            orig: Addr(1),
            hop_count: 2,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        }
    }

    #[test]
    fn first_rrep_flags_fast_outlier() {
        let mut cmp = FirstRrepComparator::new(2.0);
        cmp.start(Time::ZERO);
        cmp.add(Addr(66), 120, Time::from_millis(1));
        cmp.add(Addr(3), 20, Time::from_millis(3));
        let j = cmp.conclude();
        assert_eq!(j.suspect, Some(Addr(66)));
        assert_eq!(j.winner, Some(Addr(3)));
    }

    #[test]
    fn first_rrep_accepts_honest_fast_reply() {
        let mut cmp = FirstRrepComparator::new(2.0);
        cmp.start(Time::ZERO);
        cmp.add(Addr(4), 22, Time::from_millis(1));
        cmp.add(Addr(3), 20, Time::from_millis(3));
        let j = cmp.conclude();
        assert_eq!(j.suspect, None);
        assert_eq!(j.winner, Some(Addr(4)), "highest seq wins");
    }

    #[test]
    fn first_rrep_blind_when_attacker_is_sole_responder() {
        // The exact failure case Section V-A describes.
        let mut cmp = FirstRrepComparator::new(2.0);
        cmp.start(Time::ZERO);
        cmp.add(Addr(66), 5000, Time::from_millis(1));
        let j = cmp.conclude();
        assert_eq!(j.suspect, None, "nothing to compare against");
        assert_eq!(j.winner, Some(Addr(66)), "the attacker wins the route");
    }

    #[test]
    fn first_rrep_empty_window() {
        let mut cmp = FirstRrepComparator::new(2.0);
        cmp.start(Time::ZERO);
        assert_eq!(cmp.collected_len(), 0);
        let j = cmp.conclude();
        assert_eq!(j.suspect, None);
        assert_eq!(j.winner, None);
    }

    #[test]
    fn peak_flags_jump_and_tracks_growth() {
        let mut d = PeakDetector::new(50, Duration::from_secs(1));
        // Legitimate growth within the allowance...
        for (t, s) in [(0u64, 10u32), (100, 20), (300, 40)] {
            assert_eq!(
                d.judge(Addr(2), &rrep(s), Time::from_millis(t)),
                Verdict::Accept,
                "seq {s} under peak {}",
                d.peak()
            );
        }
        // ...a forged 200 exceeds PEAK (= base 0 + 50 in interval 0).
        assert_eq!(
            d.judge(Addr(66), &rrep(200), Time::from_millis(400)),
            Verdict::Suspect
        );
        // After the interval rolls, the base consolidates and PEAK grows.
        assert_eq!(
            d.judge(Addr(2), &rrep(60), Time::from_millis(1200)),
            Verdict::Accept,
            "peak is now {}",
            d.peak()
        );
    }

    #[test]
    fn peak_base_is_not_poisoned_by_outliers() {
        let mut d = PeakDetector::new(50, Duration::from_secs(1));
        assert_eq!(
            d.judge(Addr(66), &rrep(40_000), Time::from_millis(10)),
            Verdict::Suspect
        );
        // Even after rolling several intervals, PEAK stays near the
        // legitimate base.
        let _ = d.judge(Addr(2), &rrep(10), Time::from_secs(5));
        assert!(d.peak() <= 100, "peak {} stayed grounded", d.peak());
    }

    #[test]
    fn peak_misses_modest_forgery() {
        // Documented weakness: a patient attacker forging just under PEAK
        // is accepted.
        let mut d = PeakDetector::new(50, Duration::from_secs(1));
        let _ = d.judge(Addr(2), &rrep(10), Time::from_millis(10));
        assert_eq!(
            d.judge(Addr(66), &rrep(45), Time::from_millis(20)),
            Verdict::Accept
        );
    }

    #[test]
    fn threshold_is_static() {
        let mut d = ThresholdDetector::small();
        assert_eq!(d.judge(Addr(2), &rrep(99), Time::ZERO), Verdict::Accept);
        assert_eq!(d.judge(Addr(2), &rrep(100), Time::ZERO), Verdict::Accept);
        assert_eq!(d.judge(Addr(66), &rrep(101), Time::ZERO), Verdict::Suspect);
        assert_eq!(ThresholdDetector::medium().threshold(), 500);
        assert_eq!(ThresholdDetector::large().threshold(), 2000);
    }

    #[test]
    fn judges_have_names() {
        assert_eq!(PeakDetector::new(1, Duration::from_secs(1)).name(), "peak");
        assert_eq!(ThresholdDetector::small().name(), "threshold");
    }

    #[test]
    #[should_panic(expected = "ratio must exceed")]
    fn comparator_rejects_bad_ratio() {
        let _ = FirstRrepComparator::new(1.0);
    }
}
