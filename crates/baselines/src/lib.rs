//! # blackdp-baselines — sequence-number black hole detectors from related work
//!
//! The paper's Section V-A surveys three sequence-number-based defenses and
//! argues they fail in CV highway networks. This crate implements all
//! three so the benchmark harness can compare them against BlackDP:
//!
//! * [`FirstRrepComparator`] — Jaiswal & Kumar: collect every RREP for a
//!   discovery, then flag the *first* RREP if its sequence number is an
//!   outlier against the rest.
//! * [`PeakDetector`] — Jhaveri et al.: maintain `PEAK`, the maximum
//!   plausible sequence number for the current interval; anything above it
//!   is malicious.
//! * [`ThresholdDetector`] — Tan & Kim: a static environment-sized
//!   threshold; RREPs above it are discarded.
//!
//! All three share the paper's diagnosed blind spot: **when the attacker
//! is the only responder** (e.g. the sole connector between two highway
//! segments) there is nothing to compare against, and a forged-but-modest
//! sequence number sails through. The `sole_responder` bench reproduces
//! that failure case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detectors;

pub use detectors::{
    DiscoveryJudgement, FirstRrepComparator, PeakDetector, RrepJudge, ThresholdDetector, Verdict,
};
