//! # blackdp-mobility — highway geometry, trajectories, and cluster planning
//!
//! Implements the paper's "Connected Vehicles Network Model" (Section III-A):
//! a controlled-access highway divided into equal static clusters, each
//! supervised by a centrally placed RSU acting as cluster head, with
//! vehicles moving at fixed random speeds (Table I: 50–90 km/h over a
//! 10 km × 200 m highway with 1000 m clusters).
//!
//! Positions are pure functions of time ([`Trajectory::position_at`]), so
//! the radio medium never quantizes motion.
//!
//! # Examples
//!
//! ```
//! use blackdp_mobility::{ClusterPlan, Direction, Kmh, Trajectory};
//! use blackdp_sim::{Position, Time};
//!
//! let plan = ClusterPlan::paper_table1();
//! let car = Trajectory::new(Position::new(0.0, 100.0), Kmh(72.0), Direction::Forward, Time::ZERO);
//!
//! // After 100 s at 20 m/s the car is 2 km in: cluster 3.
//! let pos = car.position_at(Time::from_secs(100));
//! assert_eq!(plan.cluster_of(pos), Some(blackdp_mobility::ClusterId(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod grid;
mod highway;
mod spawn;

pub use cluster::{ClusterId, ClusterPlan, JoinZone};
pub use grid::{GridPlan, GridTrajectory, IntersectionId};
pub use highway::{Direction, Highway, Kmh, Trajectory};
pub use spawn::{
    random_position, random_position_in_cluster, random_trajectory_in_cluster, SpawnConfig,
};
