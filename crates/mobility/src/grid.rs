//! An urban Manhattan-grid topology — the paper's future work ("the
//! proposed detection protocol does not yet account for an urban topology
//! network").
//!
//! The grid has `blocks_x × blocks_y` square blocks; streets run along
//! every block boundary and RSUs sit at intersections. Vehicles follow
//! street-aligned piecewise paths with turns at intersections.

use blackdp_sim::{Position, Time};

use crate::highway::Kmh;

/// Identifies one intersection (and its RSU) in the grid, by column and
/// row of the intersection lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntersectionId {
    /// Column index, `0 ..= blocks_x`.
    pub col: u32,
    /// Row index, `0 ..= blocks_y`.
    pub row: u32,
}

impl std::fmt::Display for IntersectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i({},{})", self.col, self.row)
    }
}

/// A Manhattan street grid with RSUs at intersections.
///
/// # Examples
///
/// ```
/// use blackdp_mobility::{GridPlan, IntersectionId};
/// use blackdp_sim::Position;
///
/// // A 3×2 grid of 500 m blocks: 4×3 intersections.
/// let grid = GridPlan::new(3, 2, 500.0);
/// assert_eq!(grid.intersection_count(), 12);
/// let rsu = grid.intersection_position(IntersectionId { col: 1, row: 1 });
/// assert_eq!(rsu, Some(Position::new(500.0, 500.0)));
/// // Positions are claimed by their nearest intersection.
/// assert_eq!(
///     grid.nearest_intersection(Position::new(520.0, 480.0)),
///     IntersectionId { col: 1, row: 1 }
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPlan {
    blocks_x: u32,
    blocks_y: u32,
    block_m: f64,
}

impl GridPlan {
    /// Creates a grid of `blocks_x × blocks_y` square blocks of side
    /// `block_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `block_m` is not positive/finite.
    pub fn new(blocks_x: u32, blocks_y: u32, block_m: f64) -> Self {
        assert!(blocks_x > 0 && blocks_y > 0, "grid must have blocks");
        assert!(
            block_m > 0.0 && block_m.is_finite(),
            "block size must be positive and finite"
        );
        GridPlan {
            blocks_x,
            blocks_y,
            block_m,
        }
    }

    /// Block side length in meters.
    pub fn block_m(&self) -> f64 {
        self.block_m
    }

    /// Total width (x extent) in meters.
    pub fn width_m(&self) -> f64 {
        f64::from(self.blocks_x) * self.block_m
    }

    /// Total height (y extent) in meters.
    pub fn height_m(&self) -> f64 {
        f64::from(self.blocks_y) * self.block_m
    }

    /// Number of intersections, `(blocks_x + 1) · (blocks_y + 1)`.
    pub fn intersection_count(&self) -> u32 {
        (self.blocks_x + 1) * (self.blocks_y + 1)
    }

    /// Iterates all intersections, row-major.
    pub fn intersections(&self) -> impl Iterator<Item = IntersectionId> + '_ {
        let cols = self.blocks_x + 1;
        let rows = self.blocks_y + 1;
        (0..rows).flat_map(move |row| (0..cols).map(move |col| IntersectionId { col, row }))
    }

    /// The position of an intersection (RSU site), if it exists.
    pub fn intersection_position(&self, id: IntersectionId) -> Option<Position> {
        (id.col <= self.blocks_x && id.row <= self.blocks_y).then(|| {
            Position::new(
                f64::from(id.col) * self.block_m,
                f64::from(id.row) * self.block_m,
            )
        })
    }

    /// The intersection whose RSU is nearest to `pos` (ties broken toward
    /// lower indices). This is the urban analogue of
    /// [`ClusterPlan::cluster_of`](crate::ClusterPlan::cluster_of): every
    /// street position belongs to the nearest intersection's cell.
    pub fn nearest_intersection(&self, pos: Position) -> IntersectionId {
        let col = (pos.x / self.block_m)
            .round()
            .clamp(0.0, f64::from(self.blocks_x)) as u32;
        let row = (pos.y / self.block_m)
            .round()
            .clamp(0.0, f64::from(self.blocks_y)) as u32;
        IntersectionId { col, row }
    }

    /// The four (or fewer, at edges) neighboring intersections.
    pub fn neighbors(&self, id: IntersectionId) -> Vec<IntersectionId> {
        let mut out = Vec::with_capacity(4);
        if id.col > 0 {
            out.push(IntersectionId {
                col: id.col - 1,
                row: id.row,
            });
        }
        if id.col < self.blocks_x {
            out.push(IntersectionId {
                col: id.col + 1,
                row: id.row,
            });
        }
        if id.row > 0 {
            out.push(IntersectionId {
                col: id.col,
                row: id.row - 1,
            });
        }
        if id.row < self.blocks_y {
            out.push(IntersectionId {
                col: id.col,
                row: id.row + 1,
            });
        }
        out
    }

    /// True if `pos` lies on a street (within `tolerance_m` of a grid
    /// line) inside the grid bounds.
    pub fn on_street(&self, pos: Position, tolerance_m: f64) -> bool {
        if pos.x < -tolerance_m
            || pos.y < -tolerance_m
            || pos.x > self.width_m() + tolerance_m
            || pos.y > self.height_m() + tolerance_m
        {
            return false;
        }
        let fx = (pos.x / self.block_m).fract().abs();
        let fy = (pos.y / self.block_m).fract().abs();
        let near = |f: f64| {
            let d = f.min(1.0 - f) * self.block_m;
            d <= tolerance_m
        };
        near(fx) || near(fy)
    }

    /// Manhattan route (sequence of intersections) from `from` to `to`:
    /// first along the x streets, then along y. The simplest shortest path
    /// on the grid; used by [`GridTrajectory::through`].
    pub fn route(&self, from: IntersectionId, to: IntersectionId) -> Vec<IntersectionId> {
        let mut path = vec![from];
        let mut cur = from;
        while cur.col != to.col {
            cur.col = if to.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            path.push(cur);
        }
        while cur.row != to.row {
            cur.row = if to.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            path.push(cur);
        }
        path
    }
}

/// A piecewise-linear constant-speed path through grid intersections.
///
/// The urban counterpart of the highway
/// [`Trajectory`](crate::Trajectory): position is a pure function of time.
///
/// # Examples
///
/// ```
/// use blackdp_mobility::{GridPlan, GridTrajectory, IntersectionId, Kmh};
/// use blackdp_sim::Time;
///
/// let grid = GridPlan::new(2, 2, 100.0);
/// let t = GridTrajectory::through(
///     &grid,
///     IntersectionId { col: 0, row: 0 },
///     IntersectionId { col: 2, row: 1 },
///     Kmh(36.0), // 10 m/s
///     Time::ZERO,
/// );
/// // After 10 s it has covered 100 m: at the first intersection.
/// let p = t.position_at(Time::from_secs(10));
/// assert!((p.x - 100.0).abs() < 1e-9 && p.y.abs() < 1e-9);
/// // The full 300 m path completes after 30 s and the vehicle parks there.
/// assert!(t.completed(Time::from_secs(31)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridTrajectory {
    waypoints: Vec<Position>,
    speed_mps: f64,
    started_at: Time,
    /// Cumulative distance at each waypoint.
    cumulative_m: Vec<f64>,
}

impl GridTrajectory {
    /// Builds the Manhattan route between two intersections and follows it
    /// at `speed`.
    ///
    /// # Panics
    ///
    /// Panics if either intersection is outside the grid, or the speed is
    /// not positive/finite.
    pub fn through(
        grid: &GridPlan,
        from: IntersectionId,
        to: IntersectionId,
        speed: Kmh,
        started_at: Time,
    ) -> Self {
        assert!(
            speed.0 > 0.0 && speed.0.is_finite(),
            "speed must be positive and finite"
        );
        let waypoints: Vec<Position> = grid
            .route(from, to)
            .into_iter()
            .map(|i| {
                grid.intersection_position(i)
                    .expect("route stays inside the grid")
            })
            .collect();
        let mut cumulative_m = Vec::with_capacity(waypoints.len());
        let mut acc = 0.0;
        for (i, w) in waypoints.iter().enumerate() {
            if i > 0 {
                acc += waypoints[i - 1].distance_to(*w);
            }
            cumulative_m.push(acc);
        }
        GridTrajectory {
            waypoints,
            speed_mps: speed.as_mps(),
            started_at,
            cumulative_m,
        }
    }

    /// Total path length in meters.
    pub fn length_m(&self) -> f64 {
        self.cumulative_m.last().copied().unwrap_or(0.0)
    }

    /// The position at `now`; parks at the final waypoint after arrival.
    pub fn position_at(&self, now: Time) -> Position {
        let dist = now.saturating_since(self.started_at).as_secs_f64() * self.speed_mps;
        let total = self.length_m();
        if dist >= total {
            return *self.waypoints.last().expect("route is never empty");
        }
        // Find the active segment.
        let seg = self
            .cumulative_m
            .windows(2)
            .position(|w| dist < w[1])
            .unwrap_or(self.waypoints.len().saturating_sub(2));
        let seg_start = self.cumulative_m[seg];
        let seg_len = (self.cumulative_m[seg + 1] - seg_start).max(f64::EPSILON);
        let frac = (dist - seg_start) / seg_len;
        let a = self.waypoints[seg];
        let b = self.waypoints[seg + 1];
        Position::new(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac)
    }

    /// True once the vehicle has reached its final waypoint.
    pub fn completed(&self, now: Time) -> bool {
        now.saturating_since(self.started_at).as_secs_f64() * self.speed_mps >= self.length_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(col: u32, row: u32) -> IntersectionId {
        IntersectionId { col, row }
    }

    #[test]
    fn geometry_basics() {
        let g = GridPlan::new(4, 3, 250.0);
        assert_eq!(g.width_m(), 1000.0);
        assert_eq!(g.height_m(), 750.0);
        assert_eq!(g.intersection_count(), 5 * 4);
        assert_eq!(g.intersections().count(), 20);
        assert_eq!(
            g.intersection_position(id(4, 3)),
            Some(Position::new(1000.0, 750.0))
        );
        assert_eq!(g.intersection_position(id(5, 0)), None);
    }

    #[test]
    fn nearest_intersection_partitions_the_plane() {
        let g = GridPlan::new(2, 2, 100.0);
        assert_eq!(g.nearest_intersection(Position::new(0.0, 0.0)), id(0, 0));
        assert_eq!(g.nearest_intersection(Position::new(49.0, 0.0)), id(0, 0));
        assert_eq!(g.nearest_intersection(Position::new(51.0, 0.0)), id(1, 0));
        // Outside positions clamp to the boundary lattice.
        assert_eq!(
            g.nearest_intersection(Position::new(-500.0, 9999.0)),
            id(0, 2)
        );
    }

    #[test]
    fn neighbors_respect_edges() {
        let g = GridPlan::new(2, 2, 100.0);
        assert_eq!(g.neighbors(id(0, 0)).len(), 2);
        assert_eq!(g.neighbors(id(1, 0)).len(), 3);
        assert_eq!(g.neighbors(id(1, 1)).len(), 4);
    }

    #[test]
    fn streets_cover_grid_lines_only() {
        let g = GridPlan::new(2, 2, 100.0);
        assert!(g.on_street(Position::new(50.0, 0.0), 5.0)); // on a row street
        assert!(g.on_street(Position::new(100.0, 37.0), 5.0)); // on a column street
        assert!(!g.on_street(Position::new(50.0, 50.0), 5.0)); // mid-block
        assert!(!g.on_street(Position::new(500.0, 0.0), 5.0)); // outside
    }

    #[test]
    fn manhattan_route_lengths() {
        let g = GridPlan::new(3, 3, 100.0);
        let r = g.route(id(0, 0), id(2, 3));
        assert_eq!(r.len(), 6, "2 east + 3 north + start");
        assert_eq!(r.first(), Some(&id(0, 0)));
        assert_eq!(r.last(), Some(&id(2, 3)));
        // Each step moves exactly one lattice hop.
        for w in r.windows(2) {
            let d = w[0].col.abs_diff(w[1].col) + w[0].row.abs_diff(w[1].row);
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn trajectory_follows_streets_with_a_turn() {
        let g = GridPlan::new(2, 2, 100.0);
        let t = GridTrajectory::through(&g, id(0, 0), id(1, 1), Kmh(36.0), Time::ZERO);
        assert_eq!(t.length_m(), 200.0);
        // 5 s @ 10 m/s: halfway along the first (eastbound) street.
        let p = t.position_at(Time::from_secs(5));
        assert!((p.x - 50.0).abs() < 1e-9 && p.y.abs() < 1e-9);
        // 15 s: turned north, halfway up.
        let p = t.position_at(Time::from_secs(15));
        assert!((p.x - 100.0).abs() < 1e-9 && (p.y - 50.0).abs() < 1e-9);
        // On-street at every sampled instant.
        for s in 0..=20 {
            assert!(
                g.on_street(t.position_at(Time::from_secs(s)), 0.5),
                "left the street at t={s}s"
            );
        }
        assert!(t.completed(Time::from_secs(20)));
        assert_eq!(
            t.position_at(Time::from_secs(99)),
            Position::new(100.0, 100.0)
        );
    }

    #[test]
    fn degenerate_route_stays_put() {
        let g = GridPlan::new(2, 2, 100.0);
        let t = GridTrajectory::through(&g, id(1, 1), id(1, 1), Kmh(50.0), Time::ZERO);
        assert_eq!(t.length_m(), 0.0);
        assert!(t.completed(Time::ZERO));
        assert_eq!(
            t.position_at(Time::from_secs(5)),
            Position::new(100.0, 100.0)
        );
    }

    #[test]
    #[should_panic(expected = "grid must have blocks")]
    fn rejects_empty_grid() {
        let _ = GridPlan::new(0, 2, 100.0);
    }
}
