//! Random vehicle placement matching the paper's setup ("the vehicles are
//! randomly distributed within the clusters", speeds 50–90 km/h).

use blackdp_sim::{Position, Time};
use rand::RngExt;

use crate::cluster::{ClusterId, ClusterPlan};
use crate::highway::{Direction, Kmh, Trajectory};

/// Parameters for random vehicle spawning.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnConfig {
    /// Minimum cruise speed (Table I: 50 km/h).
    pub min_speed: Kmh,
    /// Maximum cruise speed (Table I: 90 km/h).
    pub max_speed: Kmh,
}

impl Default for SpawnConfig {
    fn default() -> Self {
        SpawnConfig {
            min_speed: Kmh(50.0),
            max_speed: Kmh(90.0),
        }
    }
}

impl SpawnConfig {
    /// Draws a cruise speed uniformly from the configured interval.
    ///
    /// # Panics
    ///
    /// Panics if `min_speed > max_speed`.
    pub fn random_speed<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Kmh {
        assert!(
            self.min_speed.0 <= self.max_speed.0,
            "min_speed must not exceed max_speed"
        );
        if self.min_speed == self.max_speed {
            return self.min_speed;
        }
        Kmh(rng.random_range(self.min_speed.0..self.max_speed.0))
    }
}

/// Draws a uniformly random position inside the given cluster's segment.
pub fn random_position_in_cluster<R: rand::Rng + ?Sized>(
    plan: &ClusterPlan,
    cluster: ClusterId,
    rng: &mut R,
) -> Position {
    assert!(
        cluster.0 >= 1 && cluster.0 <= plan.cluster_count(),
        "cluster {cluster} out of range 1..={}",
        plan.cluster_count()
    );
    let seg_start = (cluster.0 as f64 - 1.0) * plan.cluster_len_m();
    let seg_end = (seg_start + plan.cluster_len_m()).min(plan.highway().length_m);
    let x = rng.random_range(seg_start..seg_end);
    let y = rng.random_range(0.0..plan.highway().width_m);
    Position::new(x, y)
}

/// Draws a uniformly random position anywhere on the highway.
pub fn random_position<R: rand::Rng + ?Sized>(plan: &ClusterPlan, rng: &mut R) -> Position {
    let x = rng.random_range(0.0..plan.highway().length_m);
    let y = rng.random_range(0.0..plan.highway().width_m);
    Position::new(x, y)
}

/// Spawns a forward-moving trajectory at a random position in `cluster`
/// with a random Table-I speed.
pub fn random_trajectory_in_cluster<R: rand::Rng + ?Sized>(
    plan: &ClusterPlan,
    cluster: ClusterId,
    cfg: &SpawnConfig,
    spawned_at: Time,
    rng: &mut R,
) -> Trajectory {
    let pos = random_position_in_cluster(plan, cluster, rng);
    Trajectory::new(pos, cfg.random_speed(rng), Direction::Forward, spawned_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn speeds_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SpawnConfig::default();
        for _ in 0..1000 {
            let s = cfg.random_speed(&mut rng);
            assert!((50.0..90.0).contains(&s.0), "speed {s} out of band");
        }
    }

    #[test]
    fn degenerate_speed_band_is_allowed() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SpawnConfig {
            min_speed: Kmh(60.0),
            max_speed: Kmh(60.0),
        };
        assert_eq!(cfg.random_speed(&mut rng), Kmh(60.0));
    }

    #[test]
    fn positions_land_in_requested_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = ClusterPlan::paper_table1();
        for c in plan.clusters() {
            for _ in 0..50 {
                let p = random_position_in_cluster(&plan, c, &mut rng);
                assert_eq!(plan.cluster_of(p), Some(c), "position {p} not in {c}");
                assert!(plan.highway().contains(p));
            }
        }
    }

    #[test]
    fn random_position_covers_highway() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = ClusterPlan::paper_table1();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let p = random_position(&plan, &mut rng);
            assert!(plan.highway().contains(p));
            seen.insert(plan.cluster_of(p).unwrap());
        }
        assert_eq!(seen.len(), 10, "500 draws should hit all 10 clusters");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_cluster() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = ClusterPlan::paper_table1();
        let _ = random_position_in_cluster(&plan, ClusterId(11), &mut rng);
    }
}
