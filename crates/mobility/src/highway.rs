//! Highway geometry and vehicle kinematics.

use blackdp_sim::{Position, Time};

/// Speed expressed in km/h, the unit Table I uses (vehicles: 50–90 km/h).
///
/// # Examples
///
/// ```
/// use blackdp_mobility::Kmh;
///
/// assert!((Kmh(90.0).as_mps() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kmh(pub f64);

impl Kmh {
    /// Converts to meters per second.
    pub fn as_mps(self) -> f64 {
        self.0 / 3.6
    }
}

impl std::fmt::Display for Kmh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}km/h", self.0)
    }
}

/// Travel direction along the highway's `x` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Toward increasing `x` (the direction the paper's source→destination
    /// traffic flows).
    #[default]
    Forward,
    /// Toward decreasing `x`.
    Backward,
}

impl Direction {
    /// The sign of the velocity along `x`.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => 1.0,
            Direction::Backward => -1.0,
        }
    }
}

/// A controlled-access highway segment (Table I: 10 km long, 200 m wide).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Highway {
    /// Length along `x`, in meters.
    pub length_m: f64,
    /// Width along `y`, in meters.
    pub width_m: f64,
}

impl Highway {
    /// The paper's Table I highway: 10 km × 200 m.
    pub fn paper_table1() -> Self {
        Highway {
            length_m: 10_000.0,
            width_m: 200.0,
        }
    }

    /// Creates a highway with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(length_m: f64, width_m: f64) -> Self {
        assert!(
            length_m > 0.0 && length_m.is_finite(),
            "highway length must be positive and finite"
        );
        assert!(
            width_m > 0.0 && width_m.is_finite(),
            "highway width must be positive and finite"
        );
        Highway { length_m, width_m }
    }

    /// Returns true if `pos` lies on the highway surface.
    pub fn contains(&self, pos: Position) -> bool {
        (0.0..=self.length_m).contains(&pos.x) && (0.0..=self.width_m).contains(&pos.y)
    }
}

/// A constant-velocity motion plan along the highway.
///
/// Vehicles in the paper's setup travel at a fixed random speed in
/// 50–90 km/h; position is a pure function of time, which keeps the radio
/// medium exact (no mobility tick quantization).
///
/// # Examples
///
/// ```
/// use blackdp_mobility::{Direction, Kmh, Trajectory};
/// use blackdp_sim::{Position, Time};
///
/// let t = Trajectory::new(Position::new(0.0, 100.0), Kmh(72.0), Direction::Forward, Time::ZERO);
/// let p = t.position_at(Time::from_secs(10));
/// assert!((p.x - 200.0).abs() < 1e-9); // 72 km/h = 20 m/s
/// assert_eq!(p.y, 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trajectory {
    start: Position,
    speed: Kmh,
    direction: Direction,
    spawned_at: Time,
}

impl Trajectory {
    /// Creates a trajectory starting at `start` at time `spawned_at`.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative or non-finite.
    pub fn new(start: Position, speed: Kmh, direction: Direction, spawned_at: Time) -> Self {
        assert!(
            speed.0 >= 0.0 && speed.0.is_finite(),
            "speed must be non-negative and finite"
        );
        Trajectory {
            start,
            speed,
            direction,
            spawned_at,
        }
    }

    /// A trajectory that never moves (RSUs, parked vehicles).
    pub fn stationary(at: Position) -> Self {
        Trajectory::new(at, Kmh(0.0), Direction::Forward, Time::ZERO)
    }

    /// The position at virtual time `now`. Times before the spawn instant
    /// return the start position.
    pub fn position_at(&self, now: Time) -> Position {
        let dt = now.saturating_since(self.spawned_at).as_secs_f64();
        Position::new(
            self.start.x + self.direction.sign() * self.speed.as_mps() * dt,
            self.start.y,
        )
    }

    /// The configured cruise speed.
    pub fn speed(&self) -> Kmh {
        self.speed
    }

    /// The travel direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Returns true if the vehicle has driven off either end of `highway`
    /// at time `now`.
    pub fn has_exited(&self, highway: &Highway, now: Time) -> bool {
        let x = self.position_at(now).x;
        x < 0.0 || x > highway.length_m
    }

    /// The time at which this trajectory crosses longitudinal coordinate
    /// `x_m`, or `None` if it never does (stationary or moving away).
    pub fn time_reaching_x(&self, x_m: f64) -> Option<Time> {
        let v = self.direction.sign() * self.speed.as_mps();
        let dx = x_m - self.start.x;
        if v == 0.0 {
            return (dx == 0.0).then_some(self.spawned_at);
        }
        let dt = dx / v;
        if dt < 0.0 {
            return None;
        }
        Some(self.spawned_at + blackdp_sim::Duration::from_secs_f64(dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_sim::Duration;

    #[test]
    fn kmh_to_mps() {
        assert!((Kmh(50.0).as_mps() - 13.888_888_888).abs() < 1e-6);
        assert!((Kmh(90.0).as_mps() - 25.0).abs() < 1e-12);
        assert_eq!(Kmh(0.0).as_mps(), 0.0);
    }

    #[test]
    fn highway_contains_checks_bounds() {
        let hw = Highway::paper_table1();
        assert!(hw.contains(Position::new(0.0, 0.0)));
        assert!(hw.contains(Position::new(10_000.0, 200.0)));
        assert!(!hw.contains(Position::new(-0.1, 100.0)));
        assert!(!hw.contains(Position::new(10_000.1, 100.0)));
        assert!(!hw.contains(Position::new(5000.0, 201.0)));
    }

    #[test]
    fn forward_motion_advances_x() {
        let t = Trajectory::new(
            Position::new(100.0, 50.0),
            Kmh(36.0), // 10 m/s
            Direction::Forward,
            Time::from_secs(5),
        );
        // Before spawn: stays at start.
        assert_eq!(t.position_at(Time::ZERO), Position::new(100.0, 50.0));
        let p = t.position_at(Time::from_secs(15));
        assert!((p.x - 200.0).abs() < 1e-9);
    }

    #[test]
    fn backward_motion_decreases_x() {
        let t = Trajectory::new(
            Position::new(1000.0, 50.0),
            Kmh(36.0),
            Direction::Backward,
            Time::ZERO,
        );
        let p = t.position_at(Time::from_secs(10));
        assert!((p.x - 900.0).abs() < 1e-9);
    }

    #[test]
    fn exit_detection() {
        let hw = Highway::paper_table1();
        let t = Trajectory::new(
            Position::new(9_990.0, 50.0),
            Kmh(36.0),
            Direction::Forward,
            Time::ZERO,
        );
        assert!(!t.has_exited(&hw, Time::ZERO));
        assert!(t.has_exited(&hw, Time::from_secs(2)));
    }

    #[test]
    fn stationary_never_exits() {
        let hw = Highway::paper_table1();
        let t = Trajectory::stationary(Position::new(500.0, 100.0));
        assert!(!t.has_exited(&hw, Time::from_secs(1_000_000)));
        assert_eq!(
            t.position_at(Time::from_secs(99)),
            Position::new(500.0, 100.0)
        );
    }

    #[test]
    fn time_reaching_x_forward() {
        let t = Trajectory::new(
            Position::new(0.0, 0.0),
            Kmh(36.0), // 10 m/s
            Direction::Forward,
            Time::from_secs(100),
        );
        let reach = t.time_reaching_x(500.0).expect("reaches x=500");
        assert_eq!(reach, Time::from_secs(100) + Duration::from_secs(50));
        assert!(t.time_reaching_x(-1.0).is_none(), "behind the start");
    }

    #[test]
    fn time_reaching_x_stationary() {
        let t = Trajectory::stationary(Position::new(5.0, 0.0));
        assert_eq!(t.time_reaching_x(5.0), Some(Time::ZERO));
        assert_eq!(t.time_reaching_x(6.0), None);
    }

    #[test]
    #[should_panic(expected = "speed must be non-negative")]
    fn rejects_negative_speed() {
        let _ = Trajectory::new(Position::ORIGIN, Kmh(-5.0), Direction::Forward, Time::ZERO);
    }
}
