//! Static cluster planning: RSU placement and membership zones.
//!
//! The paper divides the highway into equal-size static clusters with one
//! RSU (the cluster head) stationed centrally in each: *"if we have a
//! highway of length l, then the least number of CHs required to cover the
//! entire highway is p = l / r"* (Section III-A). A vehicle joins a cluster
//! from a *single zone* (only one RSU in range) or an *overlapped zone*
//! (several RSUs in range, requiring a JREQ broadcast).

use blackdp_sim::Position;

use crate::highway::Highway;

/// Identifies one cluster (and its RSU / cluster head). Clusters are
/// numbered from 1 along the highway, matching the paper's figures
/// ("cluster 1" through "cluster 10").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The join-zone classification of a position (Section III-A, Figure 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinZone {
    /// Exactly one RSU is in radio range: unicast JREQ to it.
    Single(ClusterId),
    /// Multiple RSUs are in range: broadcast the JREQ and let the correct
    /// CH claim the vehicle.
    Overlapped(Vec<ClusterId>),
    /// No RSU in range (off the instrumented stretch).
    Uncovered,
}

/// The static layout of clusters and RSUs over a highway.
///
/// # Examples
///
/// ```
/// use blackdp_mobility::{ClusterPlan, Highway};
/// use blackdp_sim::Position;
///
/// let plan = ClusterPlan::paper_table1();
/// assert_eq!(plan.cluster_count(), 10);
/// // RSU of cluster 1 sits at the segment center.
/// assert_eq!(plan.rsu_position(blackdp_mobility::ClusterId(1)).unwrap().x, 500.0);
/// // 4.2 km into the highway is cluster 5.
/// assert_eq!(plan.cluster_of(Position::new(4_200.0, 0.0)), Some(blackdp_mobility::ClusterId(5)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    highway: Highway,
    cluster_len_m: f64,
    count: u32,
    /// Lateral RSU placement (center of the median by default).
    rsu_y_m: f64,
}

impl ClusterPlan {
    /// The paper's Table I plan: 10 clusters of 1000 m over a 10 km highway.
    pub fn paper_table1() -> Self {
        ClusterPlan::new(Highway::paper_table1(), 1000.0)
    }

    /// Divides `highway` into equal clusters of `cluster_len_m` meters.
    ///
    /// The number of clusters is `ceil(length / cluster_len)` — the paper's
    /// `p = l / r` for evenly dividing lengths.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_len_m` is not strictly positive and finite.
    pub fn new(highway: Highway, cluster_len_m: f64) -> Self {
        assert!(
            cluster_len_m > 0.0 && cluster_len_m.is_finite(),
            "cluster length must be positive and finite"
        );
        let count = (highway.length_m / cluster_len_m).ceil() as u32;
        let rsu_y_m = highway.width_m / 2.0;
        ClusterPlan {
            highway,
            cluster_len_m,
            count,
            rsu_y_m,
        }
    }

    /// The underlying highway.
    pub fn highway(&self) -> &Highway {
        &self.highway
    }

    /// Length of each cluster segment, in meters.
    pub fn cluster_len_m(&self) -> f64 {
        self.cluster_len_m
    }

    /// Total number of clusters (`p` in the paper).
    pub fn cluster_count(&self) -> u32 {
        self.count
    }

    /// Iterates all cluster ids, `c1 ..= c<count>`.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        (1..=self.count).map(ClusterId)
    }

    /// The RSU (cluster head) position for `cluster`: centered in its
    /// segment, on the highway median.
    pub fn rsu_position(&self, cluster: ClusterId) -> Option<Position> {
        if cluster.0 == 0 || cluster.0 > self.count {
            return None;
        }
        let center_x = (cluster.0 as f64 - 0.5) * self.cluster_len_m;
        Some(Position::new(
            center_x.min(self.highway.length_m),
            self.rsu_y_m,
        ))
    }

    /// The cluster whose segment contains `pos`, or `None` when off the
    /// highway stretch.
    pub fn cluster_of(&self, pos: Position) -> Option<ClusterId> {
        if pos.x < 0.0 || pos.x > self.highway.length_m {
            return None;
        }
        let idx = (pos.x / self.cluster_len_m).floor() as u32;
        Some(ClusterId(idx.min(self.count - 1) + 1))
    }

    /// All clusters whose RSU is within `range_m` of `pos`.
    pub fn rsus_in_range(&self, pos: Position, range_m: f64) -> Vec<ClusterId> {
        self.clusters()
            .filter(|&c| {
                self.rsu_position(c)
                    .map(|p| p.within_range(pos, range_m))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Classifies `pos` as a single, overlapped, or uncovered join zone for
    /// the given radio range.
    pub fn join_zone(&self, pos: Position, range_m: f64) -> JoinZone {
        let mut in_range = self.rsus_in_range(pos, range_m);
        match in_range.len() {
            0 => JoinZone::Uncovered,
            1 => JoinZone::Single(in_range.remove(0)),
            _ => JoinZone::Overlapped(in_range),
        }
    }

    /// Whether two clusters are adjacent segments.
    pub fn are_adjacent(&self, a: ClusterId, b: ClusterId) -> bool {
        a.0.abs_diff(b.0) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_has_ten_clusters() {
        let plan = ClusterPlan::paper_table1();
        assert_eq!(plan.cluster_count(), 10);
        assert_eq!(plan.clusters().count(), 10);
        assert_eq!(plan.cluster_len_m(), 1000.0);
    }

    #[test]
    fn rsus_are_centered_per_segment() {
        let plan = ClusterPlan::paper_table1();
        for (i, c) in plan.clusters().enumerate() {
            let p = plan.rsu_position(c).unwrap();
            assert_eq!(p.x, (i as f64) * 1000.0 + 500.0);
            assert_eq!(p.y, 100.0); // median of the 200 m width
        }
        assert_eq!(plan.rsu_position(ClusterId(0)), None);
        assert_eq!(plan.rsu_position(ClusterId(11)), None);
    }

    #[test]
    fn cluster_of_maps_segments() {
        let plan = ClusterPlan::paper_table1();
        assert_eq!(plan.cluster_of(Position::new(0.0, 0.0)), Some(ClusterId(1)));
        assert_eq!(
            plan.cluster_of(Position::new(999.9, 0.0)),
            Some(ClusterId(1))
        );
        assert_eq!(
            plan.cluster_of(Position::new(1000.0, 0.0)),
            Some(ClusterId(2))
        );
        assert_eq!(
            plan.cluster_of(Position::new(9_999.0, 0.0)),
            Some(ClusterId(10))
        );
        // The far boundary belongs to the last cluster.
        assert_eq!(
            plan.cluster_of(Position::new(10_000.0, 0.0)),
            Some(ClusterId(10))
        );
        assert_eq!(plan.cluster_of(Position::new(-1.0, 0.0)), None);
        assert_eq!(plan.cluster_of(Position::new(10_000.1, 0.0)), None);
    }

    #[test]
    fn join_zones_with_dsrc_range() {
        let plan = ClusterPlan::paper_table1();
        // With a 1000 m range and RSUs every 1000 m, a vehicle at an RSU's
        // x sees its own RSU plus both neighbors at 1000 m exactly.
        let at_rsu5 = Position::new(4_500.0, 100.0);
        match plan.join_zone(at_rsu5, 1000.0) {
            JoinZone::Overlapped(ids) => {
                assert_eq!(ids, vec![ClusterId(4), ClusterId(5), ClusterId(6)]);
            }
            other => panic!("expected overlapped zone, got {other:?}"),
        }
        // A shorter range creates single zones near RSUs.
        match plan.join_zone(at_rsu5, 400.0) {
            JoinZone::Single(id) => assert_eq!(id, ClusterId(5)),
            other => panic!("expected single zone, got {other:?}"),
        }
        // Off the instrumented stretch.
        assert_eq!(
            plan.join_zone(Position::new(-5_000.0, 0.0), 400.0),
            JoinZone::Uncovered
        );
    }

    #[test]
    fn boundary_positions_are_overlapped_for_midsize_range() {
        let plan = ClusterPlan::paper_table1();
        // At a segment boundary with 600 m range, both adjacent RSUs
        // (each 500 m away) are in range.
        match plan.join_zone(Position::new(1_000.0, 100.0), 600.0) {
            JoinZone::Overlapped(ids) => assert_eq!(ids, vec![ClusterId(1), ClusterId(2)]),
            other => panic!("expected overlapped zone, got {other:?}"),
        }
    }

    #[test]
    fn adjacency() {
        let plan = ClusterPlan::paper_table1();
        assert!(plan.are_adjacent(ClusterId(3), ClusterId(4)));
        assert!(plan.are_adjacent(ClusterId(4), ClusterId(3)));
        assert!(!plan.are_adjacent(ClusterId(3), ClusterId(5)));
        assert!(!plan.are_adjacent(ClusterId(3), ClusterId(3)));
    }

    #[test]
    fn non_divisible_length_rounds_cluster_count_up() {
        let plan = ClusterPlan::new(Highway::new(10_500.0, 200.0), 1000.0);
        assert_eq!(plan.cluster_count(), 11);
        // Positions in the stub segment map to the last cluster.
        assert_eq!(
            plan.cluster_of(Position::new(10_400.0, 0.0)),
            Some(ClusterId(11))
        );
    }
}
