//! Named counters collected during a simulation run.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit, as a [`Hasher`] for short string keys.
///
/// Counter keys are short (`radio.rx`, `vrx.hello`, ...) and hit on every
/// simulation event, so the hash must be cheap and dependency-free. FNV-1a
/// beats SipHash by an order of magnitude at these lengths, and the engine
/// never hashes attacker-controlled keys, so HashDoS resistance is not
/// needed.
#[derive(Debug)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvState = BuildHasherDefault<FnvHasher>;

/// A bag of monotonically increasing named counters.
///
/// The engine increments radio bookkeeping counters (`radio.tx`,
/// `radio.rx`, `radio.drop.range`, `radio.drop.loss`, `wired.tx`); protocol
/// code is free to add its own via [`Context::count`](crate::Context::count).
/// Dumps, digests, and iteration are key-ordered, so they stay
/// deterministic; storage is an FNV hash map because counter bumps sit on
/// the per-event hot path.
///
/// Fault injection (see [`FaultPlan`](crate::FaultPlan)) reports under the
/// `fault.*` namespace:
///
/// * `fault.crash` / `fault.restart` — crash and restart edges applied.
/// * `fault.drop.crashed` — packets that arrived at a crashed node.
/// * `fault.drop.timer` — timers forgotten because they were armed before
///   the node's most recent crash.
/// * `fault.drop.wired_outage` — wired sends severed by an outage window.
/// * `fault.drop.radio_burst` — radio deliveries lost to a burst window's
///   extra loss (on top of `radio.drop.loss`).
/// * `fault.tamper` — payloads mutated by the tamper hook.
///
/// # Examples
///
/// ```
/// use blackdp_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.incr("detection.dreq");
/// stats.add("detection.dreq", 2);
/// assert_eq!(stats.get("detection.dreq"), 3);
/// assert_eq!(stats.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: HashMap<String, u64, FnvState>,
}

impl Stats {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Increments `key` by `n`.
    ///
    /// Steady-state bumps of an existing key are allocation-free; only
    /// the first touch of a key copies it in.
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += n;
        } else {
            self.counters.insert(key.to_owned(), n);
        }
    }

    /// Returns the current value of `key` (zero if never incremented).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sorted().into_iter()
    }

    /// Returns the number of distinct keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns true if no counter was ever incremented.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Sums every counter whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Every `(key, value)` pair, sorted by key.
    fn sorted(&self) -> Vec<(&str, u64)> {
        let mut pairs: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// FNV-1a 64-bit digest over every `key=value` pair in key order.
    ///
    /// Because the fold is key-ordered and counters only ever grow, two
    /// runs with the same digest at the same virtual time have counted
    /// exactly the same things — checkpoint witnesses use this as a cheap
    /// whole-engine equality check.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (k, v) in self.sorted() {
            eat(k.as_bytes());
            eat(b"=");
            eat(&v.to_le_bytes());
            eat(b"\n");
        }
        h
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no counters)");
        }
        for (k, v) in self.sorted() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("a");
        s.incr("a");
        s.add("b", 5);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.get("c"), 0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut s = Stats::new();
        s.incr("z");
        s.incr("a");
        s.incr("m");
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn sum_prefix_groups_counters() {
        let mut s = Stats::new();
        s.add("radio.tx", 3);
        s.add("radio.rx", 2);
        s.add("radiometer", 100); // shares a prefix string but not the dot
        s.add("wired.tx", 9);
        assert_eq!(s.sum_prefix("radio."), 5);
        assert_eq!(s.sum_prefix("radio"), 105);
        assert_eq!(s.sum_prefix("nothing"), 0);
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let mut a = Stats::new();
        a.add("x", 3);
        a.incr("y");
        let mut b = Stats::new();
        b.incr("y");
        b.incr("x");
        b.add("x", 2);
        assert_eq!(a.digest(), b.digest(), "same counters, same digest");
        b.incr("x");
        assert_ne!(a.digest(), b.digest(), "changed counter, changed digest");
        assert_eq!(Stats::new().digest(), Stats::new().digest());
    }

    #[test]
    fn fnv_hasher_matches_reference_vectors() {
        // FNV-1a test vectors (64-bit): "" → offset basis, "a", "foobar".
        let hash = |bytes: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(hash(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn display_never_empty() {
        let s = Stats::new();
        assert_eq!(s.to_string(), "(no counters)");
    }
}
