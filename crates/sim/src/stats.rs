//! Named counters collected during a simulation run.

use std::collections::BTreeMap;
use std::fmt;

/// A bag of monotonically increasing named counters.
///
/// The engine increments radio bookkeeping counters (`radio.tx`,
/// `radio.rx`, `radio.drop.range`, `radio.drop.loss`, `wired.tx`); protocol
/// code is free to add its own via [`Context::count`](crate::Context::count).
/// Keys are ordered, so dumps are deterministic.
///
/// Fault injection (see [`FaultPlan`](crate::FaultPlan)) reports under the
/// `fault.*` namespace:
///
/// * `fault.crash` / `fault.restart` — crash and restart edges applied.
/// * `fault.drop.crashed` — packets that arrived at a crashed node.
/// * `fault.drop.timer` — timers forgotten because they were armed before
///   the node's most recent crash.
/// * `fault.drop.wired_outage` — wired sends severed by an outage window.
/// * `fault.drop.radio_burst` — radio deliveries lost to a burst window's
///   extra loss (on top of `radio.drop.loss`).
/// * `fault.tamper` — payloads mutated by the tamper hook.
///
/// # Examples
///
/// ```
/// use blackdp_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.incr("detection.dreq");
/// stats.add("detection.dreq", 2);
/// assert_eq!(stats.get("detection.dreq"), 3);
/// assert_eq!(stats.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Increments `key` by `n`.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Returns the current value of `key` (zero if never incremented).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Returns the number of distinct keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns true if no counter was ever incremented.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Sums every counter whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// FNV-1a 64-bit digest over every `key=value` pair in key order.
    ///
    /// Because keys are ordered and counters only ever grow, two runs with
    /// the same digest at the same virtual time have counted exactly the
    /// same things — checkpoint witnesses use this as a cheap whole-engine
    /// equality check.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (k, v) in &self.counters {
            eat(k.as_bytes());
            eat(b"=");
            eat(&v.to_le_bytes());
            eat(b"\n");
        }
        h
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no counters)");
        }
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("a");
        s.incr("a");
        s.add("b", 5);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.get("c"), 0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut s = Stats::new();
        s.incr("z");
        s.incr("a");
        s.incr("m");
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn sum_prefix_groups_counters() {
        let mut s = Stats::new();
        s.add("radio.tx", 3);
        s.add("radio.rx", 2);
        s.add("radiometer", 100); // shares a prefix string but not the dot
        s.add("wired.tx", 9);
        assert_eq!(s.sum_prefix("radio."), 5);
        assert_eq!(s.sum_prefix("radio"), 105);
        assert_eq!(s.sum_prefix("nothing"), 0);
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let mut a = Stats::new();
        a.add("x", 3);
        a.incr("y");
        let mut b = Stats::new();
        b.incr("y");
        b.incr("x");
        b.add("x", 2);
        assert_eq!(a.digest(), b.digest(), "same counters, same digest");
        b.incr("x");
        assert_ne!(a.digest(), b.digest(), "changed counter, changed digest");
        assert_eq!(Stats::new().digest(), Stats::new().digest());
    }

    #[test]
    fn display_never_empty() {
        let s = Stats::new();
        assert_eq!(s.to_string(), "(no counters)");
    }
}
