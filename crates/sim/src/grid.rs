//! Spatial hash grid backing the radio medium's neighbor queries.
//!
//! Broadcasts used to scan every node in the world — O(N) per transmission,
//! O(N²) per beacon interval at highway densities. The grid hashes node
//! positions into square cells whose side equals the radio range, so any
//! receiver within range of a sender lies in the sender's cell or one of the
//! eight surrounding cells: a query inspects at most 9 buckets instead of
//! the whole population.
//!
//! The grid is rebuilt lazily, at most once per (virtual-timestamp, node
//! count) pair, exploiting the engine invariant that node trajectories are
//! pure functions of time — a position evaluated once per tick is exact for
//! the whole tick. Bucket vectors and the position cache are retained
//! across rebuilds so the steady-state hot path performs no allocation.
//!
//! Results are **bit-identical** to the brute-force scan: the inclusive
//! range check uses the same `distance <= range` comparison on the same
//! `f64` inputs, and candidates are emitted in ascending id order — the
//! order the linear scan produced — preserving the world's RNG draw order.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::Position;

/// FxHash-style multiplicative hasher for cell coordinates.
///
/// Bucket lookups sit on the per-broadcast hot path (up to 9 per query);
/// SipHash's keyed rounds cost more than the rest of the query combined.
/// Cell keys are small structured integers with no DoS surface — the grid
/// is rebuilt from simulation state, not attacker input — so a two-multiply
/// hash is safe and much faster.
#[derive(Default)]
pub(crate) struct CellHasher(u64);

impl CellHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for CellHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type CellMap = HashMap<(i64, i64), Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Incrementally reusable spatial hash over node positions.
///
/// Cell side length equals the query range (the radio range), so a 3×3
/// neighborhood around the query cell is guaranteed to cover the inclusive
/// disk of that radius: `|dx| <= r` implies the cell-coordinate delta along
/// each axis is at most 1.
pub(crate) struct SpatialGrid {
    cell_size: f64,
    /// Cell coordinates → node indices in that cell. Bucket vectors are
    /// cleared, not dropped, on rebuild, so their capacity is retained.
    buckets: CellMap,
    /// Position cache indexed by node slot index; entries for nodes absent
    /// from the grid (inactive at rebuild time) are placeholders and are
    /// never read, because queries only yield indices present in buckets.
    positions: Vec<Position>,
    /// Bounding box of occupied cells, `(min, max)` inclusive; lets queries
    /// skip lookups for rows/columns no node occupies (highway worlds are
    /// one cell tall, so this drops 6 of the 9 neighborhood lookups).
    bounds: Option<((i64, i64), (i64, i64))>,
    /// Per-query distance staging, indexed by node slot; only entries whose
    /// bit is set in `cand_mask` are ever read.
    cand_dist: Vec<f64>,
    /// Per-query candidate bitmask (one bit per slot). Scanning its words
    /// low-to-high with `trailing_zeros` emits candidates in ascending
    /// index order without a sort. Invariant: all-zero between queries.
    cand_mask: Vec<u64>,
}

/// The grid cell containing `p` for the given cell side length. Shared
/// with the sharded backend so band geometry and the serial grid agree on
/// cell boundaries.
#[inline]
pub(crate) fn cell_of(cell_size: f64, p: Position) -> (i64, i64) {
    ((p.x / cell_size).floor() as i64, (p.y / cell_size).floor() as i64)
}

impl SpatialGrid {
    pub(crate) fn new() -> Self {
        SpatialGrid {
            cell_size: 1.0,
            buckets: CellMap::default(),
            positions: Vec::new(),
            bounds: None,
            cand_dist: Vec::new(),
            cand_mask: Vec::new(),
        }
    }

    /// Rebuilds the grid from `(index, position)` pairs of the nodes that
    /// should be queryable (the active set). `slots` is the total slot
    /// count, bounding the indices that may appear.
    pub(crate) fn rebuild(
        &mut self,
        cell_size: f64,
        slots: usize,
        nodes: impl Iterator<Item = (u32, Position)>,
    ) {
        debug_assert!(cell_size > 0.0 && cell_size.is_finite());
        self.cell_size = cell_size;
        for bucket in self.buckets.values_mut() {
            bucket.clear();
        }
        self.positions.clear();
        self.positions.resize(slots, Position::ORIGIN);
        self.cand_dist.resize(slots, 0.0);
        self.cand_mask.resize(slots.div_ceil(64), 0);
        self.bounds = None;
        for (index, pos) in nodes {
            self.positions[index as usize] = pos;
            let key = cell_of(cell_size, pos);
            self.bounds = Some(match self.bounds {
                None => (key, key),
                Some((lo, hi)) => (
                    (lo.0.min(key.0), lo.1.min(key.1)),
                    (hi.0.max(key.0), hi.1.max(key.1)),
                ),
            });
            self.buckets.entry(key).or_default().push(index);
        }
    }

    /// Appends every node within `range` meters of `center` (inclusive,
    /// matching [`Position::within_range`]) to `out` as
    /// `(index, distance)` pairs in **ascending index order**, skipping
    /// `exclude`.
    ///
    /// In-range candidates are recorded in a slot-indexed bitmask whose
    /// words are then scanned low-to-high, so the output comes out in
    /// exactly the order the brute-force linear scan yields — which is what
    /// keeps RNG draw order identical — without a comparison sort.
    pub(crate) fn query_into(
        &mut self,
        center: Position,
        range: f64,
        exclude: u32,
        out: &mut Vec<(u32, f64)>,
    ) {
        debug_assert!(
            range <= self.cell_size,
            "query range exceeds cell size: 3x3 neighborhood would miss nodes"
        );
        let Some((lo, hi)) = self.bounds else {
            return;
        };
        let (cx, cy) = cell_of(self.cell_size, center);
        let (x0, x1) = ((cx - 1).max(lo.0), (cx + 1).min(hi.0));
        let (y0, y1) = ((cy - 1).max(lo.1), (cy + 1).min(hi.1));
        let SpatialGrid {
            buckets,
            positions,
            cand_dist,
            cand_mask,
            ..
        } = self;
        for x in x0..=x1 {
            for y in y0..=y1 {
                let Some(bucket) = buckets.get(&(x, y)) else {
                    continue;
                };
                for &index in bucket {
                    if index == exclude {
                        continue;
                    }
                    let dist = center.distance_to(positions[index as usize]);
                    if dist <= range {
                        cand_mask[index as usize / 64] |= 1u64 << (index % 64);
                        cand_dist[index as usize] = dist;
                    }
                }
            }
        }
        for (w, word) in cand_mask.iter_mut().enumerate() {
            let mut m = *word;
            *word = 0; // restore the all-zero invariant
            while m != 0 {
                let index = w * 64 + m.trailing_zeros() as usize;
                out.push((index as u32, cand_dist[index]));
                m &= m - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(grid: &mut SpatialGrid, center: Position, range: f64, exclude: u32) -> Vec<u32> {
        let mut out = Vec::new();
        grid.query_into(center, range, exclude, &mut out);
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "query output must be in strictly ascending index order"
        );
        out.into_iter().map(|(i, _)| i).collect()
    }

    #[test]
    fn finds_neighbors_across_cell_boundaries() {
        let mut g = SpatialGrid::new();
        let pts = [
            (0, Position::new(50.0, 50.0)),
            (1, Position::new(150.0, 50.0)),  // adjacent cell, within 100 m? dist=100 inclusive
            (2, Position::new(250.0, 50.0)),  // two cells over, out of range
            (3, Position::new(50.0, 149.0)),  // adjacent cell above, within range
        ];
        g.rebuild(100.0, 4, pts.iter().copied());
        assert_eq!(collect(&mut g, pts[0].1, 100.0, 0), vec![1, 3]);
    }

    #[test]
    fn inclusive_at_exact_range() {
        let mut g = SpatialGrid::new();
        let pts = [(0, Position::ORIGIN), (1, Position::new(100.0, 0.0))];
        g.rebuild(100.0, 2, pts.iter().copied());
        assert_eq!(collect(&mut g, Position::ORIGIN, 100.0, 0), vec![1]);
        assert!(collect(&mut g, Position::ORIGIN, 99.999, 0).is_empty());
    }

    #[test]
    fn handles_negative_coordinates() {
        let mut g = SpatialGrid::new();
        let pts = [(0, Position::new(-5.0, -5.0)), (1, Position::new(5.0, 5.0))];
        g.rebuild(100.0, 2, pts.iter().copied());
        assert_eq!(collect(&mut g, pts[0].1, 100.0, 0), vec![1]);
    }

    #[test]
    fn rebuild_reuses_buckets_and_drops_stale_nodes() {
        let mut g = SpatialGrid::new();
        g.rebuild(100.0, 2, [(0, Position::ORIGIN), (1, Position::new(10.0, 0.0))].into_iter());
        assert_eq!(collect(&mut g, Position::ORIGIN, 100.0, 0), vec![1]);
        // Node 1 gone after rebuild; node 0 moved far away.
        g.rebuild(100.0, 2, [(0, Position::new(5000.0, 0.0))].into_iter());
        assert!(collect(&mut g, Position::ORIGIN, 100.0, u32::MAX).is_empty());
        assert_eq!(collect(&mut g, Position::new(5000.0, 0.0), 100.0, 1), vec![0]);
    }
}
