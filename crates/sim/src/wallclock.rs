//! Mapping wall-clock time onto virtual [`Time`].
//!
//! The simulator advances `Time` by popping events; a live daemon instead
//! anchors `Time` to a wall-clock epoch: virtual time is the elapsed wall
//! time since the epoch, scaled by an integer factor so a testbed can
//! compress (scale > 1) a multi-minute highway scenario into seconds of real
//! time. All conversions saturate — a hostile or absurd scale can stall the
//! virtual clock at [`Time::MAX`] but can never wrap it backwards.

use std::time::Instant;

use crate::time::Time;

/// A wall-clock anchor translating real elapsed time to virtual [`Time`]
/// and virtual deadlines back to socket-timeout durations.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
    scale: u64,
}

impl WallClock {
    /// Anchors virtual `Time::ZERO` at the current instant. One wall
    /// microsecond advances virtual time by `scale` microseconds; a scale of
    /// 0 is clamped to 1 (real time).
    pub fn new(scale: u64) -> Self {
        WallClock {
            epoch: Instant::now(),
            scale: scale.max(1),
        }
    }

    /// The scale factor in effect.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.at(self.epoch.elapsed())
    }

    /// The virtual time after `elapsed` of wall time — the pure core of
    /// [`WallClock::now`], split out so tests control the clock.
    pub fn at(&self, elapsed: std::time::Duration) -> Time {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        Time::from_micros(micros.saturating_mul(self.scale))
    }

    /// How long to wait on the wall clock until virtual `deadline` — the
    /// socket read timeout for an event loop sleeping until its next timer.
    /// Returns [`std::time::Duration::ZERO`] when the deadline has passed.
    pub fn wall_until(&self, deadline: Time) -> std::time::Duration {
        self.wall_between(self.now(), deadline)
    }

    /// Wall time from virtual `now` to virtual `deadline` (zero if not in
    /// the future) — the testable core of [`WallClock::wall_until`].
    pub fn wall_between(&self, now: Time, deadline: Time) -> std::time::Duration {
        let virtual_gap = deadline.saturating_since(now).as_micros();
        // Round up so we never wake before the deadline and busy-spin.
        let wall_micros = virtual_gap.div_ceil(self.scale);
        std::time::Duration::from_micros(wall_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_elapsed_wall_time() {
        let clock = WallClock::new(10);
        let t = clock.at(std::time::Duration::from_millis(250));
        assert_eq!(t, Time::from_millis(2_500));
    }

    #[test]
    fn scale_zero_is_clamped_to_real_time() {
        let clock = WallClock::new(0);
        assert_eq!(clock.scale(), 1);
        let t = clock.at(std::time::Duration::from_secs(3));
        assert_eq!(t, Time::from_secs(3));
    }

    #[test]
    fn absurd_scale_saturates_instead_of_wrapping() {
        let clock = WallClock::new(u64::MAX);
        let t = clock.at(std::time::Duration::from_secs(10));
        assert_eq!(t, Time::MAX);
    }

    #[test]
    fn wall_between_divides_and_rounds_up() {
        let clock = WallClock::new(10);
        // 1500 virtual micros at 10x -> 150 wall micros.
        let d = clock.wall_between(Time::ZERO, Time::from_micros(1_500));
        assert_eq!(d, std::time::Duration::from_micros(150));
        // 1501 rounds up rather than waking 1 micro early.
        let d = clock.wall_between(Time::ZERO, Time::from_micros(1_501));
        assert_eq!(d, std::time::Duration::from_micros(151));
        // Past deadlines produce a zero wait.
        let d = clock.wall_between(Time::from_secs(5), Time::from_secs(1));
        assert_eq!(d, std::time::Duration::ZERO);
    }

    #[test]
    fn now_is_monotone() {
        let clock = WallClock::new(100);
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
