//! Planar positions used by the radio medium.

use std::fmt;

/// A position on the simulation plane, in meters.
///
/// The coordinate frame is shared with the mobility model: `x` runs along the
/// highway, `y` across it.
///
/// # Examples
///
/// ```
/// use blackdp_sim::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Longitudinal coordinate (meters along the highway).
    pub x: f64,
    /// Lateral coordinate (meters across the highway).
    pub y: f64,
}

impl Position {
    /// The origin of the plane.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns true if `other` is within `range` meters (inclusive).
    pub fn within_range(self, other: Position, range: f64) -> bool {
        self.distance_to(other) <= range
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(-3.0, 7.5);
        let b = Position::new(10.0, -2.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
    }

    #[test]
    fn range_check_is_inclusive() {
        let a = Position::ORIGIN;
        let b = Position::new(1000.0, 0.0);
        assert!(a.within_range(b, 1000.0));
        assert!(!a.within_range(b, 999.999));
    }
}
