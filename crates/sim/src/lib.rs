//! # blackdp-sim — deterministic discrete-event VANET simulator
//!
//! This crate is the simulation substrate for the BlackDP reproduction: a
//! single-threaded, fully deterministic discrete-event engine with a
//! unit-disk radio medium, a wired RSU/TA backbone, timers, and statistics
//! counters.
//!
//! The design is deliberately minimal and protocol-agnostic:
//!
//! * **Virtual time** is integer microseconds ([`Time`], [`Duration`]) so
//!   event ordering is exact and runs reproduce bit-for-bit from a seed.
//! * **Nodes** implement the [`Node`] trait — pure state machines that react
//!   to packets and timers through a [`Context`] capability handle.
//! * **The radio** is a unit-disk model: a transmission reaches every active
//!   node within `radio_range_m` meters of the sender at transmission time,
//!   after a configurable latency, jitter, and loss draw. This matches the
//!   paper's assumption of an identical, bidirectional 1000 m DSRC range for
//!   all nodes.
//! * **The wired channel** models the paper's "high speed links" between
//!   RSUs (and to trusted authorities); it ignores distance and never drops
//!   — unless a fault plan severs it.
//! * **Faults are first-class**: a [`FaultPlan`] schedules node
//!   crash/restart windows, wired-backhaul outages, burst radio loss and
//!   payload tampering in virtual time, all drawn from the same seeded
//!   stream so faulty runs stay bit-for-bit reproducible.
//!
//! # Examples
//!
//! A two-node ping-pong:
//!
//! ```
//! use blackdp_sim::{Channel, Context, Node, NodeId, Position, Time, World, WorldConfig};
//!
//! struct Player {
//!     at: Position,
//!     hits: u32,
//! }
//!
//! impl Node<u32, ()> for Player {
//!     fn position(&self, _now: Time) -> Position {
//!         self.at
//!     }
//!     fn on_packet(&mut self, ctx: &mut Context<'_, u32, ()>, from: NodeId, ball: u32, _ch: Channel) {
//!         self.hits += 1;
//!         if ball > 0 {
//!             ctx.send(from, ball - 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, u32, ()>, _token: ()) {}
//! }
//!
//! let mut world = World::new(WorldConfig::default());
//! let a = world.spawn(Box::new(Player { at: Position::new(0.0, 0.0), hits: 0 }));
//! let b = world.spawn(Box::new(Player { at: Position::new(800.0, 0.0), hits: 0 }));
//! world.inject(Time::ZERO, a, b, 5, Channel::Radio);
//! world.run_to_completion(100);
//! assert_eq!(world.stats().get("radio.rx"), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod event;
mod fault;
mod grid;
mod harness;
mod id;
mod node;
mod oracle;
mod position;
mod shard;
mod stats;
mod time;
mod wallclock;
mod world;

pub use budget::thread_budget;
pub use event::{Channel, TimerId};
pub use harness::{NodeEffect, NodeHarness};
pub use fault::{CrashFault, FaultPlan, FaultWindow, RadioBurst, TamperBurst, WiredOutage};
pub use id::NodeId;
pub use node::{Context, Node};
pub use oracle::{InvariantCheck, SimEvent, Violation, ViolationSink};
pub use position::Position;
pub use shard::ShardDiagnostics;
pub use stats::Stats;
pub use time::{Duration, Time};
pub use wallclock::WallClock;
pub use world::{
    BoundaryTap, EngineStamp, ExecutorMode, NeighborIndex, RadioModel, Tap, TamperHook,
    WindowEvent, WindowTap, World, WorldBackend, WorldConfig,
};
