//! The pending-event queue at the heart of the discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{NodeId, Time};

/// Identifies a scheduled timer so it can be cancelled.
///
/// Returned by [`Context::set_timer`](crate::Context::set_timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Returns the raw id, unique within one world.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// The transmission channel a packet travelled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Over-the-air DSRC radio (subject to range and loss).
    Radio,
    /// The high-speed wired backbone linking RSUs and trusted authorities.
    Wired,
}

/// An occurrence scheduled for a particular node.
#[derive(Debug, Clone)]
pub(crate) enum Occurrence<P, T> {
    /// A packet arrives at `to`.
    Deliver {
        from: NodeId,
        payload: P,
        channel: Channel,
    },
    /// A timer set by the node fires.
    Timer { id: TimerId, token: T },
}

#[derive(Debug)]
pub(crate) struct Scheduled<P, T> {
    pub time: Time,
    pub seq: u64,
    pub node: NodeId,
    pub occurrence: Occurrence<P, T>,
}

impl<P, T> PartialEq for Scheduled<P, T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<P, T> Eq for Scheduled<P, T> {}

impl<P, T> PartialOrd for Scheduled<P, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P, T> Ord for Scheduled<P, T> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* event.
    /// The insertion sequence number breaks ties, making same-instant events
    /// FIFO and runs deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub(crate) struct EventQueue<P, T> {
    heap: BinaryHeap<Scheduled<P, T>>,
    next_seq: u64,
}

impl<P, T> EventQueue<P, T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: Time, node: NodeId, occurrence: Occurrence<P, T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            node,
            occurrence,
        });
    }

    pub fn pop(&mut self) -> Option<Scheduled<P, T>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Total events ever pushed (the next insertion sequence number). Two
    /// runs that agree on this at the same virtual time scheduled exactly
    /// as many occurrences — part of the checkpoint engine stamp.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // symmetry with len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> Occurrence<u32, ()> {
        Occurrence::Deliver {
            from: NodeId::new(0),
            payload: n,
            channel: Channel::Radio,
        }
    }

    fn payload(occ: Occurrence<u32, ()>) -> u32 {
        match occ {
            Occurrence::Deliver { payload, .. } => payload,
            Occurrence::Timer { .. } => panic!("expected a delivery"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        q.push(Time::from_secs(3), NodeId::new(1), deliver(3));
        q.push(Time::from_secs(1), NodeId::new(1), deliver(1));
        q.push(Time::from_secs(2), NodeId::new(1), deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|s| payload(s.occurrence))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, NodeId::new(0), deliver(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|s| payload(s.occurrence))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(5), NodeId::new(0), deliver(0));
        q.push(Time::from_secs(2), NodeId::new(0), deliver(0));
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
