//! The pending-event queue at the heart of the discrete-event engine.
//!
//! Layout: the [`BinaryHeap`] orders 24-byte [`HeapEntry`] keys while the
//! payloads — [`Occurrence`]s, which inline the protocol's packet type and
//! can run to hundreds of bytes — live in a generation-indexed slab
//! indexed by the key. Heap sifts therefore move small fixed-size keys
//! instead of whole payloads, and a payload is moved exactly twice: into
//! its slab slot on push and out on pop. Both the heap and the slab
//! recycle their storage (the slab through an intrusive free list), so
//! once a run reaches its high-water mark the queue performs **zero**
//! allocations per event — the property the perf harness probes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{NodeId, Time};

/// Identifies a scheduled timer so it can be cancelled.
///
/// Returned by [`Context::set_timer`](crate::Context::set_timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Returns the raw id, unique within one world.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// The transmission channel a packet travelled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Over-the-air DSRC radio (subject to range and loss).
    Radio,
    /// The high-speed wired backbone linking RSUs and trusted authorities.
    Wired,
}

/// An occurrence scheduled for a particular node.
#[derive(Debug, Clone)]
pub(crate) enum Occurrence<P, T> {
    /// A packet arrives at `to`.
    Deliver {
        from: NodeId,
        payload: P,
        channel: Channel,
    },
    /// A timer set by the node fires.
    Timer { id: TimerId, token: T },
}

#[derive(Debug)]
pub(crate) struct Scheduled<P, T> {
    pub time: Time,
    /// Insertion sequence (FIFO tiebreak); carried out of the queue so
    /// ordering tests can assert on it directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub seq: u64,
    pub node: NodeId,
    pub occurrence: Occurrence<P, T>,
}

/// The heap's ordering key: virtual time, tie-broken FIFO by insertion
/// sequence, plus the slab coordinates of the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Time,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* event.
    /// The insertion sequence number breaks ties, making same-instant events
    /// FIFO and runs deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Free-list terminator for the slab.
const NIL: u32 = u32::MAX;

/// One slab slot: an occupied slot owns a scheduled occurrence; a vacant
/// slot threads the free list. The generation counter increments on every
/// vacate, so a stale heap key can never alias a recycled slot unnoticed
/// (checked in debug builds).
#[derive(Debug)]
struct SlabSlot<P, T> {
    gen: u32,
    next_free: u32,
    occupant: Option<(NodeId, Occurrence<P, T>)>,
}

/// A deterministic future-event list.
#[derive(Debug)]
pub(crate) struct EventQueue<P, T> {
    heap: BinaryHeap<HeapEntry>,
    slab: Vec<SlabSlot<P, T>>,
    free_head: u32,
    next_seq: u64,
}

impl<P, T> EventQueue<P, T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free_head: NIL,
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: Time, node: NodeId, occurrence: Occurrence<P, T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let idx = self.free_head;
            let s = &mut self.slab[idx as usize];
            self.free_head = s.next_free;
            s.occupant = Some((node, occurrence));
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
            assert_ne!(idx, NIL, "event slab exceeds u32 slots");
            self.slab.push(SlabSlot {
                gen: 0,
                next_free: NIL,
                occupant: Some((node, occurrence)),
            });
            idx
        };
        let gen = self.slab[slot as usize].gen;
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            gen,
        });
    }

    pub fn pop(&mut self) -> Option<Scheduled<P, T>> {
        let entry = self.heap.pop()?;
        let s = &mut self.slab[entry.slot as usize];
        debug_assert_eq!(s.gen, entry.gen, "heap key aliases a recycled slab slot");
        let (node, occurrence) = s
            .occupant
            .take()
            .expect("heap key points at a vacant slab slot");
        s.gen = s.gen.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = entry.slot;
        Some(Scheduled {
            time: entry.time,
            seq: entry.seq,
            node,
            occurrence,
        })
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Inspects the head event without popping it: its time, target node,
    /// and whether it is a timer. The windowed executor's window former
    /// uses this to decide whether the head may join a parallel window
    /// (timers and deliveries to exclusive-dispatch nodes never do).
    pub fn peek_head(&self) -> Option<(Time, NodeId, bool)> {
        let entry = self.heap.peek()?;
        let (node, occurrence) = self.slab[entry.slot as usize]
            .occupant
            .as_ref()
            .expect("heap key points at a vacant slab slot");
        Some((
            entry.time,
            *node,
            matches!(occurrence, Occurrence::Timer { .. }),
        ))
    }

    /// Total events ever pushed (the next insertion sequence number). Two
    /// runs that agree on this at the same virtual time scheduled exactly
    /// as many occurrences — part of the checkpoint engine stamp.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // symmetry with len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Slab slots ever created — the queue's high-water mark. Steady-state
    /// traffic recycles these; the perf harness asserts the mark stops
    /// growing once a workload reaches its plateau.
    pub fn slab_capacity(&self) -> usize {
        self.slab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> Occurrence<u32, ()> {
        Occurrence::Deliver {
            from: NodeId::new(0),
            payload: n,
            channel: Channel::Radio,
        }
    }

    fn payload(occ: Occurrence<u32, ()>) -> u32 {
        match occ {
            Occurrence::Deliver { payload, .. } => payload,
            Occurrence::Timer { .. } => panic!("expected a delivery"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        q.push(Time::from_secs(3), NodeId::new(1), deliver(3));
        q.push(Time::from_secs(1), NodeId::new(1), deliver(1));
        q.push(Time::from_secs(2), NodeId::new(1), deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|s| payload(s.occurrence))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, NodeId::new(0), deliver(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|s| payload(s.occurrence))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(5), NodeId::new(0), deliver(0));
        q.push(Time::from_secs(2), NodeId::new(0), deliver(0));
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn slab_recycles_slots_in_steady_state() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        // Plateau at 8 pending events, then churn 1000 push/pop rounds.
        for i in 0..8 {
            q.push(Time::from_millis(i), NodeId::new(0), deliver(i as u32));
        }
        let mark = q.slab_capacity();
        for i in 8..1000 {
            let popped = q.pop().expect("queue holds events");
            assert_eq!(u64::from(payload(popped.occurrence)), i - 8);
            q.push(Time::from_millis(i), NodeId::new(0), deliver(i as u32));
        }
        assert_eq!(
            q.slab_capacity(),
            mark,
            "steady-state churn must not grow the slab"
        );
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn interleaved_order_survives_recycling() {
        // Pops and pushes interleave so slots recycle while the heap still
        // holds live keys; time order and FIFO ties must be preserved.
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        let mut expected = Vec::new();
        for round in 0u64..50 {
            for k in 0..3 {
                let t = Time::from_millis(round * 2 + k % 2);
                q.push(t, NodeId::new(0), deliver((round * 3 + k) as u32));
            }
            let s = q.pop().expect("queue holds events");
            expected.push((s.time, s.seq));
        }
        let mut rest: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
            .map(|s| (s.time, s.seq))
            .collect();
        expected.append(&mut rest);
        let mut sorted = expected.clone();
        sorted.sort();
        assert_eq!(expected, sorted, "pop order must be (time, seq) sorted");
    }
}
