//! Spatially sharded neighbor index: the million-vehicle backend.
//!
//! The serial [`SpatialGrid`](crate::grid::SpatialGrid) rebuilds all N
//! buckets at every distinct `(timestamp, slot-count)` pair. Radio jitter
//! gives almost every broadcast a fresh timestamp, so at highway densities
//! the serial backend pays an O(N) rebuild per transmission — the dominant
//! cost once N reaches 10⁵. This module shards the highway into contiguous
//! **bands of grid-cell columns** (reusing `grid::cell_of` geometry so band
//! boundaries and serial cell boundaries coincide) and makes rebuilds both
//! *rare* and *parallel*:
//!
//! * **Rare** — cells are `2 × range` wide, leaving `range` meters of slack
//!   beyond the 3×3-coverage requirement. Queries evaluate candidate
//!   positions *live* (`Node::position(now)`, a pure function of time), so a
//!   stale index still returns bit-exact results as long as no node has
//!   drifted more than the slack since it was binned. Given a motion bound
//!   `v_max` (m/s), the index therefore stays valid for a horizon of
//!   `slack / v_max` virtual seconds and is only rebuilt when the horizon
//!   expires (a ½ safety factor is applied). With Table-I speeds
//!   (≤ 90 km/h = 25 m/s) and the paper's 1000 m range that is ~20 virtual
//!   seconds per rebuild instead of one rebuild per broadcast.
//! * **Parallel** — each band re-bins its own residents independently on a
//!   scoped worker thread (workers capped by [`crate::thread_budget`]).
//!   Nodes that crossed a band boundary are **not** inserted by the workers;
//!   they are staged as per-band emigrant batches and merged serially in
//!   fixed `(band, emission-order)` order — the same deterministic-merge
//!   discipline the parallel sweep and the orchestrator use — so index
//!   state is byte-identical for any worker count.
//!
//! # Bit-identity with the serial oracle
//!
//! Queries emit candidates in ascending slot order via the same bitmask
//! scan the serial grid uses, compute distances with the same
//! `distance_to(..) <= range` inclusive `f64` comparison on the same
//! live-evaluated positions, and filter the active set at query time.
//! Within one timestamp no inactive slot can become active (fault edges are
//! applied at event pop, before any query at that instant), so
//! "bin every slot, filter `active` per query" yields exactly the serial
//! grid's candidate set — for **any** shard count and any worker count.
//! The engine's RNG draw order, traces, `Stats::digest`, and
//! `engine_stamp` witnesses are therefore unchanged by construction.
//!
//! # Handoffs
//!
//! Band geometry (origin column and band width in cells) is frozen at the
//! first rebuild from the population's column bounding box; vehicles that
//! later leave the covered span are clamped to the edge bands. A vehicle
//! whose trajectory crosses a band boundary is handed off at the next
//! rebuild via the emigrant merge; [`ShardDiagnostics::handoffs`] counts
//! them.

use std::mem;

use crate::budget::thread_budget;
use crate::grid::{cell_of, CellMap};
use crate::{Position, Time};

/// Read-only view of the world's node slots.
///
/// The sharded index never touches `World` directly: it sees slots through
/// this narrow, `Sync` view so band workers can evaluate positions from
/// scoped threads while the index itself stays engine-agnostic.
pub(crate) trait SlotView: Sync {
    /// Total number of slots ever spawned (despawned slots included).
    fn slot_count(&self) -> usize;
    /// Whether the slot currently participates in the radio medium.
    fn is_active(&self, index: u32) -> bool;
    /// The slot's position at `now` (pure in `now`, callable for any slot).
    fn position(&self, index: u32, now: Time) -> Position;
}

/// Frozen band geometry: which cell columns belong to which shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BandMap {
    /// Cell side length in meters (`2 × radio range`).
    pub cell_size: f64,
    /// Leftmost column of the trimmed span frozen at first build.
    pub min_col: i64,
    /// Band width in whole cell columns (≥ 1).
    pub band_width: i64,
    /// Number of bands (= shard count).
    pub bands: usize,
}

impl BandMap {
    /// The band owning cell column `col`; columns outside the frozen span
    /// are clamped to the edge bands.
    #[inline]
    pub(crate) fn band_of_col(&self, col: i64) -> usize {
        (col - self.min_col)
            .div_euclid(self.band_width)
            .clamp(0, self.bands as i64 - 1) as usize
    }

    /// The band owning position `p`.
    #[inline]
    pub(crate) fn band_of_pos(&self, p: Position) -> usize {
        self.band_of_col(cell_of(self.cell_size, p).0)
    }
}

/// Counters describing sharded-index activity; exposed through
/// `World::shard_diagnostics` for benches and tests. These live outside
/// [`crate::Stats`] on purpose: they depend on the backend (and would
/// differ between serial and sharded runs), while `Stats::digest` must be
/// backend-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardDiagnostics {
    /// Configured shard (band) count.
    pub shards: u32,
    /// Full index rebuilds performed (first build included).
    pub full_rebuilds: u64,
    /// Vehicles handed from one band to another across all rebuilds.
    pub handoffs: u64,
    /// In-range candidates a query found in a band other than the sender's
    /// — i.e. deliveries that crossed a shard boundary.
    pub cross_band_candidates: u64,
}

/// One shard: the residents and cell buckets of a contiguous column band.
#[derive(Default)]
struct Band {
    /// Slot indices whose last-binned position fell in this band.
    residents: Vec<u32>,
    /// Cell → resident indices, same keying as the serial grid.
    buckets: CellMap,
    /// Bounding box of this band's occupied cells, `(min, max)` inclusive.
    bounds: Option<((i64, i64), (i64, i64))>,
    /// Residents that left the band during the last re-bin, with their new
    /// cell; drained by the serial merge in emission order.
    emigrants: Vec<(u32, (i64, i64))>,
    /// Scratch for the surviving-resident list (capacity recycling).
    keep: Vec<u32>,
}

impl Band {
    /// Inserts `index` at `cell`, updating residents, buckets, and bounds.
    fn insert(&mut self, index: u32, cell: (i64, i64)) {
        self.residents.push(index);
        self.bucket(index, cell);
    }

    /// Buckets `index` at `cell` without touching the resident list.
    fn bucket(&mut self, index: u32, cell: (i64, i64)) {
        self.bounds = Some(match self.bounds {
            None => (cell, cell),
            Some((lo, hi)) => (
                (lo.0.min(cell.0), lo.1.min(cell.1)),
                (hi.0.max(cell.0), hi.1.max(cell.1)),
            ),
        });
        self.buckets.entry(cell).or_default().push(index);
    }

    /// Re-bins every resident at its position at `now`. Residents still in
    /// this band (`me`) are kept; the rest are staged as emigrants in
    /// deterministic resident order. Runs on a worker thread; touches only
    /// this band's state.
    fn rebin<V: SlotView + ?Sized>(&mut self, view: &V, now: Time, map: &BandMap, me: usize) {
        for bucket in self.buckets.values_mut() {
            bucket.clear();
        }
        self.bounds = None;
        self.emigrants.clear();
        self.keep.clear();
        let residents = mem::take(&mut self.residents);
        for &index in &residents {
            let cell = cell_of(map.cell_size, view.position(index, now));
            if map.band_of_col(cell.0) == me {
                self.keep.push(index);
                self.bucket(index, cell);
            } else {
                self.emigrants.push((index, cell));
            }
        }
        self.residents = mem::take(&mut self.keep);
        self.keep = residents;
        self.keep.clear();
    }
}

/// The sharded spatial index behind `WorldBackend::Sharded`.
pub(crate) struct ShardedIndex {
    /// Frozen band geometry; `None` until the first build (no slots yet).
    map: Option<BandMap>,
    bands: Vec<Band>,
    /// Query radius in meters; cells are `2 × range` wide.
    range: f64,
    /// Rebuild-on-every-new-timestamp mode (no finite motion bound).
    exact: bool,
    /// Staleness horizon in virtual microseconds (half the slack budget).
    horizon_micros: u64,
    /// Virtual time of the last full (re)build.
    built_at: Time,
    /// Slots binned so far; slots spawned later are binned incrementally.
    binned_slots: usize,
    /// First-build scratch: one cached cell per slot.
    scratch_cells: Vec<(i64, i64)>,
    /// Per-query candidate staging, identical to the serial grid's bitmask
    /// scheme (all-zero between queries; ascending-order emission).
    cand_mask: Vec<u64>,
    cand_dist: Vec<f64>,
    full_rebuilds: u64,
    handoffs: u64,
    cross_band_candidates: u64,
}

impl ShardedIndex {
    /// Creates an index for `shards` bands over queries of radius `range`.
    ///
    /// `motion_bound_mps` bounds every node's speed: finite values enable
    /// the staleness horizon (`0` = static world, never expires); any
    /// non-finite or negative value selects exact per-timestamp rebuilds.
    pub(crate) fn new(shards: usize, range: f64, motion_bound_mps: f64) -> Self {
        let shards = shards.max(1);
        let exact = !(motion_bound_mps.is_finite() && motion_bound_mps >= 0.0)
            || motion_bound_mps.is_infinite();
        let horizon_micros = if exact {
            0
        } else if motion_bound_mps == 0.0 {
            u64::MAX
        } else {
            // Slack is `range` meters (cell = 2 × range); spend half of it
            // between rebuilds so accumulated float error has margin too.
            let secs = 0.5 * range / motion_bound_mps;
            (secs * 1e6).min(u64::MAX as f64) as u64
        };
        ShardedIndex {
            map: None,
            bands: (0..shards).map(|_| Band::default()).collect(),
            range,
            exact,
            horizon_micros,
            built_at: Time::ZERO,
            binned_slots: 0,
            scratch_cells: Vec::new(),
            cand_mask: Vec::new(),
            cand_dist: Vec::new(),
            full_rebuilds: 0,
            handoffs: 0,
            cross_band_candidates: 0,
        }
    }

    /// Configured shard count.
    pub(crate) fn shard_count(&self) -> usize {
        self.bands.len()
    }

    /// Frozen band geometry, once the first build has happened.
    pub(crate) fn band_map(&self) -> Option<BandMap> {
        self.map
    }

    /// Activity counters for benches and tests.
    pub(crate) fn diagnostics(&self) -> ShardDiagnostics {
        ShardDiagnostics {
            shards: self.bands.len() as u32,
            full_rebuilds: self.full_rebuilds,
            handoffs: self.handoffs,
            cross_band_candidates: self.cross_band_candidates,
        }
    }

    /// Brings the index up to date for queries at `now`: full rebuild when
    /// the staleness horizon expired (or on any new timestamp in exact
    /// mode), otherwise just incremental binning of newly spawned slots.
    pub(crate) fn refresh<V: SlotView + ?Sized>(&mut self, view: &V, now: Time) {
        let due = match self.map {
            None => true,
            Some(_) => {
                if self.exact {
                    now != self.built_at
                } else {
                    now.saturating_since(self.built_at).as_micros() > self.horizon_micros
                }
            }
        };
        if due {
            self.rebuild(view, now);
        } else if view.slot_count() > self.binned_slots {
            self.bin_new_slots(view, now);
        }
    }

    fn rebuild<V: SlotView + ?Sized>(&mut self, view: &V, now: Time) {
        self.built_at = now;
        if self.map.is_none() {
            self.first_build(view, now);
            return;
        }
        self.full_rebuilds += 1;
        let map = self.map.expect("geometry frozen after first build");

        // Parallel phase: each band re-bins its own residents. Bands are
        // disjoint, so worker count (and interleaving) cannot affect any
        // band's resulting state.
        let workers = thread_budget().min(self.bands.len()).max(1);
        if workers == 1 {
            for (me, band) in self.bands.iter_mut().enumerate() {
                band.rebin(view, now, &map, me);
            }
        } else {
            let per = self.bands.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (chunk_no, chunk) in self.bands.chunks_mut(per).enumerate() {
                    let base = chunk_no * per;
                    scope.spawn(move || {
                        for (offset, band) in chunk.iter_mut().enumerate() {
                            band.rebin(view, now, &map, base + offset);
                        }
                    });
                }
            });
        }

        // Serial merge phase: hand emigrants to their new bands in fixed
        // (source band, emission order) — deterministic by construction.
        for source in 0..self.bands.len() {
            let mut staged = mem::take(&mut self.bands[source].emigrants);
            for &(index, cell) in &staged {
                self.bands[map.band_of_col(cell.0)].insert(index, cell);
                self.handoffs += 1;
            }
            staged.clear();
            self.bands[source].emigrants = staged;
        }

        // Slots spawned since the previous refresh.
        self.bin_new_slots(view, now);
    }

    /// First build: freeze band geometry from the current occupied column
    /// span, then bin every slot. Serial — it runs once per world.
    ///
    /// The span is *trimmed*: the outermost 5% of slots on each side are
    /// ignored when choosing the band edges. Off-plane anchors — the
    /// scenario's TA nodes sit at `(-1e7, -1e7)` precisely so radio can
    /// never reach them — would otherwise stretch the bounding box by
    /// thousands of empty columns and collapse the whole radio plane into
    /// a single band. Trimming costs nothing: [`BandMap::band_of_col`]
    /// clamps out-of-span columns to the edge bands, and band ownership
    /// never affects query results (only load distribution), so the
    /// choice of span cannot perturb a trace.
    fn first_build<V: SlotView + ?Sized>(&mut self, view: &V, now: Time) {
        let slots = view.slot_count();
        if slots == 0 {
            return; // keep `map` unset; retry on the next refresh
        }
        self.full_rebuilds += 1;
        let cell_size = 2.0 * self.range;
        self.scratch_cells.clear();
        for index in 0..slots {
            let cell = cell_of(cell_size, view.position(index as u32, now));
            self.scratch_cells.push(cell);
        }
        let mut cols: Vec<i64> = self.scratch_cells.iter().map(|c| c.0).collect();
        cols.sort_unstable();
        let trim = slots / 20;
        let (lo, hi) = (cols[trim], cols[slots - 1 - trim]);
        let span = hi - lo + 1;
        // Ceiling division; `span >= 1` here (signed `div_ceil` is not
        // stable on this toolchain).
        let shards = self.bands.len() as i64;
        let width = ((span + shards - 1) / shards).max(1);
        let map = BandMap {
            cell_size,
            min_col: lo,
            band_width: width,
            bands: self.bands.len(),
        };
        for (index, &cell) in self.scratch_cells.iter().enumerate() {
            self.bands[map.band_of_col(cell.0)].insert(index as u32, cell);
        }
        self.map = Some(map);
        self.binned_slots = slots;
    }

    /// Bins slots spawned since the last refresh (indices are append-only).
    fn bin_new_slots<V: SlotView + ?Sized>(&mut self, view: &V, now: Time) {
        let map = self.map.expect("geometry frozen after first build");
        for index in self.binned_slots..view.slot_count() {
            let cell = cell_of(map.cell_size, view.position(index as u32, now));
            self.bands[map.band_of_col(cell.0)].insert(index as u32, cell);
        }
        self.binned_slots = view.slot_count();
    }

    /// Appends every active node within `range` of `center` (inclusive) to
    /// `out` as `(index, distance)` pairs in **ascending index order**,
    /// skipping `exclude` — byte-identical to the serial grid and the
    /// brute-force scan. Call [`Self::refresh`] for the same `now` first.
    pub(crate) fn query_into<V: SlotView + ?Sized>(
        &mut self,
        view: &V,
        now: Time,
        center: Position,
        exclude: u32,
        out: &mut Vec<(u32, f64)>,
    ) {
        let Some(map) = self.map else {
            return;
        };
        let slots = view.slot_count();
        let range = self.range;
        self.cand_dist.resize(slots, 0.0);
        self.cand_mask.resize(slots.div_ceil(64), 0);
        let (cx, cy) = cell_of(map.cell_size, center);
        let home = map.band_of_col(cx);
        let mut crossed = 0u64;
        let ShardedIndex {
            bands,
            cand_mask,
            cand_dist,
            ..
        } = self;
        for x in (cx - 1)..=(cx + 1) {
            let b = map.band_of_col(x);
            let band = &bands[b];
            let Some((lo, hi)) = band.bounds else {
                continue;
            };
            if x < lo.0 || x > hi.0 {
                continue;
            }
            for y in (cy - 1).max(lo.1)..=(cy + 1).min(hi.1) {
                let Some(bucket) = band.buckets.get(&(x, y)) else {
                    continue;
                };
                for &index in bucket {
                    if index == exclude || !view.is_active(index) {
                        continue;
                    }
                    let dist = center.distance_to(view.position(index, now));
                    if dist <= range {
                        cand_mask[index as usize / 64] |= 1u64 << (index % 64);
                        cand_dist[index as usize] = dist;
                        if b != home {
                            crossed += 1;
                        }
                    }
                }
            }
        }
        self.cross_band_candidates += crossed;
        for (w, word) in self.cand_mask.iter_mut().enumerate() {
            let mut m = *word;
            *word = 0; // restore the all-zero invariant
            while m != 0 {
                let index = w * 64 + m.trailing_zeros() as usize;
                out.push((index as u32, cand_dist[index]));
                m &= m - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear-motion test fixture: slot i is at `start + velocity * t`.
    struct TestView {
        nodes: Vec<(Position, (f64, f64), bool)>,
    }

    impl TestView {
        fn moving(nodes: Vec<(Position, (f64, f64))>) -> Self {
            TestView {
                nodes: nodes.into_iter().map(|(p, v)| (p, v, true)).collect(),
            }
        }

        fn still(points: Vec<Position>) -> Self {
            TestView {
                nodes: points.into_iter().map(|p| (p, (0.0, 0.0), true)).collect(),
            }
        }
    }

    impl SlotView for TestView {
        fn slot_count(&self) -> usize {
            self.nodes.len()
        }
        fn is_active(&self, index: u32) -> bool {
            self.nodes[index as usize].2
        }
        fn position(&self, index: u32, now: Time) -> Position {
            let (p, v, _) = self.nodes[index as usize];
            let t = now.as_secs_f64();
            Position::new(p.x + v.0 * t, p.y + v.1 * t)
        }
    }

    fn scan(view: &TestView, now: Time, center: Position, range: f64, exclude: u32) -> Vec<u32> {
        (0..view.slot_count() as u32)
            .filter(|&i| i != exclude && view.is_active(i))
            .filter(|&i| center.distance_to(view.position(i, now)) <= range)
            .collect()
    }

    fn query(
        index: &mut ShardedIndex,
        view: &TestView,
        now: Time,
        center: Position,
        exclude: u32,
    ) -> Vec<u32> {
        index.refresh(view, now);
        let mut out = Vec::new();
        index.query_into(view, now, center, exclude, &mut out);
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "sharded query must emit ascending indices"
        );
        out.into_iter().map(|(i, _)| i).collect()
    }

    #[test]
    fn matches_scan_on_a_static_strip_for_many_shard_counts() {
        // 90 nodes spread over 9 km: wide enough for several bands.
        let view = TestView::still(
            (0..90)
                .map(|i| Position::new(i as f64 * 100.0, (i % 3) as f64 * 50.0))
                .collect(),
        );
        for shards in [1, 2, 3, 7] {
            let mut index = ShardedIndex::new(shards, 1000.0, f64::INFINITY);
            for probe in [0u32, 17, 45, 89] {
                let center = view.position(probe, Time::ZERO);
                assert_eq!(
                    query(&mut index, &view, Time::ZERO, center, probe),
                    scan(&view, Time::ZERO, center, 1000.0, probe),
                    "shards={shards} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn stale_index_is_exact_within_the_motion_horizon() {
        // 30 m/s movers; horizon = 0.5 * 1000 / 30 ≈ 16.6 s.
        let view = TestView::moving(
            (0..80)
                .map(|i| (Position::new(i as f64 * 120.0, 0.0), (30.0, 0.0)))
                .collect(),
        );
        let mut index = ShardedIndex::new(3, 1000.0, 30.0);
        let mut probed = false;
        for secs in [0u64, 5, 10, 15] {
            let now = Time::from_secs(secs);
            for probe in [3u32, 40, 79] {
                let center = view.position(probe, now);
                assert_eq!(
                    query(&mut index, &view, now, center, probe),
                    scan(&view, now, center, 1000.0, probe),
                    "t={secs}s probe={probe}"
                );
                probed = true;
            }
        }
        assert!(probed);
        // All four timestamps fit inside one horizon: a single build.
        assert_eq!(index.diagnostics().full_rebuilds, 1);
    }

    #[test]
    fn horizon_expiry_rebuilds_and_hands_off() {
        let view = TestView::moving(
            (0..70)
                .map(|i| (Position::new(i as f64 * 150.0, 0.0), (25.0, 0.0)))
                .collect(),
        );
        let mut index = ShardedIndex::new(5, 1000.0, 25.0);
        // Horizon = 0.5 * 1000 / 25 = 20 s; sample well past several.
        for secs in [0u64, 30, 60, 90] {
            let now = Time::from_secs(secs);
            let center = view.position(35, now);
            assert_eq!(
                query(&mut index, &view, now, center, 35),
                scan(&view, now, center, 1000.0, 35),
                "t={secs}s"
            );
        }
        let diag = index.diagnostics();
        assert!(diag.full_rebuilds >= 4, "expected rebuilds, got {diag:?}");
        // 90 s at 25 m/s is 2250 m = more than one 2000 m band width: some
        // node must have crossed a boundary.
        assert!(diag.handoffs > 0, "expected handoffs, got {diag:?}");
    }

    #[test]
    fn despawned_nodes_are_filtered_and_restarts_reappear() {
        let mut view = TestView::still((0..70).map(|i| Position::new(i as f64 * 30.0, 0.0)).collect());
        let mut index = ShardedIndex::new(2, 1000.0, 0.0);
        let t0 = Time::ZERO;
        let baseline = query(&mut index, &view, t0, view.position(10, t0), 10);
        assert!(baseline.contains(&12));
        // Crash node 12: it must vanish from queries without any rebuild.
        view.nodes[12].2 = false;
        assert_eq!(
            query(&mut index, &view, t0, view.position(10, t0), 10),
            scan(&view, t0, view.position(10, t0), 1000.0, 10),
        );
        // Restart it: it must reappear, again without a rebuild (the index
        // bins every slot and filters `active` per query).
        view.nodes[12].2 = true;
        assert_eq!(
            query(&mut index, &view, t0, view.position(10, t0), 10),
            baseline
        );
        assert_eq!(index.diagnostics().full_rebuilds, 1);
    }

    #[test]
    fn late_spawns_are_binned_incrementally() {
        let mut view = TestView::still((0..66).map(|i| Position::new(i as f64 * 40.0, 0.0)).collect());
        let mut index = ShardedIndex::new(3, 1000.0, 0.0);
        let t0 = Time::ZERO;
        let _ = query(&mut index, &view, t0, view.position(0, t0), 0);
        view.nodes.push((Position::new(120.0, 10.0), (0.0, 0.0), true));
        let got = query(&mut index, &view, t0, view.position(0, t0), 0);
        assert!(got.contains(&66), "newly spawned slot must be queryable");
        assert_eq!(index.diagnostics().full_rebuilds, 1);
    }

    #[test]
    fn band_geometry_is_frozen_and_clamps_outliers() {
        let view = TestView::still((0..70).map(|i| Position::new(i as f64 * 100.0, 0.0)).collect());
        let mut index = ShardedIndex::new(4, 1000.0, 0.0);
        index.refresh(&view, Time::ZERO);
        let map = index.band_map().expect("built");
        assert_eq!(map.bands, 4);
        // Far outside the frozen span on both sides: clamped to edge bands.
        assert_eq!(map.band_of_pos(Position::new(-1e7, 0.0)), 0);
        assert_eq!(map.band_of_pos(Position::new(1e7, 0.0)), 3);
        // Monotone left-to-right coverage.
        let first = map.band_of_pos(view.position(0, Time::ZERO));
        let last = map.band_of_pos(view.position(69, Time::ZERO));
        assert_eq!(first, 0);
        assert_eq!(last, 3);
    }

    #[test]
    fn exact_mode_rebuilds_on_every_new_timestamp() {
        let view = TestView::moving(
            (0..70)
                .map(|i| (Position::new(i as f64 * 100.0, 0.0), (10.0, 0.0)))
                .collect(),
        );
        let mut index = ShardedIndex::new(2, 1000.0, f64::INFINITY);
        for micros in [0u64, 1, 2, 500] {
            let now = Time::from_micros(micros);
            let center = view.position(7, now);
            assert_eq!(
                query(&mut index, &view, now, center, 7),
                scan(&view, now, center, 1000.0, 7)
            );
        }
        assert_eq!(index.diagnostics().full_rebuilds, 4);
    }
}
