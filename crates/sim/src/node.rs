//! The [`Node`] behaviour trait and the [`Context`] handed to node callbacks.

use crate::event::{Channel, TimerId};
use crate::{Duration, NodeId, Position, Stats, Time};

/// Behaviour of one simulated node (vehicle, RSU, trusted authority, …).
///
/// Implementations are plain state machines: every callback receives a
/// [`Context`] used to emit effects (send packets, arm timers). Callbacks must
/// not block; all interaction with the outside world goes through the context.
///
/// The world is generic over the packet payload type `P` and the timer token
/// type `T`, so one simulation wires all protocols through a single payload
/// enum.
///
/// The `Any` supertrait lets scenario code downcast nodes back to their
/// concrete types for post-run inspection via
/// [`World::get`](crate::World::get).
///
/// The `Send + Sync` supertraits exist for the sharded backend and the
/// windowed executor: band rebuild workers evaluate `position` for disjoint
/// resident sets through a shared `&[Slot]` view on scoped threads, and the
/// windowed executor runs `on_packet` for disjoint node sets on scoped
/// worker threads. A node is only ever *mutated* by one thread at a time —
/// the bounds assert that handing a node to another thread is safe, nothing
/// more.
///
/// # Handler purity contract
///
/// Callbacks are **effect emitters**: they may mutate their own node's
/// state and push effects/statistics into the [`Context`], but they get no
/// handle to the world, the engine RNG, or other nodes. The engine applies
/// the buffered effects afterwards in a serial commit step — this is what
/// lets the windowed executor run same-window handlers in parallel while
/// staying bit-identical to the serial engine. Two further obligations:
///
/// * [`Node::position`] must be a **pure function of construction state and
///   `now`** — trajectories may not depend on packets received. Every node
///   in this repository satisfies this (attackers fake movement inside
///   packet *contents*, not their trajectory).
/// * A node whose `on_packet` may call [`Context::despawn`] (or otherwise
///   must never share a parallel window with other deliveries) should
///   override [`Node::exclusive_dispatch`].
pub trait Node<P, T>: std::any::Any + Send + Sync {
    /// The node's position at virtual time `now`, in meters.
    ///
    /// Called by the radio medium whenever a transmission must be resolved to
    /// a set of in-range receivers. Implementations should be cheap and pure.
    fn position(&self, now: Time) -> Position;

    /// Invoked once when the node is spawned into the world.
    ///
    /// The default implementation does nothing. Typical uses: arming periodic
    /// timers, announcing presence.
    fn on_start(&mut self, ctx: &mut Context<'_, P, T>) {
        let _ = ctx;
    }

    /// Invoked when the node resumes after a crash window scheduled via
    /// [`World::install_faults`](crate::World::install_faults) (or an
    /// explicit [`World::resume`](crate::World::resume)).
    ///
    /// While crashed the node received no packets and all its timers were
    /// dropped, so the default implementation re-runs [`Node::on_start`] to
    /// re-arm timer chains. Nodes holding volatile state that would not
    /// survive a real reboot should override this to clear that state first.
    fn on_restart(&mut self, ctx: &mut Context<'_, P, T>) {
        self.on_start(ctx);
    }

    /// Invoked when a packet addressed to (or broadcast near) this node
    /// arrives.
    fn on_packet(&mut self, ctx: &mut Context<'_, P, T>, from: NodeId, packet: P, channel: Channel);

    /// Invoked when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, P, T>, token: T);

    /// A deterministic digest of the node's mutable state, folded into the
    /// engine's checkpoint stamp
    /// ([`World::engine_stamp`](crate::World::engine_stamp)).
    ///
    /// The default returns 0 (the node contributes nothing beyond its
    /// existence). Nodes carrying state the packet trace cannot witness —
    /// attacker middleware with private RNGs and drop counters, say —
    /// should override this so checkpoint verification catches silent
    /// divergence inside them. Must be cheap, pure, and a function of node
    /// state only.
    fn state_digest(&self) -> u64 {
        0
    }

    /// Whether deliveries to this node must be dispatched alone.
    ///
    /// The windowed executor never places a delivery to an exclusive node
    /// in a parallel window: the event runs through the classic serial
    /// step instead, so effects that change the engine's gating state for
    /// *later* events — [`Context::despawn`] from `on_packet` is the one
    /// such effect in this codebase — commit before the next event is even
    /// examined. Nodes that never despawn from `on_packet` keep the
    /// default `false`.
    fn exclusive_dispatch(&self) -> bool {
        false
    }
}

/// An effect emitted by a node callback, applied by the world afterwards.
#[derive(Debug)]
pub(crate) enum Effect<P, T> {
    Unicast { to: NodeId, payload: P },
    Broadcast { payload: P },
    Wired { to: NodeId, payload: P },
    SetTimer { id: TimerId, at: Time, token: T },
    CancelTimer(TimerId),
    Despawn,
}

/// Where a [`Context`] routes its statistics increments.
///
/// The serial engine hands callbacks a direct borrow of the world's
/// counters (zero-allocation hot path, unchanged from before the windowed
/// executor). Parallel window workers stage increments into an owned
/// [`Stats`] instead, merged into the world's counters by the serial commit
/// step — counters are additive and [`Stats::digest`] is key-ordered, so
/// the merge is bit-identical to having counted directly.
#[derive(Debug)]
pub(crate) enum StatSink<'a> {
    Direct(&'a mut Stats),
    Staged(Stats),
}

impl StatSink<'_> {
    #[inline]
    fn add(&mut self, key: &str, n: u64) {
        match self {
            StatSink::Direct(stats) => stats.add(key, n),
            StatSink::Staged(stats) => stats.add(key, n),
        }
    }
}

/// Number of low bits of a [`TimerId`] holding the within-dispatch index;
/// the high bits hold the dispatch index. See [`Context::set_timer`].
pub(crate) const TIMER_LOCAL_BITS: u32 = 16;

/// The capability handle a [`Node`] uses to act on the world.
///
/// All effects are buffered and applied by the engine after the callback
/// returns, in emission order.
#[derive(Debug)]
pub struct Context<'a, P, T> {
    pub(crate) now: Time,
    pub(crate) self_id: NodeId,
    pub(crate) stats: StatSink<'a>,
    /// High bits of every [`TimerId`] armed in this dispatch: the engine's
    /// dispatch index shifted left by [`TIMER_LOCAL_BITS`]. Dispatch
    /// indices are assigned in serial `(time, seq)` order by the engine —
    /// never by worker threads — so timer ids are identical for any thread
    /// count.
    pub(crate) timer_base: u64,
    /// Timers armed so far in this dispatch (the next local timer index).
    pub(crate) timers_armed: u16,
    pub(crate) effects: Vec<Effect<P, T>>,
}

impl<P, T> Context<'_, P, T> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the node this context belongs to.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Increments the named statistics counter.
    pub fn count(&mut self, key: &str) {
        self.stats.add(key, 1);
    }

    /// Increments the named statistics counter by `n`.
    pub fn count_by(&mut self, key: &str, n: u64) {
        self.stats.add(key, n);
    }

    /// Transmits `payload` to `to` over the radio.
    ///
    /// Delivery is subject to the radio range at transmission time and the
    /// configured loss probability; out-of-range unicasts are silently
    /// dropped, exactly like a real open wireless channel.
    pub fn send(&mut self, to: NodeId, payload: P) {
        self.effects.push(Effect::Unicast { to, payload });
    }

    /// Broadcasts `payload` to every active node currently in radio range.
    pub fn broadcast(&mut self, payload: P) {
        self.effects.push(Effect::Broadcast { payload });
    }

    /// Sends `payload` over the wired RSU/TA backbone (range-independent,
    /// loss-free, fixed latency).
    pub fn send_wired(&mut self, to: NodeId, payload: P) {
        self.effects.push(Effect::Wired { to, payload });
    }

    /// Arms a timer that fires `after` from now, delivering `token` to
    /// [`Node::on_timer`]. Returns an id usable with [`Self::cancel_timer`].
    ///
    /// Timer ids are `(dispatch index << 16) | within-dispatch index`:
    /// strictly increasing in arming order (like the old global counter)
    /// and — because dispatch indices are assigned by the engine's serial
    /// scan, never by worker threads — independent of the executor's
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if a single callback arms more than 2^16 timers.
    pub fn set_timer(&mut self, after: Duration, token: T) -> TimerId {
        let local = u64::from(self.timers_armed);
        self.timers_armed = self
            .timers_armed
            .checked_add(1)
            .expect("more than 65536 timers armed in a single dispatch");
        let id = TimerId(self.timer_base | local);
        self.effects.push(Effect::SetTimer {
            id,
            at: self.now + after,
            token,
        });
        id
    }

    /// Cancels a previously armed timer. Cancelling a timer that already
    /// fired (or was already cancelled) is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Removes this node from the world after the callback returns: no
    /// further packets or timers will be delivered to it. Used for vehicles
    /// leaving the highway (including attackers fleeing detection).
    pub fn despawn(&mut self) {
        self.effects.push(Effect::Despawn);
    }
}
