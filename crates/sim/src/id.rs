//! Node identifiers.

use std::fmt;

/// A dense, world-assigned identifier for a simulated node.
///
/// `NodeId` identifies the *physical* node inside one [`World`](crate::World)
/// (its radio, position, and inbox). It is distinct from protocol-level
/// identities: a vehicle's pseudonymous identity may change over time (e.g.
/// after certificate renewal) while its `NodeId` never does.
///
/// # Examples
///
/// ```
/// use blackdp_sim::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, for direct slot addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
