//! Virtual time for the discrete-event simulator.
//!
//! Simulation time is a [`Time`] measured in integer microseconds since the
//! start of the run. Integer time (rather than `f64` seconds) keeps event
//! ordering exact and runs reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since the simulation epoch.
///
/// # Examples
///
/// ```
/// use blackdp_sim::{Duration, Time};
///
/// let t = Time::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert!(t > Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros)
    }

    /// Creates a time from whole milliseconds, saturating at [`Time::MAX`].
    ///
    /// Saturating (rather than wrapping in release builds) matters now that
    /// `Time` is constructed from untrusted daemon config values and
    /// wall-clock deltas, where `u64::MAX`-ish inputs are reachable.
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis.saturating_mul(1_000))
    }

    /// Creates a time from whole seconds, saturating at [`Time::MAX`].
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs.saturating_mul(1_000_000))
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Returns the duration since `earlier`, or [`Duration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_add(rhs.0)
                .expect("simulation time overflowed"),
        )
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use blackdp_sim::Duration;
///
/// let d = Duration::from_millis(1) + Duration::from_micros(500);
/// assert_eq!(d.as_micros(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from whole milliseconds, saturating at the maximum
    /// representable span.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis.saturating_mul(1_000))
    }

    /// Creates a duration from whole seconds, saturating at the maximum
    /// representable span.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs.saturating_mul(1_000_000))
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        let micros = secs * 1e6;
        assert!(micros <= u64::MAX as f64, "duration too large");
        Duration(micros.round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("duration overflowed"))
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflowed"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_millis(3).as_micros(), 3_000);
        assert_eq!(Time::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t - Time::from_secs(1), Duration::from_millis(500));
    }

    #[test]
    fn since_and_saturating_since() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(3);
        assert_eq!(b.since(a), Duration::from_secs(2));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_on_future() {
        let _ = Time::from_secs(1).since(Time::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(Duration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        // Regression: these used to be plain multiplications that wrapped
        // silently in release builds (Time::from_secs(u64::MAX) came out as
        // a small bogus instant).
        assert_eq!(Time::from_secs(u64::MAX), Time::MAX);
        assert_eq!(Time::from_millis(u64::MAX), Time::MAX);
        assert_eq!(Time::from_secs(u64::MAX / 2), Time::MAX);
        assert_eq!(
            Duration::from_secs(u64::MAX).as_micros(),
            u64::MAX,
            "duration seconds saturate"
        );
        assert_eq!(Duration::from_millis(u64::MAX).as_micros(), u64::MAX);
        // In-range values are unaffected.
        assert_eq!(Time::from_secs(17).as_micros(), 17_000_000);
        assert_eq!(Duration::from_millis(17).as_micros(), 17_000);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![Time::from_secs(3), Time::ZERO, Time::from_millis(10)];
        times.sort();
        assert_eq!(
            times,
            vec![Time::ZERO, Time::from_millis(10), Time::from_secs(3)]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Time::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(Duration::from_micros(250).to_string(), "0.000250s");
    }
}
