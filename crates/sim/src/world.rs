//! The simulation world: nodes, radio medium, and the event loop.

use std::any::Any;
use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::event::{Channel, EventQueue, Occurrence, Scheduled};
use crate::fault::{FaultInjector, FaultPlan, Transition};
use crate::grid::SpatialGrid;
use crate::node::{Context, Effect, Node, StatSink, TIMER_LOCAL_BITS};
use crate::oracle::{InvariantCheck, Oracle, SimEvent, Violation};
use crate::shard::{ShardDiagnostics, ShardedIndex, SlotView};
use crate::{Duration, NodeId, Stats, Time};

#[path = "executor.rs"]
mod executor;

/// The radio propagation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RadioModel {
    /// Classic unit disk: reception succeeds iff the receiver is within
    /// `radio_range_m` (the paper's assumption of an identical,
    /// bidirectional DSRC range).
    UnitDisk,
    /// Distance-dependent fading: reception is certain within
    /// `full_fraction · radio_range_m`, impossible beyond `radio_range_m`,
    /// and decays linearly in between — a lightweight stand-in for
    /// log-distance path loss without per-link state.
    Fading {
        /// Fraction of the range with guaranteed reception, in `(0, 1]`.
        full_fraction: f64,
    },
}

/// Worlds with at most this many node slots answer broadcast queries by
/// brute-force scan regardless of the configured [`NeighborIndex`]: one
/// grid rebuild costs more than scanning the whole population.
const SMALL_WORLD_SCAN_MAX: usize = 64;

/// The data structure the radio medium uses to find broadcast receivers.
///
/// Both strategies yield **bit-identical** simulations: the grid applies the
/// same inclusive range check to the same positions and hands receivers to
/// the medium in the same ascending-id order as the scan, so every random
/// draw (fading, loss, burst, jitter) happens in the same sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborIndex {
    /// Spatial hash grid with cell size `radio_range_m`: O(neighbors) per
    /// broadcast, rebuilt at most once per virtual timestamp. The default.
    #[default]
    Grid,
    /// Brute-force scan over every node: O(N) per broadcast. Kept as the
    /// reference implementation for differential tests and benchmarks.
    Scan,
}

/// The engine answering broadcast neighbor queries.
///
/// Mirrors [`NeighborIndex`]: every backend is **bit-identical** — same
/// inclusive range check on the same live-evaluated positions, same
/// ascending-id receiver order, hence the same RNG draw sequence, traces,
/// `Stats::digest`, and [`EngineStamp`] witnesses for any shard count. The
/// backend only changes how fast queries are answered.
///
/// The backend applies when [`NeighborIndex::Grid`] is selected (the
/// default); `NeighborIndex::Scan` and small worlds
/// (≤ `SMALL_WORLD_SCAN_MAX` slots) always use the brute-force scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldBackend {
    /// The serial [`SpatialGrid`], rebuilt once per `(timestamp, slots)`
    /// stamp. The default, and the differential oracle for the sharded
    /// backend.
    #[default]
    Serial,
    /// Spatially sharded index: contiguous bands of grid-cell columns with
    /// parallel per-band rebuilds, deterministic boundary handoff merges,
    /// and a motion-bound staleness horizon (see
    /// [`WorldConfig::motion_bound_mps`]) that makes rebuilds rare instead
    /// of per-timestamp. See the `shard` module docs for the design.
    Sharded {
        /// Number of bands (shard count); `0` is treated as `1`.
        shards: u32,
    },
}

/// Which event loop [`World::run_until`] drives.
///
/// Both executors are **bit-identical**: the windowed executor stages
/// handler effects and commits them serially in the exact `(time, seq)`
/// order the serial loop would have used, so traces, `Stats::digest`, and
/// [`EngineStamp`] witnesses agree for any thread count. See the
/// `executor` module docs for the safety argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorMode {
    /// The classic one-event-at-a-time loop. The default, and the
    /// differential oracle for the windowed executor.
    #[default]
    Serial,
    /// Conservative-window parallel executor: runs of same-window
    /// deliveries execute their handlers on worker threads, then commit
    /// serially. `threads = 0` means "use
    /// [`thread_budget`](crate::thread_budget)".
    Windowed {
        /// Worker count; `0` defers to the `BLACKDP_THREADS` budget.
        threads: usize,
    },
}

/// Physical-layer and engine configuration for a [`World`].
///
/// Defaults follow the paper's Table I: a 1000 m DSRC transmission range
/// with a small per-hop latency, a lossless channel, and a fast wired
/// backbone between RSUs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Unit-disk radio range in meters (DSRC: up to 1000 m).
    pub radio_range_m: f64,
    /// Fixed per-hop radio latency (propagation + MAC + processing).
    pub radio_latency: Duration,
    /// Uniform random extra latency in `[0, radio_jitter]`, breaking ties
    /// between simultaneous transmissions.
    pub radio_jitter: Duration,
    /// Independent per-link drop probability in `[0, 1]`.
    pub radio_loss: f64,
    /// The propagation model applied on top of `radio_range_m`.
    pub radio_model: RadioModel,
    /// Latency of the wired RSU/TA backbone.
    pub wired_latency: Duration,
    /// Seed for the world's deterministic random stream.
    pub seed: u64,
    /// How broadcast receivers are located (grid vs. brute-force scan).
    pub neighbor_index: NeighborIndex,
    /// Which engine answers grid-indexed neighbor queries (serial grid vs.
    /// sharded bands). Bit-identical by construction; see [`WorldBackend`].
    pub backend: WorldBackend,
    /// Upper bound on any node's speed in meters per virtual second,
    /// consumed by the sharded backend's staleness horizon: the index
    /// stays provably exact while no node can have drifted past its cell
    /// slack, so rebuilds happen every `~range / (2 · bound)` virtual
    /// seconds instead of every timestamp. `f64::INFINITY` (the default)
    /// disables the horizon — the sharded index rebuilds on every new
    /// timestamp, exact for arbitrary motion. `0.0` declares a static
    /// world (never rebuild). Declaring a bound smaller than a node's
    /// actual speed breaks the coverage guarantee; the serial backend
    /// ignores this field.
    pub motion_bound_mps: f64,
    /// Which event loop [`World::run_until`] drives (serial oracle vs.
    /// conservative-window parallel executor). Bit-identical by
    /// construction; see [`ExecutorMode`].
    pub executor: ExecutorMode,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            radio_range_m: 1000.0,
            radio_latency: Duration::from_millis(2),
            radio_jitter: Duration::from_micros(500),
            radio_loss: 0.0,
            radio_model: RadioModel::UnitDisk,
            wired_latency: Duration::from_millis(1),
            seed: 0,
            neighbor_index: NeighborIndex::Grid,
            backend: WorldBackend::Serial,
            motion_bound_mps: f64::INFINITY,
            executor: ExecutorMode::Serial,
        }
    }
}

struct Slot<P, T> {
    node: Box<dyn Node<P, T>>,
    active: bool,
    /// Crashed (fault-injected pause): the node keeps its slot and state
    /// but receives nothing until resumed.
    paused: bool,
    /// Timers with an id below this were armed before the node's most
    /// recent crash and are stale: a rebooted node does not remember them.
    timer_barrier: u64,
}

/// Narrow, `Sync` view over the slot vector handed to the sharded index so
/// its band workers can evaluate positions from scoped threads.
/// (`dyn Node` is `Send + Sync` by trait bound, so sharing `&[Slot]` is
/// safe; nothing else of the world crosses a thread boundary.)
struct SlotsView<'a, P, T>(&'a [Slot<P, T>]);

impl<P: 'static, T: 'static> SlotView for SlotsView<'_, P, T> {
    fn slot_count(&self) -> usize {
        self.0.len()
    }

    fn is_active(&self, index: u32) -> bool {
        self.0[index as usize].active
    }

    fn position(&self, index: u32, now: Time) -> crate::Position {
        self.0[index as usize].node.position(now)
    }
}

/// A discrete-event simulation of radio-equipped nodes on a plane.
///
/// `P` is the packet payload type shared by every protocol in the run; `T`
/// is the timer-token type. Both are typically enums defined by the
/// scenario layer.
///
/// # Examples
///
/// ```
/// use blackdp_sim::{Channel, Context, Node, NodeId, Position, Time, World, WorldConfig};
///
/// struct Echo {
///     at: Position,
///     heard: u32,
/// }
///
/// impl Node<u32, ()> for Echo {
///     fn position(&self, _now: Time) -> Position {
///         self.at
///     }
///     fn on_packet(&mut self, ctx: &mut Context<'_, u32, ()>, from: NodeId, n: u32, _ch: Channel) {
///         self.heard += 1;
///         if n > 0 {
///             ctx.send(from, n - 1);
///         }
///     }
///     fn on_timer(&mut self, _ctx: &mut Context<'_, u32, ()>, _token: ()) {}
/// }
///
/// let mut world = World::new(WorldConfig::default());
/// let a = world.spawn(Box::new(Echo { at: Position::new(0.0, 0.0), heard: 0 }));
/// let b = world.spawn(Box::new(Echo { at: Position::new(500.0, 0.0), heard: 0 }));
/// world.inject(Time::ZERO, a, b, 3, Channel::Radio);
/// world.run_to_completion(10_000);
/// let echo_a: &Echo = world.get(a).unwrap();
/// let echo_b: &Echo = world.get(b).unwrap();
/// assert_eq!(echo_a.heard + echo_b.heard, 4);
/// ```
pub struct World<P, T> {
    cfg: WorldConfig,
    nodes: Vec<Slot<P, T>>,
    queue: EventQueue<P, T>,
    cancelled_timers: HashSet<u64>,
    now: Time,
    rng: StdRng,
    stats: Stats,
    /// Index assigned to the next handler dispatch. Dispatch indices are
    /// handed out in serial `(time, seq)` order — by the serial loop and
    /// by the windowed executor's serial scan alike — and form the high
    /// bits of every [`TimerId`](crate::TimerId) armed during that
    /// dispatch, so timer ids are independent of the thread count.
    next_dispatch: u64,
    /// Timers ever armed, across all dispatches (an [`EngineStamp`]
    /// witness; the successor of the retired global timer-id counter).
    timers_armed_total: u64,
    tap: Option<Tap<P>>,
    injector: Option<FaultInjector>,
    tamper: Option<TamperHook<P>>,
    /// Installed invariant checks, if any (`None` = zero-cost path).
    oracle: Option<Box<Oracle<P>>>,
    /// Spatial index over active-node positions, rebuilt lazily.
    grid: SpatialGrid,
    /// `(timestamp, slot count)` the grid was last built for. Positions are
    /// pure functions of time and the active set only shrinks within a
    /// timestamp (despawn is one-way; spawning bumps the slot count), so a
    /// matching stamp guarantees the grid is a superset of the live active
    /// set — stale entries are filtered at query time.
    grid_stamp: Option<(Time, usize)>,
    /// Sharded spatial index, built lazily on first use when the backend
    /// is [`WorldBackend::Sharded`]. Like `grid`, this is a derived cache:
    /// it never appears in [`EngineStamp`] witnesses.
    sharded: Option<ShardedIndex>,
    /// Observer of radio deliveries whose sender and receiver sit in
    /// different shard bands; `None` costs nothing.
    boundary_tap: Option<BoundaryTap<P>>,
    /// Observer of windowed-executor window contents and boundaries;
    /// `None` costs nothing and the serial executor never fires it.
    window_tap: Option<WindowTap<P>>,
    /// Reusable receiver buffer for the broadcast hot path.
    recv_scratch: Vec<(u32, f64)>,
    /// Reusable effect buffer for the dispatch hot path.
    effects_scratch: Vec<Effect<P, T>>,
    /// Persistent windowed-executor worker pool, created on the first
    /// multi-lane window and reused for every window after it (spawning
    /// threads per window would dominate sub-millisecond windows). A
    /// derived runtime resource like `grid`: never part of a stamp.
    window_pool: Option<executor::WindowPool<P, T>>,
}

/// A verification witness of the engine's full dynamic state at one
/// instant, captured by [`World::engine_stamp`].
///
/// The simulation is deterministic: its state at any virtual time is a
/// pure function of the construction inputs and the event history. A
/// stamp therefore does not need to serialize nodes or queued payloads —
/// it pins down the trajectory with a handful of exact witnesses (clock,
/// scheduling counters, the RNG's full internal state, digests of the
/// counters and of every node's opt-in
/// [`Node::state_digest`](crate::Node::state_digest)). Two runs whose
/// stamps agree at a checkpoint boundary have made identical random
/// draws, scheduled identical occurrences, and hold identical witnessed
/// node state — which is what checkpoint/restore verifies before resuming
/// a trial mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStamp {
    /// Current virtual time in microseconds.
    pub now_micros: u64,
    /// Occurrences ever scheduled (the queue's insertion counter).
    pub scheduled: u64,
    /// Occurrences still pending in the queue.
    pub pending: u64,
    /// Timers ever armed.
    pub timers_armed: u64,
    /// The engine RNG's full internal state (xoshiro256++ words).
    pub rng_state: [u64; 4],
    /// Digest of every statistics counter ([`Stats::digest`]).
    pub stats_digest: u64,
    /// Order-sensitive fold of every spawned node's
    /// [`Node::state_digest`](crate::Node::state_digest) (inactive slots
    /// contribute their liveness flags, so despawn/crash state is pinned
    /// too).
    pub node_digest: u64,
    /// Spawned nodes still active.
    pub active_nodes: u32,
}

/// A delivery observer: called for every packet delivered to an active
/// node, with `(time, from, to, payload, channel)`.
pub type Tap<P> = Box<dyn FnMut(Time, NodeId, NodeId, &P, Channel)>;

/// A payload-tampering hook installed via [`World::set_tamper_hook`]:
/// called on deliveries selected by an active tamper window with a
/// mutable payload and the world's RNG. Returns whether the payload was
/// actually mutated (counted as `fault.tamper`).
pub type TamperHook<P> = Box<dyn FnMut(&mut P, &mut StdRng) -> bool>;

/// A cross-shard delivery observer installed via
/// [`World::set_boundary_tap`]: called with
/// `(time, from, to, payload, from_band, to_band)` for every radio packet
/// delivered to an active node whose sender and receiver currently sit in
/// **different** shard bands. Only fires under [`WorldBackend::Sharded`]
/// once the band geometry exists; purely observational (no RNG draws, no
/// stats), so installing it cannot perturb a trace.
pub type BoundaryTap<P> = Box<dyn FnMut(Time, NodeId, NodeId, &P, u32, u32)>;

/// One observation fired by the windowed executor's serial scan phase.
///
/// Purely observational (fired before any handler runs, in exact
/// `(time, seq)` order, with no RNG draws and no stats), so installing a
/// window tap cannot perturb a trace. The serial executor never fires it.
#[derive(Debug)]
pub enum WindowEvent<'a, P> {
    /// A delivery admitted to the current parallel window, in serial
    /// order. Fired after the engine's gating (inactive / crashed drops),
    /// so every `Delivery` will reach its node's `on_packet`.
    Delivery {
        /// Delivery time.
        at: Time,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Channel the packet travelled on.
        channel: Channel,
        /// The delivered payload.
        payload: &'a P,
    },
    /// The window's scan is complete; handler execution is about to
    /// begin. `at` is the window's last event time. Listeners that batch
    /// work across a window (e.g. the scenario-level verify prefetcher)
    /// flush here, so results are warm before any handler needs them.
    Flush {
        /// The window's last event time.
        at: Time,
    },
}

/// A window observer installed via [`World::set_window_tap`].
pub type WindowTap<P> = Box<dyn FnMut(WindowEvent<'_, P>)>;

impl<P, T> std::fmt::Debug for World<P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl<P: Clone + Send + 'static, T: Clone + Send + 'static> World<P, T> {
    /// Creates an empty world with the given configuration.
    pub fn new(cfg: WorldConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.radio_loss),
            "radio_loss must be a probability in [0, 1]"
        );
        assert!(
            cfg.radio_range_m > 0.0 && cfg.radio_range_m.is_finite(),
            "radio_range_m must be positive and finite"
        );
        if let RadioModel::Fading { full_fraction } = cfg.radio_model {
            assert!(
                full_fraction > 0.0 && full_fraction <= 1.0,
                "full_fraction must be in (0, 1]"
            );
        }
        assert!(
            cfg.motion_bound_mps >= 0.0,
            "motion_bound_mps must be non-negative (or infinite for exact mode)"
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        World {
            cfg,
            nodes: Vec::new(),
            queue: EventQueue::new(),
            cancelled_timers: HashSet::new(),
            now: Time::ZERO,
            rng,
            stats: Stats::new(),
            next_dispatch: 0,
            timers_armed_total: 0,
            tap: None,
            injector: None,
            tamper: None,
            oracle: None,
            grid: SpatialGrid::new(),
            grid_stamp: None,
            sharded: None,
            boundary_tap: None,
            window_tap: None,
            recv_scratch: Vec::new(),
            effects_scratch: Vec::new(),
            window_pool: None,
        }
    }

    /// Installs a [`FaultPlan`], replacing any previous one. Crash and
    /// restart edges are applied at their scheduled virtual times as the
    /// world runs; window-based faults (wired outages, radio bursts,
    /// tampering) take effect whenever the clock is inside their window.
    ///
    /// # Panics
    ///
    /// Panics if the plan is internally inconsistent or schedules a crash
    /// edge in the past.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let injector = FaultInjector::new(plan);
        if let Some(t) = injector.next_transition_at() {
            assert!(t >= self.now, "fault plan schedules a crash in the past");
        }
        self.injector = Some(injector);
    }

    /// Installs the payload-tampering hook consulted during the plan's
    /// tamper windows. Without a hook, tamper windows have no effect.
    pub fn set_tamper_hook(&mut self, hook: TamperHook<P>) {
        self.tamper = Some(hook);
    }

    /// Installs a delivery observer invoked for every packet that reaches
    /// an active node (after loss/range filtering, at delivery time).
    /// Replaces any previous tap. Used by scenario-level frame journals.
    pub fn set_tap(&mut self, tap: Tap<P>) {
        self.tap = Some(tap);
    }

    /// Installs a [`BoundaryTap`] observing radio deliveries that cross a
    /// shard-band boundary. Replaces any previous tap. Inert unless the
    /// backend is [`WorldBackend::Sharded`] and large enough to index.
    pub fn set_boundary_tap(&mut self, tap: BoundaryTap<P>) {
        self.boundary_tap = Some(tap);
    }

    /// Installs a [`WindowTap`] observing the windowed executor's window
    /// contents and flush boundaries. Replaces any previous tap. Inert
    /// under [`ExecutorMode::Serial`] (and for windows too small to run
    /// in parallel); see [`WindowEvent`] for why it cannot perturb a
    /// trace.
    pub fn set_window_tap(&mut self, tap: WindowTap<P>) {
        self.window_tap = Some(tap);
    }

    /// Activity counters of the sharded backend ([`ShardDiagnostics`]),
    /// once a sharded query has run. `None` under the serial backend (or
    /// before the first broadcast). Deliberately not part of
    /// [`Stats`]: these counters depend on the backend, while
    /// `Stats::digest` must stay backend-invariant.
    pub fn shard_diagnostics(&self) -> Option<ShardDiagnostics> {
        self.sharded.as_ref().map(|s| s.diagnostics())
    }

    /// The shard band owning `id`'s current position, once band geometry
    /// exists. `None` under the serial backend, before the first sharded
    /// query, or if `id` is not active.
    pub fn shard_band_of(&self, id: NodeId) -> Option<u32> {
        let map = self.sharded.as_ref()?.band_map()?;
        Some(map.band_of_pos(self.position_of(id)?) as u32)
    }

    /// Installs a runtime invariant check, evaluated against every packet
    /// event from this point on. Checks accumulate; violations from all of
    /// them share one bounded sink (see [`Self::violations`]).
    pub fn add_invariant(&mut self, check: Box<dyn InvariantCheck<P>>) {
        self.oracle
            .get_or_insert_with(|| Box::new(Oracle::new()))
            .checks
            .push(check);
    }

    /// Runs every installed check's end-of-run audit. Idempotent; called
    /// by harnesses after the simulation horizon.
    pub fn finish_invariants(&mut self) {
        let now = self.now;
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.finish(now);
        }
    }

    /// Invariant violations recorded so far (empty without checks).
    pub fn violations(&self) -> &[Violation] {
        self.oracle
            .as_deref()
            .map(|o| o.sink.violations())
            .unwrap_or(&[])
    }

    /// Violations discarded because the bounded sink was full.
    pub fn violations_overflow(&self) -> u64 {
        self.oracle.as_deref().map_or(0, |o| o.sink.overflow())
    }

    /// `(name, times exercised)` for every installed invariant check.
    pub fn invariants_exercised(&self) -> Vec<(&'static str, u64)> {
        self.oracle
            .as_deref()
            .map(|o| o.checks.iter().map(|c| (c.name(), c.exercised())).collect())
            .unwrap_or_default()
    }

    /// Routes one engine event to the installed checks, if any.
    #[inline]
    fn observe(&mut self, at: Time, event: SimEvent<'_, P>) {
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.observe(at, &event);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The world's configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Collected statistics counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Number of spawned nodes (active or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Event-slab slots ever created — the queue's allocation high-water
    /// mark. Steady-state traffic recycles slots, so once a workload
    /// reaches its plateau this stops growing; the perf harness uses it to
    /// assert the event loop runs allocation-free per event.
    pub fn event_slab_slots(&self) -> usize {
        self.queue.slab_capacity()
    }

    /// Captures an [`EngineStamp`] witnessing the engine's dynamic state
    /// right now. Cheap (one pass over nodes and counters, no payload
    /// serialization); used by scenario checkpointing at tick boundaries.
    pub fn engine_stamp(&self) -> EngineStamp {
        let mut node_digest = 0xCBF2_9CE4_8422_2325u64;
        let mut active_nodes = 0u32;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                node_digest ^= u64::from(b);
                node_digest = node_digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.active {
                active_nodes += 1;
            }
            mix(i as u64);
            mix(u64::from(slot.active) | u64::from(slot.paused) << 1);
            mix(slot.timer_barrier);
            mix(slot.node.state_digest());
        }
        EngineStamp {
            now_micros: self.now.as_micros(),
            scheduled: self.queue.pushed(),
            pending: self.queue.len() as u64,
            timers_armed: self.timers_armed_total,
            rng_state: self.rng.state(),
            stats_digest: self.stats.digest(),
            node_digest,
            active_nodes,
        }
    }

    /// Returns true if `id` is spawned and still active (not despawned).
    pub fn is_active(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.as_usize())
            .map(|s| s.active)
            .unwrap_or(false)
    }

    /// Adds a node to the world, invoking its [`Node::on_start`] callback at
    /// the current virtual time. Returns its id.
    pub fn spawn(&mut self, node: Box<dyn Node<P, T>>) -> NodeId {
        let id =
            NodeId::new(u32::try_from(self.nodes.len()).expect("more than u32::MAX nodes spawned"));
        self.nodes.push(Slot {
            node,
            active: true,
            paused: false,
            timer_barrier: 0,
        });
        self.dispatch(id, |node, ctx| node.on_start(ctx));
        id
    }

    /// Returns true if `id` is currently crashed (paused by fault
    /// injection or an explicit [`Self::pause`]).
    pub fn is_paused(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.as_usize())
            .map(|s| s.paused)
            .unwrap_or(false)
    }

    /// Crashes node `id`: it keeps its slot and in-memory state but
    /// receives no packets and no timers until [`Self::resume`]. Timers
    /// armed before the crash are forgotten, like on a real reboot — even
    /// ones scheduled to fire after the restart. No-op if the node is
    /// already paused or was despawned.
    pub fn pause(&mut self, id: NodeId) {
        // Every timer armed before this instant carries a dispatch index
        // below `next_dispatch`, hence an id below this barrier; every
        // timer armed after the restart carries one at or above it.
        let barrier = self.next_dispatch << TIMER_LOCAL_BITS;
        if let Some(slot) = self.nodes.get_mut(id.as_usize()) {
            if slot.active && !slot.paused {
                slot.paused = true;
                slot.timer_barrier = barrier;
                self.stats.incr("fault.crash");
            }
        }
    }

    /// Resumes a crashed node, invoking its
    /// [`Node::on_restart`](crate::Node::on_restart) callback (which
    /// defaults to re-running `on_start`). No-op if the node is not
    /// paused.
    pub fn resume(&mut self, id: NodeId) {
        let Some(slot) = self.nodes.get_mut(id.as_usize()) else {
            return;
        };
        if !slot.paused {
            return;
        }
        slot.paused = false;
        if slot.active {
            self.stats.incr("fault.restart");
            self.dispatch(id, |node, ctx| node.on_restart(ctx));
        }
    }

    /// Marks a node inactive: no further packets or timers reach it. The
    /// node object remains available for inspection via [`Self::get`].
    pub fn despawn(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.as_usize()) {
            slot.active = false;
        }
    }

    /// Downcasts the node `id` to its concrete type for inspection.
    ///
    /// Returns `None` if `id` was never spawned or the type does not match.
    pub fn get<N: Any>(&self, id: NodeId) -> Option<&N> {
        let slot = self.nodes.get(id.as_usize())?;
        (slot.node.as_ref() as &dyn Any).downcast_ref::<N>()
    }

    /// Mutable variant of [`Self::get`].
    pub fn get_mut<N: Any>(&mut self, id: NodeId) -> Option<&mut N> {
        let slot = self.nodes.get_mut(id.as_usize())?;
        (slot.node.as_mut() as &mut dyn Any).downcast_mut::<N>()
    }

    /// Position of node `id` at the current time, if it is active.
    pub fn position_of(&self, id: NodeId) -> Option<crate::Position> {
        let slot = self.nodes.get(id.as_usize())?;
        slot.active.then(|| slot.node.position(self.now))
    }

    /// Schedules an externally injected packet delivery — the way scenario
    /// drivers and tests kick off traffic.
    ///
    /// This is a *reliable, out-of-band* control-plane operation: delivery
    /// bypasses the radio medium entirely — no range check, no loss,
    /// fading or burst draw, no jitter — and arrives exactly at `at`. Use
    /// [`Self::inject_radio`] when an injected packet should experience
    /// the medium like node-originated traffic.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, at: Time, from: NodeId, to: NodeId, payload: P, channel: Channel) {
        assert!(at >= self.now, "cannot inject an event in the past");
        self.observe(
            at,
            SimEvent::Enqueued {
                from,
                to,
                channel,
                dist_m: None,
                payload: &payload,
            },
        );
        self.queue.push(
            at,
            to,
            Occurrence::Deliver {
                from,
                payload,
                channel,
            },
        );
    }

    /// Injects a packet *through* the radio medium: range, fading, loss
    /// and burst-loss draws and jitter apply exactly as for a
    /// node-originated unicast, with `at` as the transmission instant.
    ///
    /// Positions are evaluated and random draws made at call time from
    /// the world's seeded stream, so calls must be issued in a
    /// deterministic order to keep runs reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_radio(&mut self, at: Time, from: NodeId, to: NodeId, payload: P) {
        assert!(at >= self.now, "cannot inject an event in the past");
        self.stats.incr("radio.tx");
        self.try_radio_deliver(at, from, to, payload);
    }

    /// Executes the next pending event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        // Crash/restart edges interleave with queued events in time order.
        // A restart may enqueue events *earlier* than the current queue
        // head (e.g. a short timer from `on_restart`), so edges are
        // applied one at a time before committing to an event.
        while let Some(t) = self.queue.peek_time() {
            match self.injector.as_ref().and_then(|i| i.next_transition_at()) {
                Some(tr) if tr <= t => {
                    self.apply_next_fault_transition(tr);
                }
                _ => break,
            }
        }
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "event queue went backwards");
        self.now = event.time;
        self.process_event(event);
        true
    }

    /// Executes one popped event at `self.now == event.time`: gating
    /// (inactive / crashed / stale-timer drops), tamper draws, taps,
    /// oracle observations, and the handler dispatch itself. Shared by
    /// [`Self::step`] and the windowed executor's solo-event fallbacks.
    fn process_event(&mut self, event: Scheduled<P, T>) {
        let id = event.node;
        let active = self.is_active(id);
        match event.occurrence {
            Occurrence::Deliver {
                from,
                mut payload,
                channel,
            } => {
                if !active {
                    self.stats.incr("drop.inactive");
                    self.observe(
                        event.time,
                        SimEvent::Dropped {
                            from,
                            to: id,
                            channel,
                            payload: &payload,
                        },
                    );
                    return;
                }
                if self.is_paused(id) {
                    self.stats.incr("fault.drop.crashed");
                    self.observe(
                        event.time,
                        SimEvent::Dropped {
                            from,
                            to: id,
                            channel,
                            payload: &payload,
                        },
                    );
                    return;
                }
                if let Some(hook) = self.tamper.as_mut() {
                    let p = self
                        .injector
                        .as_ref()
                        .map_or(0.0, |i| i.tamper_probability(self.now));
                    if p > 0.0 && self.rng.random::<f64>() < p && hook(&mut payload, &mut self.rng)
                    {
                        self.stats.incr("fault.tamper");
                    }
                }
                match channel {
                    Channel::Radio => self.stats.incr("radio.rx"),
                    Channel::Wired => self.stats.incr("wired.rx"),
                }
                if let Some(tap) = self.tap.as_mut() {
                    tap(self.now, from, id, &payload, channel);
                }
                if self.boundary_tap.is_some() && matches!(channel, Channel::Radio) {
                    self.fire_boundary_tap(from, id, &payload);
                }
                self.observe(
                    event.time,
                    SimEvent::Delivered {
                        from,
                        to: id,
                        channel,
                        payload: &payload,
                    },
                );
                self.dispatch(id, |node, ctx| node.on_packet(ctx, from, payload, channel));
            }
            Occurrence::Timer {
                id: timer_id,
                token,
            } => {
                // The emptiness guard skips hashing entirely on the common
                // path — most runs cancel no or very few timers.
                if !self.cancelled_timers.is_empty() && self.cancelled_timers.remove(&timer_id.0) {
                    return;
                }
                if !active {
                    return;
                }
                let slot = &self.nodes[id.as_usize()];
                if slot.paused || timer_id.0 < slot.timer_barrier {
                    // Armed before the node's last crash: a rebooted node
                    // does not remember it.
                    self.stats.incr("fault.drop.timer");
                    return;
                }
                self.dispatch(id, |node, ctx| node.on_timer(ctx, token));
            }
        }
    }

    /// Applies the single next due crash/restart edge at or before
    /// `limit`, advancing the clock to its instant. Returns whether one
    /// was applied.
    fn apply_next_fault_transition(&mut self, limit: Time) -> bool {
        let Some(injector) = self.injector.as_mut() else {
            return false;
        };
        let Some((t, tr)) = injector.pop_due(limit) else {
            return false;
        };
        if t > self.now {
            self.now = t;
        }
        match tr {
            Transition::Down(id) => self.pause(id),
            Transition::Up(id) => self.resume(id),
        }
        true
    }

    /// Runs events until virtual time exceeds `deadline` (events at exactly
    /// `deadline` are executed). Afterwards `now() == deadline`.
    ///
    /// Which event loop runs is chosen by [`WorldConfig::executor`]; both
    /// are bit-identical (see [`ExecutorMode`]).
    pub fn run_until(&mut self, deadline: Time) {
        match self.cfg.executor {
            ExecutorMode::Serial => self.run_until_serial(deadline),
            ExecutorMode::Windowed { threads } => self.run_until_windowed(deadline, threads),
        }
    }

    /// The classic serial event loop behind [`Self::run_until`].
    fn run_until_serial(&mut self, deadline: Time) {
        loop {
            while let Some(t) = self.queue.peek_time() {
                if t > deadline {
                    break;
                }
                self.step();
            }
            // Idle stretches may still hold crash/restart edges, and a
            // restart can enqueue fresh events, so alternate until both
            // sides drain.
            if !self.apply_next_fault_transition(deadline) {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until the event queue drains or `max_events` have executed.
    /// Returns the number of events executed. Always drives the serial
    /// loop regardless of [`WorldConfig::executor`] — callers use it for
    /// bounded drains and tests where per-event control matters, not for
    /// throughput.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut executed = 0;
        while executed < max_events && self.step() {
            executed += 1;
        }
        executed
    }

    /// Runs `f` against node `id` with a fresh serial-mode [`Context`]
    /// (stats counted directly, zero allocations on the recycled effect
    /// buffer), then commits the effects it emitted. The two-phase
    /// stage/commit shape is the same as the windowed executor's — here
    /// the commit simply follows each stage immediately.
    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<P, T>, &mut Context<'_, P, T>),
    {
        // The effect buffer is recycled across dispatches; a (reentrant)
        // `spawn` from inside `apply_effects` would simply fall back to a
        // fresh allocation via `mem::take`.
        let mut effects = std::mem::take(&mut self.effects_scratch);
        effects.clear();
        let timer_base = self.next_dispatch << TIMER_LOCAL_BITS;
        self.next_dispatch += 1;
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            stats: StatSink::Direct(&mut self.stats),
            timer_base,
            timers_armed: 0,
            effects,
        };
        // Split borrows: the node lives in `self.nodes`, the context borrows
        // the engine's stats, so no aliasing occurs.
        let slot = self
            .nodes
            .get_mut(id.as_usize())
            .expect("dispatch to unspawned node");
        f(slot.node.as_mut(), &mut ctx);
        self.timers_armed_total += u64::from(ctx.timers_armed);
        let mut effects = ctx.effects;
        self.apply_effects(id, &mut effects);
        effects.clear();
        self.effects_scratch = effects;
    }

    fn apply_effects(&mut self, sender: NodeId, effects: &mut Vec<Effect<P, T>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Unicast { to, payload } => {
                    self.stats.incr("radio.tx");
                    self.try_radio_deliver(self.now, sender, to, payload);
                }
                Effect::Broadcast { payload } => {
                    self.stats.incr("radio.tx");
                    // Take the scratch buffer out so the loop below can call
                    // `&mut self` methods while iterating it; restored after.
                    let mut receivers = std::mem::take(&mut self.recv_scratch);
                    self.collect_broadcast_receivers(sender, &mut receivers);
                    // The final receiver takes the payload by move — one
                    // clone per broadcast saved, and a broadcast with a
                    // single receiver (the unicast-like common case for
                    // sparse traffic) clones nothing at all. `split_last`
                    // makes the split structural: the move-vs-clone choice
                    // cannot drift out of sync with the iteration, so there
                    // is no "payload already moved" state to guard against.
                    // The fading draws stay in receiver order (clones first,
                    // then the final move) to keep RNG consumption, and
                    // therefore traces, bit-identical.
                    if let Some((&(last_to, last_dist), rest)) = receivers.split_last() {
                        for &(to, dist) in rest {
                            if !self.link_succeeds(dist) {
                                self.stats.incr("radio.drop.fading");
                                continue;
                            }
                            self.try_radio_deliver_in_range(
                                self.now,
                                sender,
                                NodeId::new(to),
                                payload.clone(),
                                Some(dist),
                            );
                        }
                        if self.link_succeeds(last_dist) {
                            self.try_radio_deliver_in_range(
                                self.now,
                                sender,
                                NodeId::new(last_to),
                                payload,
                                Some(last_dist),
                            );
                        } else {
                            self.stats.incr("radio.drop.fading");
                        }
                    }
                    receivers.clear();
                    self.recv_scratch = receivers;
                }
                Effect::Wired { to, payload } => {
                    self.stats.incr("wired.tx");
                    if let Some(inj) = &self.injector {
                        if inj.wired_severed(sender, to, self.now) {
                            self.stats.incr("fault.drop.wired_outage");
                            continue;
                        }
                    }
                    let at = self.now + self.cfg.wired_latency;
                    self.observe(
                        at,
                        SimEvent::Enqueued {
                            from: sender,
                            to,
                            channel: Channel::Wired,
                            dist_m: None,
                            payload: &payload,
                        },
                    );
                    self.queue.push(
                        at,
                        to,
                        Occurrence::Deliver {
                            from: sender,
                            payload,
                            channel: Channel::Wired,
                        },
                    );
                }
                Effect::SetTimer { id, at, token } => {
                    self.queue.push(at, sender, Occurrence::Timer { id, token });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id.0);
                }
                Effect::Despawn => {
                    self.despawn(sender);
                }
            }
        }
    }

    /// Fills `out` with `(receiver index, distance)` pairs for every active
    /// node (other than `sender`) within radio range of `sender` now, in
    /// ascending index order — the order the linear scan enumerates nodes,
    /// which fixes the sequence of per-receiver random draws.
    fn collect_broadcast_receivers(&mut self, sender: NodeId, out: &mut Vec<(u32, f64)>) {
        out.clear();
        let Some(from_pos) = self.position_of(sender) else {
            // A node that despawned itself earlier in this callback
            // broadcasts into the void, matching the scan path.
            return;
        };
        let range = self.cfg.radio_range_m;
        // Small worlds: the O(N) scan beats the grid outright. Jittered
        // transmissions land on fresh timestamps, so nearly every broadcast
        // would pay a full grid rebuild to answer a single query — more
        // work than walking a few dozen slots directly. Both strategies
        // are bit-identical (same inclusive range check, same ascending-id
        // order), so the switch cannot perturb a trace.
        let index = if self.nodes.len() <= SMALL_WORLD_SCAN_MAX {
            NeighborIndex::Scan
        } else {
            self.cfg.neighbor_index
        };
        match index {
            NeighborIndex::Scan => {
                for (i, slot) in self.nodes.iter().enumerate() {
                    let index = i as u32;
                    if index == sender.index() || !slot.active {
                        continue;
                    }
                    let dist = from_pos.distance_to(slot.node.position(self.now));
                    if dist <= range {
                        out.push((index, dist));
                    }
                }
            }
            NeighborIndex::Grid => match self.cfg.backend {
                WorldBackend::Serial => {
                    self.ensure_grid();
                    self.grid.query_into(from_pos, range, sender.index(), out);
                    // The grid was built at the start of this timestamp;
                    // drop nodes despawned since (the active set only
                    // shrinks). The query already yields ascending index
                    // order — the order the brute-force scan produces.
                    out.retain(|&(index, _)| self.nodes[index as usize].active);
                }
                WorldBackend::Sharded { shards } => {
                    self.ensure_sharded(shards);
                    let World {
                        sharded, nodes, now, ..
                    } = self;
                    let view = SlotsView(nodes.as_slice());
                    let index = sharded.as_mut().expect("ensure_sharded installed it");
                    // The sharded index filters `active` per candidate and
                    // evaluates positions live, so no retain pass is
                    // needed: the emitted set already matches the scan.
                    index.refresh(&view, *now);
                    index.query_into(&view, *now, from_pos, sender.index(), out);
                }
            },
        }
    }

    /// Installs (or re-shards) the sharded index for the configured shard
    /// count. Geometry and counters persist across calls with an unchanged
    /// count.
    fn ensure_sharded(&mut self, shards: u32) {
        let shards = shards.max(1) as usize;
        if self.sharded.as_ref().map(ShardedIndex::shard_count) != Some(shards) {
            self.sharded = Some(ShardedIndex::new(
                shards,
                self.cfg.radio_range_m,
                self.cfg.motion_bound_mps,
            ));
        }
    }

    /// Fires the boundary tap if this radio delivery crossed a shard-band
    /// boundary. Observational only — no RNG, no stats.
    fn fire_boundary_tap(&mut self, from: NodeId, to: NodeId, payload: &P) {
        let Some(map) = self.sharded.as_ref().and_then(ShardedIndex::band_map) else {
            return;
        };
        let (Some(from_pos), Some(to_pos)) = (self.position_of(from), self.position_of(to)) else {
            return;
        };
        let (from_band, to_band) = (map.band_of_pos(from_pos), map.band_of_pos(to_pos));
        if from_band != to_band {
            if let Some(tap) = self.boundary_tap.as_mut() {
                tap(
                    self.now,
                    from,
                    to,
                    payload,
                    from_band as u32,
                    to_band as u32,
                );
            }
        }
    }

    /// Rebuilds the spatial grid if the cached one is not for the current
    /// `(timestamp, slot count)`. Trajectories are pure functions of time,
    /// so one build per timestamp is exact for every query in that tick.
    fn ensure_grid(&mut self) {
        let stamp = (self.now, self.nodes.len());
        if self.grid_stamp == Some(stamp) {
            return;
        }
        let World {
            grid,
            nodes,
            now,
            cfg,
            ..
        } = self;
        let now = *now;
        grid.rebuild(
            cfg.radio_range_m,
            nodes.len(),
            nodes
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.active)
                .map(|(i, slot)| (i as u32, slot.node.position(now))),
        );
        self.grid_stamp = Some(stamp);
    }

    /// Active nodes (other than `id`) within radio range of `id` right now,
    /// located via the spatial grid, in ascending id order. Public for
    /// differential tests and benchmarks; the broadcast path uses the same
    /// machinery internally.
    pub fn neighbors_of(&mut self, id: NodeId) -> Vec<NodeId> {
        let prev = self.cfg.neighbor_index;
        self.cfg.neighbor_index = NeighborIndex::Grid;
        let mut scratch = std::mem::take(&mut self.recv_scratch);
        self.collect_broadcast_receivers(id, &mut scratch);
        self.cfg.neighbor_index = prev;
        let out = scratch.iter().map(|&(i, _)| NodeId::new(i)).collect();
        scratch.clear();
        self.recv_scratch = scratch;
        out
    }

    /// Reference implementation of [`Self::neighbors_of`]: a brute-force
    /// scan over every node. The two must agree exactly.
    pub fn neighbors_of_scan(&self, id: NodeId) -> Vec<NodeId> {
        let Some(from_pos) = self.position_of(id) else {
            return Vec::new();
        };
        let range = self.cfg.radio_range_m;
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let nid = NodeId::new(i as u32);
                if nid == id || !slot.active {
                    return None;
                }
                slot.node
                    .position(self.now)
                    .within_range(from_pos, range)
                    .then_some(nid)
            })
            .collect()
    }

    /// Draws whether a link of length `dist` succeeds under the configured
    /// propagation model (range already verified to be ≤ `radio_range_m`).
    fn link_succeeds(&mut self, dist: f64) -> bool {
        match self.cfg.radio_model {
            RadioModel::UnitDisk => true,
            RadioModel::Fading { full_fraction } => {
                let full = self.cfg.radio_range_m * full_fraction;
                if dist <= full {
                    true
                } else {
                    let span = (self.cfg.radio_range_m - full).max(f64::EPSILON);
                    let p_fail = (dist - full) / span;
                    self.rng.random::<f64>() >= p_fail
                }
            }
        }
    }

    /// Full radio pipeline for a unicast transmitted at `base` (positions
    /// are evaluated at the current time).
    fn try_radio_deliver(&mut self, base: Time, from: NodeId, to: NodeId, payload: P) {
        let Some(from_pos) = self.position_of(from) else {
            self.stats.incr("radio.drop.sender_gone");
            return;
        };
        let Some(to_pos) = self.position_of(to) else {
            self.stats.incr("radio.drop.receiver_gone");
            return;
        };
        let dist = from_pos.distance_to(to_pos);
        if dist > self.cfg.radio_range_m {
            self.stats.incr("radio.drop.range");
            return;
        }
        if !self.link_succeeds(dist) {
            self.stats.incr("radio.drop.fading");
            return;
        }
        self.try_radio_deliver_in_range(base, from, to, payload, Some(dist));
    }

    /// Delivery once range has been established: applies loss (base rate,
    /// then any active burst window) and latency relative to `base`.
    ///
    /// The burst draw is separate from — and composes with — the base
    /// loss draw, and is only made while a burst window is active, so
    /// runs without faults consume an identical random stream.
    fn try_radio_deliver_in_range(
        &mut self,
        base: Time,
        from: NodeId,
        to: NodeId,
        payload: P,
        dist_m: Option<f64>,
    ) {
        if self.cfg.radio_loss > 0.0 && self.rng.random::<f64>() < self.cfg.radio_loss {
            self.stats.incr("radio.drop.loss");
            return;
        }
        let burst = self.injector.as_ref().map_or(0.0, |i| i.burst_loss(base));
        if burst > 0.0 && self.rng.random::<f64>() < burst {
            self.stats.incr("fault.drop.radio_burst");
            return;
        }
        let jitter = if self.cfg.radio_jitter.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_micros(self.rng.random_range(0..=self.cfg.radio_jitter.as_micros()))
        };
        let at = base + self.cfg.radio_latency + jitter;
        self.observe(
            at,
            SimEvent::Enqueued {
                from,
                to,
                channel: Channel::Radio,
                dist_m,
                payload: &payload,
            },
        );
        self.queue.push(
            at,
            to,
            Occurrence::Deliver {
                from,
                payload,
                channel: Channel::Radio,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Position;

    /// A stationary node recording everything it hears.
    struct Probe {
        at: Position,
        heard: Vec<(NodeId, u32, Channel)>,
        timers_fired: Vec<u8>,
    }

    impl Probe {
        fn new(x: f64) -> Self {
            Probe {
                at: Position::new(x, 0.0),
                heard: Vec::new(),
                timers_fired: Vec::new(),
            }
        }
    }

    impl Node<u32, u8> for Probe {
        fn position(&self, _now: Time) -> Position {
            self.at
        }
        fn on_packet(
            &mut self,
            _ctx: &mut Context<'_, u32, u8>,
            from: NodeId,
            packet: u32,
            channel: Channel,
        ) {
            self.heard.push((from, packet, channel));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u8>, token: u8) {
            self.timers_fired.push(token);
        }
    }

    /// A node that sends on start: unicast to a target, then broadcast.
    struct Chatter {
        at: Position,
        unicast_to: NodeId,
    }

    impl Node<u32, u8> for Chatter {
        fn position(&self, _now: Time) -> Position {
            self.at
        }
        fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
            ctx.send(self.unicast_to, 7);
            ctx.broadcast(9);
        }
        fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
        fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
    }

    fn quiet_config() -> WorldConfig {
        WorldConfig {
            radio_jitter: Duration::ZERO,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn unicast_respects_range() {
        let mut w: World<u32, u8> = World::new(quiet_config());
        let near = w.spawn(Box::new(Probe::new(500.0)));
        let far = w.spawn(Box::new(Probe::new(5000.0)));
        let chatter = w.spawn(Box::new(Chatter {
            at: Position::new(0.0, 0.0),
            unicast_to: far,
        }));
        w.run_to_completion(100);
        assert!(w.get::<Probe>(far).unwrap().heard.is_empty());
        // `near` still got the broadcast.
        let near_heard = &w.get::<Probe>(near).unwrap().heard;
        assert_eq!(near_heard.len(), 1);
        assert_eq!(near_heard[0], (chatter, 9, Channel::Radio));
        assert_eq!(w.stats().get("radio.drop.range"), 1);
    }

    #[test]
    fn broadcast_reaches_all_in_range_but_not_sender() {
        let mut w: World<u32, u8> = World::new(quiet_config());
        let a = w.spawn(Box::new(Probe::new(100.0)));
        let b = w.spawn(Box::new(Probe::new(900.0)));
        let c = w.spawn(Box::new(Probe::new(1500.0)));
        let s = w.spawn(Box::new(Chatter {
            at: Position::new(0.0, 0.0),
            unicast_to: a,
        }));
        w.run_to_completion(100);
        assert_eq!(w.get::<Probe>(a).unwrap().heard.len(), 2); // unicast + bcast
        assert_eq!(w.get::<Probe>(b).unwrap().heard.len(), 1);
        assert!(w.get::<Probe>(c).unwrap().heard.is_empty()); // out of range
                                                              // The sender is a Chatter, not a Probe: downcast to the wrong type fails.
        assert!(w.get::<Probe>(s).is_none());
    }

    #[test]
    fn wired_send_ignores_range() {
        struct WiredSender {
            to: NodeId,
        }
        impl Node<u32, u8> for WiredSender {
            fn position(&self, _now: Time) -> Position {
                Position::ORIGIN
            }
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                ctx.send_wired(self.to, 42);
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
        }
        let mut w: World<u32, u8> = World::new(quiet_config());
        let far = w.spawn(Box::new(Probe::new(9_999.0)));
        w.spawn(Box::new(WiredSender { to: far }));
        w.run_to_completion(10);
        let heard = &w.get::<Probe>(far).unwrap().heard;
        assert_eq!(heard.len(), 1);
        assert_eq!(heard[0].2, Channel::Wired);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerNode {
            cancel_second: bool,
        }
        impl Node<u32, u8> for TimerNode {
            fn position(&self, _now: Time) -> Position {
                Position::ORIGIN
            }
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                ctx.set_timer(Duration::from_secs(1), 1);
                let second = ctx.set_timer(Duration::from_secs(2), 2);
                ctx.set_timer(Duration::from_secs(3), 3);
                if self.cancel_second {
                    ctx.cancel_timer(second);
                }
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, token: u8) {
                ctx.count(&format!("fired.{token}"));
            }
        }
        let mut w: World<u32, u8> = World::new(quiet_config());
        w.spawn(Box::new(TimerNode {
            cancel_second: true,
        }));
        w.run_to_completion(10);
        assert_eq!(w.stats().get("fired.1"), 1);
        assert_eq!(w.stats().get("fired.2"), 0);
        assert_eq!(w.stats().get("fired.3"), 1);
        assert_eq!(w.now(), Time::from_secs(3));
    }

    #[test]
    fn despawned_node_receives_nothing() {
        let mut w: World<u32, u8> = World::new(quiet_config());
        let p = w.spawn(Box::new(Probe::new(10.0)));
        let other = w.spawn(Box::new(Probe::new(20.0)));
        w.inject(Time::from_secs(1), other, p, 5, Channel::Radio);
        w.despawn(p);
        w.run_to_completion(10);
        assert!(w.get::<Probe>(p).unwrap().heard.is_empty());
        assert_eq!(w.stats().get("drop.inactive"), 1);
        assert!(!w.is_active(p));
        assert!(w.is_active(other));
    }

    #[test]
    fn lossy_channel_drops_roughly_at_rate() {
        let cfg = WorldConfig {
            radio_loss: 0.5,
            radio_jitter: Duration::ZERO,
            seed: 7,
            ..WorldConfig::default()
        };
        let mut w: World<u32, u8> = World::new(cfg);
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        struct Spammer {
            to: NodeId,
        }
        impl Node<u32, u8> for Spammer {
            fn position(&self, _now: Time) -> Position {
                Position::new(1.0, 0.0)
            }
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                for _ in 0..1000 {
                    ctx.send(self.to, 1);
                }
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
        }
        w.spawn(Box::new(Spammer { to: rx }));
        w.run_to_completion(100_000);
        let dropped = w.stats().get("radio.drop.loss");
        assert!(
            (300..=700).contains(&dropped),
            "expected ~500 of 1000 dropped, got {dropped}"
        );
    }

    #[test]
    fn inject_is_reliable_but_inject_radio_draws_loss() {
        // `inject` is the out-of-band control-plane path: every packet
        // arrives regardless of the loss rate. `inject_radio` goes
        // through the medium and loses at the configured rate.
        let cfg = WorldConfig {
            radio_loss: 0.5,
            radio_jitter: Duration::ZERO,
            seed: 7,
            ..WorldConfig::default()
        };
        let mut w: World<u32, u8> = World::new(cfg);
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        for i in 0..200 {
            w.inject(Time::from_millis(i), tx, rx, 1, Channel::Radio);
        }
        for i in 0..1000 {
            w.inject_radio(Time::from_millis(200 + i), tx, rx, 2);
        }
        w.run_to_completion(100_000);
        let heard = &w.get::<Probe>(rx).unwrap().heard;
        let out_of_band = heard.iter().filter(|(_, p, _)| *p == 1).count();
        let through_medium = heard.iter().filter(|(_, p, _)| *p == 2).count() as u64;
        let dropped = w.stats().get("radio.drop.loss");
        assert_eq!(out_of_band, 200, "out-of-band injection is reliable");
        assert_eq!(through_medium + dropped, 1000);
        assert!(
            (300..=700).contains(&dropped),
            "expected ~500 of 1000 dropped, got {dropped}"
        );
    }

    /// Arms a 1 s periodic timer chain and counts starts and beeps.
    struct Beeper;
    impl Node<u32, u8> for Beeper {
        fn position(&self, _now: Time) -> Position {
            Position::ORIGIN
        }
        fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
            ctx.count("beeper.start");
            ctx.set_timer(Duration::from_secs(1), 0);
        }
        fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _: u8) {
            ctx.count("beeper.beep");
            ctx.set_timer(Duration::from_secs(1), 0);
        }
    }

    #[test]
    fn crash_window_silences_node_and_restart_reruns_start() {
        use crate::fault::{CrashFault, FaultPlan};
        let mut w: World<u32, u8> = World::new(quiet_config());
        let b = w.spawn(Box::new(Beeper));
        w.install_faults(FaultPlan {
            crashes: vec![CrashFault {
                node: b,
                at: Time::from_millis(2500),
                restart_at: Some(Time::from_millis(5500)),
            }],
            ..FaultPlan::default()
        });
        w.run_until(Time::from_secs(10));
        // Beeps at 1 s and 2 s; the chain's 3 s timer was armed before the
        // crash and is forgotten. `on_restart` (default: `on_start`)
        // re-arms at 5.5 s → beeps at 6.5, 7.5, 8.5, 9.5 s.
        assert_eq!(w.stats().get("beeper.start"), 2);
        assert_eq!(w.stats().get("beeper.beep"), 6);
        assert_eq!(w.stats().get("fault.crash"), 1);
        assert_eq!(w.stats().get("fault.restart"), 1);
        assert_eq!(w.stats().get("fault.drop.timer"), 1);
        assert!(!w.is_paused(b));
    }

    #[test]
    fn deliveries_to_crashed_node_are_dropped_until_restart() {
        use crate::fault::{CrashFault, FaultPlan};
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        w.install_faults(FaultPlan {
            crashes: vec![CrashFault {
                node: rx,
                at: Time::from_secs(1),
                restart_at: Some(Time::from_secs(3)),
            }],
            ..FaultPlan::default()
        });
        w.inject(Time::from_millis(500), tx, rx, 1, Channel::Radio); // before crash
        w.inject(Time::from_secs(2), tx, rx, 2, Channel::Radio); // during crash
        w.inject(Time::from_secs(4), tx, rx, 3, Channel::Radio); // after restart
        w.run_until(Time::from_secs(5));
        let heard: Vec<u32> = w
            .get::<Probe>(rx)
            .unwrap()
            .heard
            .iter()
            .map(|&(_, p, _)| p)
            .collect();
        assert_eq!(heard, vec![1, 3]);
        assert_eq!(w.stats().get("fault.drop.crashed"), 1);
    }

    #[test]
    fn node_without_restart_stays_down() {
        use crate::fault::{CrashFault, FaultPlan};
        let mut w: World<u32, u8> = World::new(quiet_config());
        let b = w.spawn(Box::new(Beeper));
        w.install_faults(FaultPlan {
            crashes: vec![CrashFault {
                node: b,
                at: Time::from_millis(1500),
                restart_at: None,
            }],
            ..FaultPlan::default()
        });
        w.run_until(Time::from_secs(10));
        assert_eq!(w.stats().get("beeper.beep"), 1);
        assert_eq!(w.stats().get("fault.restart"), 0);
        assert!(w.is_paused(b));
        assert!(w.is_active(b), "crashed is not despawned");
    }

    #[test]
    fn wired_outage_severs_backhaul_for_the_window() {
        use crate::fault::{FaultPlan, FaultWindow, WiredOutage};
        /// Sends one wired packet per second.
        struct WiredTicker {
            to: NodeId,
        }
        impl Node<u32, u8> for WiredTicker {
            fn position(&self, _now: Time) -> Position {
                Position::ORIGIN
            }
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                ctx.set_timer(Duration::from_secs(1), 0);
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _: u8) {
                ctx.send_wired(self.to, 1);
                ctx.set_timer(Duration::from_secs(1), 0);
            }
        }
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(9000.0)));
        let tx = w.spawn(Box::new(WiredTicker { to: rx }));
        w.install_faults(FaultPlan {
            wired_outages: vec![WiredOutage {
                a: tx,
                b: rx,
                window: FaultWindow::new(Time::from_millis(2500), Time::from_millis(4500)),
            }],
            ..FaultPlan::default()
        });
        w.run_until(Time::from_millis(6500));
        // Sends at 1..=6 s; those at 3 and 4 s fall inside the outage.
        assert_eq!(w.stats().get("wired.tx"), 6);
        assert_eq!(w.stats().get("fault.drop.wired_outage"), 2);
        assert_eq!(w.stats().get("wired.rx"), 4);
    }

    #[test]
    fn radio_burst_drops_everything_in_window() {
        use crate::fault::{FaultPlan, FaultWindow, RadioBurst};
        /// Sends one unicast per 100 ms.
        struct RadioTicker {
            to: NodeId,
        }
        impl Node<u32, u8> for RadioTicker {
            fn position(&self, _now: Time) -> Position {
                Position::ORIGIN
            }
            fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                ctx.set_timer(Duration::from_millis(100), 0);
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _: u8) {
                ctx.send(self.to, 1);
                ctx.set_timer(Duration::from_millis(100), 0);
            }
        }
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(RadioTicker { to: rx }));
        w.install_faults(FaultPlan {
            radio_bursts: vec![RadioBurst {
                window: FaultWindow::new(Time::from_secs(1), Time::from_secs(2)),
                extra_loss: 1.0,
            }],
            ..FaultPlan::default()
        });
        w.run_until(Time::from_millis(3050));
        // Sends every 100 ms from 0.1 s to 3.0 s (30 sends); those in
        // [1 s, 2 s) — 1.0 s through 1.9 s inclusive — all drop.
        assert_eq!(w.stats().get("fault.drop.radio_burst"), 10);
        assert_eq!(w.get::<Probe>(rx).unwrap().heard.len(), 20);
        let _ = tx;
    }

    #[test]
    fn tamper_window_mutates_payloads_via_hook() {
        use crate::fault::{FaultPlan, FaultWindow, TamperBurst};
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        w.install_faults(FaultPlan {
            tampering: vec![TamperBurst {
                window: FaultWindow::new(Time::from_secs(1), Time::from_secs(2)),
                probability: 1.0,
            }],
            ..FaultPlan::default()
        });
        w.set_tamper_hook(Box::new(|p, _rng| {
            *p = 999;
            true
        }));
        w.inject(Time::from_millis(500), tx, rx, 7, Channel::Radio); // before window
        w.inject(Time::from_millis(1500), tx, rx, 8, Channel::Radio); // inside window
        w.run_until(Time::from_secs(3));
        let heard: Vec<u32> = w
            .get::<Probe>(rx)
            .unwrap()
            .heard
            .iter()
            .map(|&(_, p, _)| p)
            .collect();
        assert_eq!(heard, vec![7, 999]);
        assert_eq!(w.stats().get("fault.tamper"), 1);
    }

    #[test]
    fn empty_fault_plan_does_not_perturb_the_run() {
        use crate::fault::{FaultPlan, FaultWindow, RadioBurst};
        fn run(plan: Option<FaultPlan>) -> Vec<(NodeId, u32, Channel)> {
            let cfg = WorldConfig {
                radio_loss: 0.3,
                seed: 11,
                ..WorldConfig::default()
            };
            let mut w: World<u32, u8> = World::new(cfg);
            let rx = w.spawn(Box::new(Probe::new(500.0)));
            let tx = w.spawn(Box::new(Probe::new(0.0)));
            if let Some(plan) = plan {
                w.install_faults(plan);
            }
            for i in 0..50 {
                w.inject_radio(Time::from_millis(i), tx, rx, i as u32);
            }
            w.run_until(Time::from_secs(1));
            w.get::<Probe>(rx).unwrap().heard.clone()
        }
        let baseline = run(None);
        assert_eq!(baseline, run(Some(FaultPlan::none())));
        // Windows entirely after the traffic also leave the stream alone.
        let late = FaultPlan {
            radio_bursts: vec![RadioBurst {
                window: FaultWindow::new(Time::from_secs(500), Time::from_secs(600)),
                extra_loss: 1.0,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(baseline, run(Some(late)));
    }

    #[test]
    fn fading_model_is_distance_sensitive() {
        // Many unicasts at three distances: inside the guaranteed band,
        // mid-decay, and just under the max range.
        fn drops_at(x: f64) -> u64 {
            let cfg = WorldConfig {
                radio_model: RadioModel::Fading { full_fraction: 0.5 },
                radio_jitter: Duration::ZERO,
                seed: 5,
                ..WorldConfig::default()
            };
            let mut w: World<u32, u8> = World::new(cfg);
            let rx = w.spawn(Box::new(Probe::new(x)));
            struct Burst {
                to: NodeId,
            }
            impl Node<u32, u8> for Burst {
                fn position(&self, _now: Time) -> Position {
                    Position::ORIGIN
                }
                fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                    for _ in 0..400 {
                        ctx.send(self.to, 1);
                    }
                }
                fn on_packet(
                    &mut self,
                    _: &mut Context<'_, u32, u8>,
                    _: NodeId,
                    _: u32,
                    _: Channel,
                ) {
                }
                fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
            }
            w.spawn(Box::new(Burst { to: rx }));
            w.run_to_completion(10_000);
            w.stats().get("radio.drop.fading")
        }
        assert_eq!(drops_at(300.0), 0, "inside the guaranteed band");
        let mid = drops_at(750.0);
        assert!((100..=300).contains(&mid), "~50% at mid-decay, got {mid}");
        let far = drops_at(990.0);
        assert!(far > 350, "nearly all drop just under max range, got {far}");
    }

    #[test]
    #[should_panic(expected = "full_fraction must be in")]
    fn rejects_invalid_fading_fraction() {
        let cfg = WorldConfig {
            radio_model: RadioModel::Fading { full_fraction: 1.5 },
            ..WorldConfig::default()
        };
        let _: World<u32, u8> = World::new(cfg);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w: World<u32, u8> = World::new(quiet_config());
        w.run_until(Time::from_secs(30));
        assert_eq!(w.now(), Time::from_secs(30));
    }

    #[test]
    fn deterministic_given_same_seed() {
        fn run(seed: u64) -> Vec<(NodeId, u32, Channel)> {
            let cfg = WorldConfig {
                radio_loss: 0.3,
                seed,
                ..WorldConfig::default()
            };
            let mut w: World<u32, u8> = World::new(cfg);
            let rx = w.spawn(Box::new(Probe::new(500.0)));
            struct Burst {
                to: NodeId,
            }
            impl Node<u32, u8> for Burst {
                fn position(&self, _now: Time) -> Position {
                    Position::ORIGIN
                }
                fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
                    for i in 0..50 {
                        ctx.send(self.to, i);
                    }
                }
                fn on_packet(
                    &mut self,
                    _: &mut Context<'_, u32, u8>,
                    _: NodeId,
                    _: u32,
                    _: Channel,
                ) {
                }
                fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
            }
            w.spawn(Box::new(Burst { to: rx }));
            w.run_to_completion(1000);
            w.get::<Probe>(rx).unwrap().heard.clone()
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12)); // different seed, different losses/jitter
    }

    #[test]
    fn engine_stamp_witnesses_the_trajectory() {
        fn run(seed: u64, probe_mid: bool) -> (Option<EngineStamp>, EngineStamp) {
            let cfg = WorldConfig {
                radio_loss: 0.3,
                seed,
                ..WorldConfig::default()
            };
            let mut w: World<u32, u8> = World::new(cfg);
            let rx = w.spawn(Box::new(Probe::new(500.0)));
            let tx = w.spawn(Box::new(Probe::new(0.0)));
            for i in 0..50 {
                w.inject_radio(Time::from_millis(i), tx, rx, i as u32);
            }
            w.run_until(Time::from_millis(25));
            let mid = probe_mid.then(|| w.engine_stamp());
            w.run_until(Time::from_secs(1));
            (mid, w.engine_stamp())
        }
        let (mid_a, end_a) = run(11, true);
        let (_, end_b) = run(11, false);
        // Same seed: identical final stamp, and capturing a stamp
        // mid-flight perturbs nothing.
        assert_eq!(end_a, end_b);
        assert_ne!(mid_a.unwrap(), end_a, "clock advanced between stamps");
        let (_, end_c) = run(12, false);
        assert_ne!(end_a.rng_state, end_c.rng_state, "different seed differs");
    }

    #[test]
    fn engine_stamp_folds_node_state_digests() {
        struct Digested(u64);
        impl Node<u32, u8> for Digested {
            fn position(&self, _now: Time) -> Position {
                Position::ORIGIN
            }
            fn on_packet(&mut self, _: &mut Context<'_, u32, u8>, _: NodeId, _: u32, _: Channel) {}
            fn on_timer(&mut self, _: &mut Context<'_, u32, u8>, _: u8) {}
            fn state_digest(&self) -> u64 {
                self.0
            }
        }
        let mut a: World<u32, u8> = World::new(quiet_config());
        a.spawn(Box::new(Digested(1)));
        let mut b: World<u32, u8> = World::new(quiet_config());
        b.spawn(Box::new(Digested(2)));
        assert_ne!(
            a.engine_stamp().node_digest,
            b.engine_stamp().node_digest,
            "node-internal state reaches the stamp"
        );
    }

    #[test]
    fn tap_observes_every_delivery() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        let log: Rc<RefCell<Vec<(NodeId, NodeId, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&log);
        w.set_tap(Box::new(move |_, from, to, p, _| {
            sink.borrow_mut().push((from, to, *p));
        }));
        w.inject(Time::from_millis(1), tx, rx, 41, Channel::Radio);
        w.inject(Time::from_millis(2), tx, rx, 42, Channel::Wired);
        w.run_to_completion(10);
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (tx, rx, 41));
        assert_eq!(log[1], (tx, rx, 42));
    }

    #[test]
    fn tap_skips_inactive_receivers() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        let count: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
        let sink = Rc::clone(&count);
        w.set_tap(Box::new(move |_, _, _, _, _| *sink.borrow_mut() += 1));
        w.inject(Time::from_millis(1), tx, rx, 1, Channel::Radio);
        w.despawn(rx);
        w.run_to_completion(10);
        assert_eq!(
            *count.borrow(),
            0,
            "drops to inactive nodes are not observed"
        );
    }

    /// A conservation check usable against the `u32` payload tests: every
    /// dispatched or dropped delivery must have a matching enqueue.
    struct Conservation {
        pending: std::collections::HashMap<(NodeId, NodeId), i64>,
        exercised: u64,
    }

    impl Conservation {
        fn new() -> Self {
            Conservation {
                pending: std::collections::HashMap::new(),
                exercised: 0,
            }
        }
    }

    impl InvariantCheck<u32> for Conservation {
        fn name(&self) -> &'static str {
            "test-conservation"
        }
        fn observe(
            &mut self,
            _now: Time,
            event: &SimEvent<'_, u32>,
            sink: &mut crate::ViolationSink,
        ) {
            match *event {
                SimEvent::Enqueued { from, to, .. } => {
                    *self.pending.entry((from, to)).or_insert(0) += 1;
                }
                SimEvent::Delivered { from, to, .. } | SimEvent::Dropped { from, to, .. } => {
                    self.exercised += 1;
                    let n = self.pending.entry((from, to)).or_insert(0);
                    *n -= 1;
                    if *n < 0 {
                        sink.report(format!("delivery {from}->{to} without a matching enqueue"));
                    }
                }
            }
        }
        fn exercised(&self) -> u64 {
            self.exercised
        }
    }

    #[test]
    fn oracle_observes_every_packet_path() {
        // Unicast, broadcast, wired, lossy radio, and a despawned receiver
        // all satisfy conservation; the check is exercised for each
        // delivery and drop, and no violations fire.
        let cfg = WorldConfig {
            radio_loss: 0.3,
            seed: 13,
            ..WorldConfig::default()
        };
        let mut w: World<u32, u8> = World::new(cfg);
        let near = w.spawn(Box::new(Probe::new(500.0)));
        let gone = w.spawn(Box::new(Probe::new(600.0)));
        w.add_invariant(Box::new(Conservation::new()));
        let chatter = w.spawn(Box::new(Chatter {
            at: Position::new(0.0, 0.0),
            unicast_to: near,
        }));
        w.inject(Time::from_millis(50), chatter, gone, 3, Channel::Radio);
        w.inject(Time::from_millis(60), chatter, near, 4, Channel::Wired);
        w.despawn(gone);
        w.run_to_completion(1000);
        w.finish_invariants();
        assert_eq!(w.violations(), &[], "conservation holds");
        let exercised = w.invariants_exercised();
        assert_eq!(exercised.len(), 1);
        assert_eq!(exercised[0].0, "test-conservation");
        assert!(exercised[0].1 >= 2, "deliveries and drops were observed");
    }

    #[test]
    fn oracle_reports_violations_with_context() {
        struct AlwaysFail;
        impl InvariantCheck<u32> for AlwaysFail {
            fn name(&self) -> &'static str {
                "always-fail"
            }
            fn observe(
                &mut self,
                _now: Time,
                event: &SimEvent<'_, u32>,
                sink: &mut crate::ViolationSink,
            ) {
                if let SimEvent::Delivered { payload, .. } = event {
                    sink.report(format!("saw {payload}"));
                }
            }
            fn finish(&mut self, _now: Time, sink: &mut crate::ViolationSink) {
                sink.report("end-of-run audit");
            }
            fn exercised(&self) -> u64 {
                1
            }
        }
        let mut w: World<u32, u8> = World::new(quiet_config());
        let rx = w.spawn(Box::new(Probe::new(100.0)));
        let tx = w.spawn(Box::new(Probe::new(0.0)));
        w.add_invariant(Box::new(AlwaysFail));
        w.inject(Time::from_millis(1), tx, rx, 41, Channel::Radio);
        w.run_to_completion(10);
        w.finish_invariants();
        w.finish_invariants(); // idempotent: the audit fires once
        let violations = w.violations();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].invariant, "always-fail");
        assert!(violations[0].detail.contains("41"));
        assert_eq!(violations[1].detail, "end-of-run audit");
        assert_eq!(w.violations_overflow(), 0);
    }

    #[test]
    fn world_without_invariants_reports_nothing() {
        let w: World<u32, u8> = World::new(quiet_config());
        assert!(w.violations().is_empty());
        assert!(w.invariants_exercised().is_empty());
        assert_eq!(w.violations_overflow(), 0);
    }

    #[test]
    #[should_panic(expected = "radio_loss must be a probability")]
    fn rejects_invalid_loss() {
        let cfg = WorldConfig {
            radio_loss: 1.5,
            ..WorldConfig::default()
        };
        let _: World<u32, u8> = World::new(cfg);
    }

    #[test]
    #[should_panic(expected = "cannot inject an event in the past")]
    fn rejects_past_injection() {
        let mut w: World<u32, u8> = World::new(quiet_config());
        let a = w.spawn(Box::new(Probe::new(0.0)));
        w.run_until(Time::from_secs(5));
        w.inject(Time::from_secs(1), a, a, 0, Channel::Radio);
    }
}
