//! Driving a [`Node`] outside the simulator.
//!
//! The discrete-event [`World`](crate::World) owns the only code path that
//! constructs a [`Context`] and drains its buffered effects — both are
//! crate-private, which is exactly right inside the simulator but leaves no
//! way for an external host (the `blackdpd` UDP daemon) to reuse the
//! existing sans-io `Node` implementations. [`NodeHarness`] is that way: it
//! holds the per-node runtime state a `World` would (statistics, the
//! dispatch counter that mints timer ids) and exposes
//! [`NodeHarness::dispatch`], which runs one node callback and returns the
//! emitted effects as the public [`NodeEffect`] for the host to execute
//! however it likes (UDP datagrams, OS timers, process exit).
//!
//! The harness shares the engine's effect vocabulary *and* its timer-id
//! scheme: ids are `(dispatch index << 16) | within-dispatch index`,
//! strictly increasing in arming order, exactly as the simulator mints them
//! (see [`Context::set_timer`]). A protocol node therefore cannot observe
//! whether it is running under the simulator's serial loop, the windowed
//! executor, or a live daemon.

use crate::event::{Channel, TimerId};
use crate::id::NodeId;
use crate::node::{Context, Effect, Node, StatSink, TIMER_LOCAL_BITS};
use crate::stats::Stats;
use crate::time::Time;

/// A buffered node effect, surfaced to an external host.
///
/// Mirrors the simulator's internal effect vocabulary one-to-one; the host
/// decides what "unicast" or "set timer" means in its world (for the daemon:
/// a UDP datagram, a socket read deadline).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEffect<P, T> {
    /// Deliver `payload` to one radio peer.
    Unicast {
        /// The destination node.
        to: NodeId,
        /// The payload to deliver.
        payload: P,
    },
    /// Deliver `payload` to every radio peer in range.
    Broadcast {
        /// The payload to deliver.
        payload: P,
    },
    /// Deliver `payload` over the wired backbone.
    Wired {
        /// The destination node.
        to: NodeId,
        /// The payload to deliver.
        payload: P,
    },
    /// Arm a timer: deliver `token` back to the node at `at`.
    SetTimer {
        /// Identifier for cancellation.
        id: TimerId,
        /// Virtual deadline.
        at: Time,
        /// Token handed back to [`Node::on_timer`].
        token: T,
    },
    /// Disarm a previously set timer (no-op if already fired).
    CancelTimer(
        /// The timer to disarm.
        TimerId,
    ),
    /// The node is done: deliver nothing further and shut it down.
    Despawn,
}

impl<P, T> From<Effect<P, T>> for NodeEffect<P, T> {
    fn from(e: Effect<P, T>) -> Self {
        match e {
            Effect::Unicast { to, payload } => NodeEffect::Unicast { to, payload },
            Effect::Broadcast { payload } => NodeEffect::Broadcast { payload },
            Effect::Wired { to, payload } => NodeEffect::Wired { to, payload },
            Effect::SetTimer { id, at, token } => NodeEffect::SetTimer { id, at, token },
            Effect::CancelTimer(id) => NodeEffect::CancelTimer(id),
            Effect::Despawn => NodeEffect::Despawn,
        }
    }
}

/// Per-node runtime state for hosting a [`Node`] outside the simulator.
#[derive(Debug, Default)]
pub struct NodeHarness {
    stats: Stats,
    next_dispatch: u64,
}

impl NodeHarness {
    /// Creates a fresh harness.
    ///
    /// Node callbacks are pure effect emitters (they hold no engine RNG),
    /// so the harness needs no seed: a node replayed against the same
    /// inputs emits the same effects.
    pub fn new() -> Self {
        NodeHarness::default()
    }

    /// The statistics counters accumulated across dispatches.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Runs one node callback at virtual time `now` and returns its result
    /// plus the effects it emitted, in emission order.
    ///
    /// The closure receives the [`Context`]; call [`Node::on_start`],
    /// [`Node::on_packet`], or [`Node::on_timer`] inside it.
    pub fn dispatch<P, T, R>(
        &mut self,
        now: Time,
        self_id: NodeId,
        f: impl FnOnce(&mut Context<'_, P, T>) -> R,
    ) -> (R, Vec<NodeEffect<P, T>>) {
        let timer_base = self.next_dispatch << TIMER_LOCAL_BITS;
        self.next_dispatch += 1;
        let mut ctx = Context {
            now,
            self_id,
            stats: StatSink::Direct(&mut self.stats),
            timer_base,
            timers_armed: 0,
            effects: Vec::new(),
        };
        let result = f(&mut ctx);
        let effects = ctx.effects.into_iter().map(NodeEffect::from).collect();
        (result, effects)
    }

    /// Convenience: delivers a packet via [`Node::on_packet`].
    pub fn deliver<P: 'static, T: 'static>(
        &mut self,
        node: &mut dyn Node<P, T>,
        now: Time,
        self_id: NodeId,
        from: NodeId,
        packet: P,
        channel: Channel,
    ) -> Vec<NodeEffect<P, T>> {
        self.dispatch(now, self_id, |ctx| {
            node.on_packet(ctx, from, packet, channel)
        })
        .1
    }

    /// Convenience: fires a timer via [`Node::on_timer`].
    pub fn fire<P: 'static, T: 'static>(
        &mut self,
        node: &mut dyn Node<P, T>,
        now: Time,
        self_id: NodeId,
        token: T,
    ) -> Vec<NodeEffect<P, T>> {
        self.dispatch(now, self_id, |ctx| node.on_timer(ctx, token)).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Position;
    use crate::time::Duration;

    /// A toy node: every timer tick broadcasts its tick count and re-arms.
    struct Ticker {
        ticks: u64,
    }

    impl Node<u64, ()> for Ticker {
        fn position(&self, _now: Time) -> Position {
            Position::new(0.0, 0.0)
        }

        fn on_start(&mut self, ctx: &mut Context<'_, u64, ()>) {
            ctx.set_timer(Duration::from_millis(100), ());
        }

        fn on_packet(&mut self, ctx: &mut Context<'_, u64, ()>, _from: NodeId, pkt: u64, _c: Channel) {
            if pkt == 42 {
                ctx.despawn();
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, u64, ()>, _token: ()) {
            self.ticks += 1;
            ctx.broadcast(self.ticks);
            ctx.set_timer(Duration::from_millis(100), ());
        }
    }

    #[test]
    fn dispatch_surfaces_effects_in_emission_order() {
        let mut h = NodeHarness::new();
        let mut node = Ticker { ticks: 0 };
        let id = NodeId::new(3);

        let (_, effects) = h.dispatch(Time::ZERO, id, |ctx| node.on_start(ctx));
        assert!(matches!(
            effects.as_slice(),
            [NodeEffect::SetTimer { at, .. }] if *at == Time::from_millis(100)
        ));

        let effects = h.fire(&mut node, Time::from_millis(100), id, ());
        assert_eq!(effects.len(), 2);
        assert!(matches!(effects[0], NodeEffect::Broadcast { payload: 1 }));
        assert!(matches!(effects[1], NodeEffect::SetTimer { .. }));

        let effects = h.deliver(&mut node, Time::from_millis(150), id, NodeId::new(9), 42, Channel::Radio);
        assert_eq!(effects, vec![NodeEffect::Despawn]);
    }

    #[test]
    fn timer_ids_stay_unique_and_increasing_across_dispatches() {
        let mut h = NodeHarness::new();
        let mut node = Ticker { ticks: 0 };
        let id = NodeId::new(1);
        let mut last = None;
        let mut check = |effects: Vec<NodeEffect<u64, ()>>| {
            for e in effects {
                if let NodeEffect::SetTimer { id, .. } = e {
                    assert!(
                        last.is_none_or(|prev| id.raw() > prev),
                        "timer ids must increase in arming order"
                    );
                    last = Some(id.raw());
                }
            }
        };
        let (_, effects) = h.dispatch::<u64, (), _>(Time::ZERO, id, |ctx| node.on_start(ctx));
        check(effects);
        for i in 1..5u64 {
            check(h.fire(&mut node, Time::from_millis(100 * i), id, ()));
        }
    }
}
