//! Unified thread budget for every parallel subsystem.
//!
//! Before PR 8, `BLACKDP_THREADS` only governed sweep workers
//! (`scenario/src/parallel.rs`); the sharded world introduced a second
//! consumer of host parallelism (band rebuild workers) and the windowed
//! executor a third (window handler lanes) — they must not each
//! independently claim every core. This module is the single source of
//! truth: sweep-level workers, shard-level rebuild workers, and
//! executor-level window lanes all call [`thread_budget`], so one
//! environment variable bounds the process-wide parallelism regardless of
//! which layer spends it.
//!
//! Precedence (documented in the README):
//!
//! 1. `BLACKDP_THREADS`, if set and parseable as an integer ≥ 1 — clamped
//!    to the host's [`std::thread::available_parallelism`];
//! 2. otherwise [`std::thread::available_parallelism`];
//! 3. otherwise 1.
//!
//! Determinism note: the budget only ever controls **how many workers** chew
//! through deterministically ordered work lists (sweep trials, shard bands,
//! window handler lanes); results are merged in fixed order, so the budget
//! never affects output bytes — only wall-clock time.

/// Maximum worker threads any parallel subsystem may use.
///
/// Reads `BLACKDP_THREADS`, falling back to the host's available
/// parallelism. A malformed or `0`-valued variable is still ignored, but
/// prints a one-time warning to stderr: before, a deployment typo
/// (`BLACKDP_THREADS=al` or `=0`) silently became an all-cores grab. A
/// value *above* the host's available parallelism is clamped down to it,
/// also with a one-time warning — oversubscribing cores never helps the
/// deterministic work lists this budget governs. Never returns 0.
pub fn thread_budget() -> usize {
    let cap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("BLACKDP_THREADS") {
        Ok(raw) => {
            let (budget, warning) = parse_budget(&raw, cap);
            if let Some(msg) = warning {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| eprintln!("{msg}"));
            }
            budget
        }
        Err(_) => cap,
    }
}

/// Parses a raw `BLACKDP_THREADS` value against the host parallelism `cap`.
/// Returns the budget plus a warning message when the value was malformed,
/// below 1, or clamped down to `cap`.
///
/// Split out of [`thread_budget`] so tests can cover the warning paths
/// without racing on process-global environment state or capturing stderr.
fn parse_budget(raw: &str, cap: usize) -> (usize, Option<String>) {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => {
            if n > cap {
                (
                    cap,
                    Some(format!(
                        "warning: BLACKDP_THREADS={n} exceeds the host's available \
                         parallelism; clamping to {cap} thread(s)"
                    )),
                )
            } else {
                (n, None)
            }
        }
        Ok(_) => (
            cap,
            Some(format!(
                "warning: BLACKDP_THREADS=0 is not a valid thread budget; \
                 ignoring it and using {cap} thread(s)"
            )),
        ),
        Err(_) => (
            cap,
            Some(format!(
                "warning: BLACKDP_THREADS={raw:?} is not an integer >= 1; \
                 ignoring it and using {cap} thread(s)"
            )),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one() {
        // Whatever the environment says, the budget must be usable as a
        // worker count.
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn valid_values_pass_through_without_warning() {
        assert_eq!(parse_budget("4", 99), (4, None));
        assert_eq!(parse_budget("  1 ", 99), (1, None));
    }

    #[test]
    fn malformed_values_warn_and_fall_back() {
        // Regression: these used to be swallowed silently, so a deployment
        // typo became an invisible all-cores grab.
        let (budget, warning) = parse_budget("all-of-them", 6);
        assert_eq!(budget, 6);
        let msg = warning.expect("malformed value must produce a warning");
        assert!(msg.contains("all-of-them"), "warning names the bad value: {msg}");
        assert!(msg.contains('6'), "warning names the fallback: {msg}");

        let (budget, warning) = parse_budget("-3", 2);
        assert_eq!(budget, 2);
        assert!(warning.is_some());
    }

    #[test]
    fn zero_warns_and_falls_back() {
        let (budget, warning) = parse_budget("0", 8);
        assert_eq!(budget, 8);
        let msg = warning.expect("zero must produce a warning");
        assert!(msg.contains("BLACKDP_THREADS=0"), "{msg}");
    }

    #[test]
    fn oversubscription_clamps_to_the_host_cap() {
        // A budget above the host's available parallelism is clamped: the
        // deterministic work lists it governs gain nothing from
        // oversubscribed cores.
        let (budget, warning) = parse_budget("64", 4);
        assert_eq!(budget, 4);
        let msg = warning.expect("clamping must produce a warning");
        assert!(msg.contains("64"), "warning names the requested value: {msg}");
        assert!(msg.contains("clamping to 4"), "{msg}");

        // At or below the cap passes through untouched.
        assert_eq!(parse_budget("4", 4), (4, None));
    }
}
