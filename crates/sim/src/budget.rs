//! Unified thread budget for every parallel subsystem.
//!
//! Before PR 8, `BLACKDP_THREADS` only governed sweep workers
//! (`scenario/src/parallel.rs`); the sharded world introduced a second
//! consumer of host parallelism (band rebuild workers) and the two must not
//! each independently claim every core. This module is the single source of
//! truth: sweep-level workers and shard-level rebuild workers both call
//! [`thread_budget`], so one environment variable bounds the process-wide
//! parallelism regardless of which layer spends it.
//!
//! Precedence (documented in the README):
//!
//! 1. `BLACKDP_THREADS`, if set and parseable as an integer ≥ 1;
//! 2. otherwise [`std::thread::available_parallelism`];
//! 3. otherwise 1.
//!
//! Determinism note: the budget only ever controls **how many workers** chew
//! through deterministically ordered work lists (sweep trials, shard bands);
//! results are merged in fixed order, so the budget never affects output
//! bytes — only wall-clock time.

/// Maximum worker threads any parallel subsystem may use.
///
/// Reads `BLACKDP_THREADS` (values below 1 are ignored), falling back to the
/// host's available parallelism. Never returns 0.
pub fn thread_budget() -> usize {
    if let Ok(raw) = std::env::var("BLACKDP_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one() {
        // Whatever the environment says, the budget must be usable as a
        // worker count.
        assert!(thread_budget() >= 1);
    }
}
