//! Conservative-window parallel event executor.
//!
//! The windowed executor drives the same discrete-event simulation as the
//! serial loop, but runs the *handler* phase of same-window deliveries on
//! worker threads. It is **bit-identical to the serial oracle for any
//! thread count** — same traces, same `Stats::digest`, same
//! [`EngineStamp`](super::EngineStamp) witnesses — because every source of
//! engine nondeterminism stays on one thread, in the serial `(time, seq)`
//! order:
//!
//! 1. **Scan (serial).** Pop the window's events in `(time, seq)` order.
//!    Gating (inactive / crashed drops) runs here against state that is
//!    frozen for the whole window (see the safety argument below), and
//!    each admitted delivery gets the same dispatch index the serial loop
//!    would have assigned — which fixes its timer ids.
//! 2. **Execute (parallel).** Handlers run on worker lanes, mutating only
//!    their own node and *staging* effects/stats into per-event buffers.
//!    All deliveries to one node share a lane, so per-node handler order
//!    is preserved (this also keeps nodes with private RNGs, like
//!    attacker middleware, deterministic).
//! 3. **Commit (serial).** Walk the events in `(time, seq)` order again:
//!    merge staged stats, fire taps and oracle observations, and apply
//!    staged effects through the exact code path the serial loop uses.
//!    Every world-RNG draw (loss, burst, fading, jitter) happens here, in
//!    serial order, so the RNG stream is untouched by threading.
//!
//! # The conservative window
//!
//! A window is a maximal run of queued *deliveries* no later than
//!
//! `w_end = min(t0 + L − 1 µs, deadline, next fault edge − 1 µs)`
//!
//! where `t0` is the head event's time and `L = min(radio_latency,
//! wired_latency)`. Why this is safe:
//!
//! * **No new events can land inside the window.** Any delivery staged by
//!   a window handler commits at `≥ t + L > w_end`, and queue insertion
//!   sequence numbers are monotone, so even equal-time insertions order
//!   after every window event. Timers are not so bounded, hence the
//!   commit-time backstop below.
//! * **Timers never join a window** — a timer head ends the window, so
//!   timer handlers (which may despawn, e.g. highway exits) always run
//!   through the serial step with their effects committed before the next
//!   event is examined.
//! * **Fault edges never land inside the window** (`w_end < next edge`),
//!   so the active/paused state the scan gates against is frozen; the
//!   window also never spans an active tampering window when a tamper
//!   hook is installed (tamper draws are delivery-time world-RNG draws).
//! * **Deliveries to [`Node::exclusive_dispatch`](crate::Node) nodes end
//!   the window** — the one `on_packet` effect that changes gating state
//!   for later events (an attacker's flee-despawn) runs serially.
//!
//! Two engine-contract backstops guard what the window cannot exclude
//! structurally, and panic loudly instead of silently diverging: a window
//! handler arming a timer *inside* its own window (`at < t_last`), and a
//! window handler despawning a node that has further deliveries in the
//! same window. Neither is reachable with this repository's protocols
//! (every timer period is ≥ tens of milliseconds against a window span
//! of `< 2 ms`, and the only `on_packet` despawner is exclusive).
//!
//! # Lanes
//!
//! Events partition across `threads` lanes by hashing the receiver's
//! node id (`id % lanes`). Correctness needs just "same node, same lane"
//! — lanes mutate only their own checked-out nodes, so any partition
//! that is a function of the node alone is sound — and id hashing is
//! also the one that load-balances: a broadcast's receivers are
//! spatially contiguous, so a spatial partition (shard-band ownership,
//! say) would funnel entire radio neighborhoods into single lanes and
//! serialize the window it was meant to parallelize.

use std::sync::mpsc;

use super::{WindowEvent, World};
use crate::event::{Channel, Occurrence, Scheduled};
use crate::node::{Context, Effect, Node, StatSink, TIMER_LOCAL_BITS};
use crate::oracle::SimEvent;
use crate::{Duration, NodeId, Position, Stats, Time};

/// Windows smaller than this run through the plain serial step: the
/// staging machinery costs more than it saves on a handful of events.
const PAR_MIN: usize = 8;

/// One admitted delivery: scan fills the identity fields, a worker lane
/// fills the staged outputs, commit drains them.
struct WinJob<P, T> {
    time: Time,
    node: NodeId,
    from: NodeId,
    channel: Channel,
    /// The delivered payload. Workers *clone* it for the handler when an
    /// observer (tap / oracle / boundary tap) is installed — commit still
    /// needs the original to fire observations in serial order — and
    /// *move* it otherwise.
    payload: Option<P>,
    /// Serial-order dispatch index; fixes this handler's timer ids.
    dispatch_index: u64,
    /// Effects staged by the handler, in emission order.
    effects: Vec<Effect<P, T>>,
    /// Stats staged by the handler.
    stats: Stats,
    /// Timers the handler armed.
    timers_armed: u16,
}

/// One lane's slice of a window: its jobs plus the checked-out state of
/// every node those jobs deliver to. Owning the node boxes (instead of
/// borrowing slots) is what lets lanes travel to *persistent* worker
/// threads over a channel — `thread::scope` per window would cost a
/// thread spawn per lane per window, which at sub-millisecond window
/// spans dominates the work being parallelized.
struct LaneWork<P, T> {
    jobs: Vec<WinJob<P, T>>,
    /// `(node id, node state)` in ascending id order.
    nodes: LaneNodes<P, T>,
    observed: bool,
}

/// A lane's checked-out node states, `(node id, state)` ascending by id.
type LaneNodes<P, T> = Vec<(u32, Box<dyn Node<P, T>>)>;

/// A placeholder parked in a node's slot while its real state is checked
/// out to a window lane. Nothing can reach a vacated slot during the
/// parallel phase — lanes only touch their own checked-out nodes, and
/// the engine thread blocks until every lane returns — so every method
/// panics loudly rather than risk silent divergence.
struct Vacated;

impl<P, T> Node<P, T> for Vacated {
    fn position(&self, _now: Time) -> Position {
        unreachable!("vacated slot touched during a parallel window")
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, P, T>, _from: NodeId, _p: P, _ch: Channel) {
        unreachable!("vacated slot touched during a parallel window")
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, P, T>, _token: T) {
        unreachable!("vacated slot touched during a parallel window")
    }
}

/// Runs one lane's jobs in order against its checked-out nodes.
fn run_lane<P: Clone + 'static, T: 'static>(work: &mut LaneWork<P, T>) {
    for job in work.jobs.iter_mut() {
        let at = work
            .nodes
            .binary_search_by_key(&job.node.index(), |entry| entry.0)
            .expect("lane owns the nodes of its jobs");
        let node = &mut work.nodes[at].1;
        let payload = if work.observed {
            job.payload.clone().expect("payload staged by scan")
        } else {
            job.payload.take().expect("payload staged by scan")
        };
        let mut ctx = Context {
            now: job.time,
            self_id: job.node,
            stats: StatSink::Staged(Stats::new()),
            timer_base: job.dispatch_index << TIMER_LOCAL_BITS,
            timers_armed: 0,
            effects: std::mem::take(&mut job.effects),
        };
        node.on_packet(&mut ctx, job.from, payload, job.channel);
        job.effects = ctx.effects;
        job.timers_armed = ctx.timers_armed;
        job.stats = match ctx.stats {
            StatSink::Staged(stats) => stats,
            StatSink::Direct(_) => unreachable!("workers always stage stats"),
        };
    }
}

/// A persistent pool of window workers, created on the first multi-lane
/// window and reused for every window after it. Each worker owns one
/// request channel and loops `recv → run_lane → send back`; the engine
/// thread round-robins remote lanes across workers, runs one lane
/// itself, and collects completions (in any order — commit re-sorts by
/// dispatch index). Workers park in `recv` between windows and exit when
/// the pool drops with their channels.
pub(crate) struct WindowPool<P, T> {
    txs: Vec<mpsc::Sender<LaneWork<P, T>>>,
    done_rx: mpsc::Receiver<LaneWork<P, T>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<P: Clone + Send + 'static, T: Send + 'static> WindowPool<P, T> {
    fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<LaneWork<P, T>>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(mut work) = rx.recv() {
                    run_lane(&mut work);
                    if done.send(work).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        WindowPool {
            txs,
            done_rx,
            handles,
        }
    }

    fn workers(&self) -> usize {
        self.txs.len()
    }
}

impl<P, T> Drop for WindowPool<P, T> {
    fn drop(&mut self) {
        // Closing the request channels breaks every worker's recv loop.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<P: Clone + Send + 'static, T: Clone + Send + 'static> World<P, T> {
    /// The windowed event loop behind
    /// [`run_until`](super::World::run_until); same contract as the
    /// serial loop.
    pub(super) fn run_until_windowed(&mut self, deadline: Time, threads: usize) {
        let requested = if threads == 0 {
            crate::budget::thread_budget()
        } else {
            threads
        };
        // Explicit lane counts clamp to the host's parallelism exactly
        // like the `BLACKDP_THREADS` budget does: window lanes beyond
        // physical cores only add scheduling overhead, and the executor
        // is bit-identical across lane counts, so the clamp can never
        // change a result — only wall-clock time.
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let lanes = requested.min(cap).max(1);
        if lanes < requested {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: Windowed {{ threads: {requested} }} exceeds the host's \
                     available parallelism; clamping to {lanes} lane(s)"
                );
            });
        }
        loop {
            while let Some(t0) = self.queue.peek_time() {
                if t0 > deadline {
                    break;
                }
                // Due crash/restart edges apply before committing to an
                // event, exactly like the serial step (a restart may
                // enqueue events earlier than the head, so re-peek).
                match self.injector.as_ref().and_then(|i| i.next_transition_at()) {
                    Some(tr) if tr <= t0 => {
                        self.apply_next_fault_transition(tr);
                        continue;
                    }
                    _ => {}
                }
                self.window_step(t0, deadline, lanes);
            }
            if !self.apply_next_fault_transition(deadline) {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Forms one conservative window starting at the queue head and runs
    /// it; falls back to the serial step whenever a window cannot form
    /// (timer or exclusive head, zero-latency world, active tamper span)
    /// or would be too small to pay for staging.
    fn window_step(&mut self, t0: Time, deadline: Time, lanes: usize) {
        let span = self.cfg.radio_latency.min(self.cfg.wired_latency);
        if span.is_zero() {
            // A zero-latency channel could land staged deliveries inside
            // their own window; no conservative window exists.
            self.step();
            return;
        }
        let mut w_end = t0 + Duration::from_micros(span.as_micros() - 1);
        if deadline < w_end {
            w_end = deadline;
        }
        if let Some(tr) = self.injector.as_ref().and_then(|i| i.next_transition_at()) {
            debug_assert!(tr > t0, "due fault edges apply before a window forms");
            let cap = Time::from_micros(tr.as_micros() - 1);
            if cap < w_end {
                w_end = cap;
            }
        }
        if self.tamper.is_some()
            && self
                .injector
                .as_ref()
                .is_some_and(|i| i.tamper_active_in(t0, w_end + Duration::from_micros(1)))
        {
            // Tamper decisions draw from the world RNG at delivery time;
            // keep those events on the serial path.
            self.step();
            return;
        }
        let mut batch: Vec<Scheduled<P, T>> = Vec::new();
        while let Some((t, node, is_timer)) = self.queue.peek_head() {
            if t > w_end || is_timer || self.nodes[node.as_usize()].node.exclusive_dispatch() {
                break;
            }
            batch.push(self.queue.pop().expect("peeked event exists"));
        }
        if batch.is_empty() {
            // Timer or exclusive delivery at the head: run it solo.
            self.step();
            return;
        }
        if batch.len() < PAR_MIN {
            for event in batch {
                debug_assert!(event.time >= self.now, "event queue went backwards");
                self.now = event.time;
                self.process_event(event);
            }
            return;
        }
        self.execute_window(batch, lanes);
    }

    /// Scan → parallel execute → serial commit for one formed window.
    fn execute_window(&mut self, batch: Vec<Scheduled<P, T>>, lanes: usize) {
        // Observers need the payload again at commit time (observations
        // fire there, in exact serial order); workers clone for the
        // handler in that case.
        let observed = self.tap.is_some() || self.oracle.is_some() || self.boundary_tap.is_some();

        // ---- Phase 1: serial scan ------------------------------------
        let mut jobs: Vec<WinJob<P, T>> = Vec::with_capacity(batch.len());
        for event in batch {
            debug_assert!(event.time >= self.now, "event queue went backwards");
            self.now = event.time;
            let id = event.node;
            let Occurrence::Deliver {
                from,
                payload,
                channel,
            } = event.occurrence
            else {
                unreachable!("the window former admits only deliveries")
            };
            // Gating state (active/paused) is frozen across the window:
            // fault edges are excluded by construction and despawns only
            // happen on serial paths (timers, exclusive dispatch).
            if !self.is_active(id) {
                self.stats.incr("drop.inactive");
                self.observe(
                    event.time,
                    SimEvent::Dropped {
                        from,
                        to: id,
                        channel,
                        payload: &payload,
                    },
                );
                continue;
            }
            if self.is_paused(id) {
                self.stats.incr("fault.drop.crashed");
                self.observe(
                    event.time,
                    SimEvent::Dropped {
                        from,
                        to: id,
                        channel,
                        payload: &payload,
                    },
                );
                continue;
            }
            let dispatch_index = self.next_dispatch;
            self.next_dispatch += 1;
            if let Some(tap) = self.window_tap.as_mut() {
                tap(WindowEvent::Delivery {
                    at: event.time,
                    from,
                    to: id,
                    channel,
                    payload: &payload,
                });
            }
            jobs.push(WinJob {
                time: event.time,
                node: id,
                from,
                channel,
                payload: Some(payload),
                dispatch_index,
                effects: Vec::new(),
                stats: Stats::new(),
                timers_armed: 0,
            });
        }
        let Some(t_last) = jobs.last().map(|j| j.time) else {
            return; // the whole window was gated away; scan did it all
        };
        if let Some(tap) = self.window_tap.as_mut() {
            tap(WindowEvent::Flush { at: t_last });
        }

        // ---- Phase 2: parallel execute -------------------------------
        // Per-node lane assignment (a function of the node alone, so all
        // deliveries to one node share a lane): plain id hashing. Lanes
        // never touch anything but their own checked-out nodes, so *any*
        // node partition is sound; id hashing is the one that also load
        // balances, because a broadcast's receivers are spatially — and
        // on real fleets, id- — contiguous, and a spatial partition
        // (e.g. shard-band ownership) would funnel an entire radio
        // neighborhood into a single lane.
        let mut ids: Vec<u32> = jobs.iter().map(|j| j.node.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        let node_lanes: Vec<(u32, usize)> = ids
            .iter()
            .map(|&id| (id, id as usize % lanes))
            .collect();
        let total = jobs.len();
        let mut lane_jobs: Vec<Vec<WinJob<P, T>>> = (0..lanes).map(|_| Vec::new()).collect();
        for job in jobs.drain(..) {
            let at = node_lanes
                .binary_search_by_key(&job.node.index(), |entry| entry.0)
                .expect("every scanned node has a lane");
            lane_jobs[node_lanes[at].1].push(job);
        }
        // Check each window node's state out of its slot and into its
        // lane (a `Vacated` tombstone holds the slot meanwhile): owned
        // boxes can travel to persistent workers, and the handout stays
        // disjoint without unsafe because every node maps to exactly one
        // lane. `node_lanes` is ascending in id, so each lane's node list
        // comes out sorted for `run_lane`'s binary search.
        let mut lane_nodes: Vec<LaneNodes<P, T>> = (0..lanes).map(|_| Vec::new()).collect();
        for &(id, lane) in &node_lanes {
            let parked = std::mem::replace(&mut self.nodes[id as usize].node, Box::new(Vacated));
            lane_nodes[lane].push((id, parked));
        }
        let mut work: Vec<LaneWork<P, T>> = lane_jobs
            .into_iter()
            .zip(lane_nodes)
            .filter(|(jobs, _)| !jobs.is_empty())
            .map(|(jobs, nodes)| LaneWork {
                jobs,
                nodes,
                observed,
            })
            .collect();
        let mut done: Vec<LaneWork<P, T>> = Vec::with_capacity(work.len());
        if work.len() <= 1 {
            if let Some(mut lane) = work.pop() {
                run_lane(&mut lane);
                done.push(lane);
            }
        } else {
            if self
                .window_pool
                .as_ref()
                .map(|pool| pool.workers())
                != Some(lanes - 1)
            {
                self.window_pool = Some(WindowPool::new(lanes - 1));
            }
            let pool = self.window_pool.as_ref().expect("pool created above");
            let mut remote = work.into_iter();
            let mut local = remote.next().expect("work holds at least two lanes");
            let mut sent = 0usize;
            for (i, lane) in remote.enumerate() {
                pool.txs[i % pool.txs.len()]
                    .send(lane)
                    .expect("window worker alive");
                sent += 1;
            }
            // The first occupied lane runs on the engine thread.
            run_lane(&mut local);
            done.push(local);
            for _ in 0..sent {
                done.push(pool.done_rx.recv().expect("window worker panicked"));
            }
        }
        // Check node state back in and reassemble the jobs in serial
        // `(time, seq)` order — dispatch indices were handed out by the
        // scan in exactly that order.
        for lane in &mut done {
            for (id, node) in lane.nodes.drain(..) {
                self.nodes[id as usize].node = node;
            }
            jobs.append(&mut lane.jobs);
        }
        debug_assert_eq!(jobs.len(), total, "every job returned from its lane");
        jobs.sort_unstable_by_key(|job| job.dispatch_index);

        // ---- Phase 3: serial commit ----------------------------------
        for k in 0..jobs.len() {
            let (node, time, channel, from) =
                (jobs[k].node, jobs[k].time, jobs[k].channel, jobs[k].from);
            // Engine-contract backstops (see module docs): panic instead
            // of silently diverging from the serial oracle.
            let mut despawns = false;
            for effect in &jobs[k].effects {
                match effect {
                    Effect::SetTimer { at, .. } => assert!(
                        *at >= t_last,
                        "windowed executor: a handler armed a timer due inside its own \
                         window ({at} < {t_last}); this workload requires ExecutorMode::Serial"
                    ),
                    Effect::Despawn => despawns = true,
                    _ => {}
                }
            }
            if despawns {
                assert!(
                    !jobs[k + 1..].iter().any(|j| j.node == node),
                    "windowed executor: a handler despawned a node with further \
                     deliveries in the same window; mark the node exclusive_dispatch"
                );
            }
            self.now = time;
            self.timers_armed_total += u64::from(jobs[k].timers_armed);
            for (key, value) in jobs[k].stats.iter() {
                self.stats.add(key, value);
            }
            match channel {
                Channel::Radio => self.stats.incr("radio.rx"),
                Channel::Wired => self.stats.incr("wired.rx"),
            }
            if observed {
                let payload = jobs[k]
                    .payload
                    .as_ref()
                    .expect("observed windows retain payloads");
                if let Some(tap) = self.tap.as_mut() {
                    tap(time, from, node, payload, channel);
                }
                if self.boundary_tap.is_some() && matches!(channel, Channel::Radio) {
                    self.fire_boundary_tap(from, node, payload);
                }
                self.observe(
                    time,
                    SimEvent::Delivered {
                        from,
                        to: node,
                        channel,
                        payload,
                    },
                );
            }
            let mut effects = std::mem::take(&mut jobs[k].effects);
            self.apply_effects(node, &mut effects);
        }
    }
}
