//! Deterministic fault injection: virtual-time-scheduled infrastructure
//! failures layered on the simulation world.
//!
//! A [`FaultPlan`] declares what goes wrong and when — node crash/restart
//! windows, wired-backhaul outages between node pairs, burst radio-loss
//! windows on top of the configured `radio_loss`, and payload-tampering
//! windows. The plan is pure data: installing the same plan into a world
//! built from the same seed reproduces the identical run, because every
//! probabilistic fault draw (burst loss, tampering) comes from the
//! world's single seeded RNG stream.
//!
//! Crash/restart is a *pause/resume* lifecycle distinct from
//! [`World::despawn`](crate::World::despawn): a crashed node keeps its
//! slot and its in-memory object, but receives no packets and no timers
//! until the restart time, at which point
//! [`Node::on_restart`](crate::Node::on_restart) runs — by default
//! re-running `on_start` so timer chains re-arm.

use crate::{NodeId, Time};

/// A half-open virtual-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: Time,
    /// First instant the fault is over.
    pub until: Time,
}

impl FaultWindow {
    /// Creates a window; `from` must precede `until`.
    pub fn new(from: Time, until: Time) -> Self {
        assert!(from < until, "fault window must have positive length");
        FaultWindow { from, until }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.from && t < self.until
    }
}

/// One node crash: the node goes silent at `at` and, if `restart_at` is
/// set, resumes (running its `on_restart` hook) at that time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The node that crashes.
    pub node: NodeId,
    /// Crash instant.
    pub at: Time,
    /// Restart instant; `None` means the node stays down forever.
    pub restart_at: Option<Time>,
}

/// A wired-backhaul outage severing delivery between a specific node
/// pair, in both directions, for the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WiredOutage {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// When the link is down.
    pub window: FaultWindow,
}

/// A burst of extra radio loss layered on the configured base
/// `radio_loss` for the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioBurst {
    /// When the burst is active.
    pub window: FaultWindow,
    /// Additional drop probability in `[0, 1]`, drawn independently of
    /// the base rate: the effective delivery probability inside the
    /// window is `(1 − radio_loss) · (1 − extra_loss)`.
    pub extra_loss: f64,
}

/// A payload-tampering window: each delivery during the window is passed
/// to the world's tamper hook with the given probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TamperBurst {
    /// When tampering is active.
    pub window: FaultWindow,
    /// Per-delivery probability of invoking the tamper hook.
    pub probability: f64,
}

/// Everything scheduled to go wrong in one run. Pure data; install with
/// [`World::install_faults`](crate::World::install_faults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Node crash/restart events.
    pub crashes: Vec<CrashFault>,
    /// Pairwise wired-backhaul outages.
    pub wired_outages: Vec<WiredOutage>,
    /// Nodes whose *entire* wired connectivity is severed for a window
    /// (models a partitioned or unreachable backhaul site, e.g. a TA
    /// outage, without stopping the node's local processing).
    pub wired_isolations: Vec<(NodeId, FaultWindow)>,
    /// Burst radio-loss windows.
    pub radio_bursts: Vec<RadioBurst>,
    /// Payload-tampering windows.
    pub tampering: Vec<TamperBurst>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.wired_outages.is_empty()
            && self.wired_isolations.is_empty()
            && self.radio_bursts.is_empty()
            && self.tampering.is_empty()
    }

    /// Validates internal consistency (windows ordered, probabilities in
    /// range). Called on install.
    pub(crate) fn validate(&self) {
        for c in &self.crashes {
            if let Some(r) = c.restart_at {
                assert!(r > c.at, "restart must follow the crash");
            }
        }
        for b in &self.radio_bursts {
            assert!(
                (0.0..=1.0).contains(&b.extra_loss),
                "burst extra_loss must be a probability"
            );
        }
        for t in &self.tampering {
            assert!(
                (0.0..=1.0).contains(&t.probability),
                "tamper probability must be a probability"
            );
        }
    }
}

/// A pending pause/resume edge derived from the plan's crash list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    /// Node goes down.
    Down(NodeId),
    /// Node comes back up (runs `on_restart`).
    Up(NodeId),
}

/// The engine-side interpreter of a [`FaultPlan`]: a sorted transition
/// tape for crash edges plus window queries for the continuous faults.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    transitions: Vec<(Time, Transition)>,
    cursor: usize,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        plan.validate();
        let mut transitions = Vec::new();
        for c in &plan.crashes {
            transitions.push((c.at, Transition::Down(c.node)));
            if let Some(r) = c.restart_at {
                transitions.push((r, Transition::Up(c.node)));
            }
        }
        // Stable by time; Down sorts before Up at equal instants so a
        // node never "restarts" before a same-instant crash lands.
        transitions.sort_by_key(|(t, tr)| (*t, matches!(tr, Transition::Up(_))));
        FaultInjector {
            plan,
            transitions,
            cursor: 0,
        }
    }

    /// The next crash/restart edge, if any remain.
    pub(crate) fn next_transition_at(&self) -> Option<Time> {
        self.transitions.get(self.cursor).map(|(t, _)| *t)
    }

    /// Pops the next edge if it is due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: Time) -> Option<(Time, Transition)> {
        let (t, tr) = *self.transitions.get(self.cursor)?;
        if t <= now {
            self.cursor += 1;
            Some((t, tr))
        } else {
            None
        }
    }

    /// Whether wired delivery from `a` to `b` is severed at `now`.
    pub(crate) fn wired_severed(&self, a: NodeId, b: NodeId, now: Time) -> bool {
        self.plan.wired_outages.iter().any(|o| {
            o.window.contains(now) && ((o.a == a && o.b == b) || (o.a == b && o.b == a))
        }) || self
            .plan
            .wired_isolations
            .iter()
            .any(|(n, w)| w.contains(now) && (*n == a || *n == b))
    }

    /// Extra radio loss active at `now` (max over overlapping bursts).
    pub(crate) fn burst_loss(&self, now: Time) -> f64 {
        self.plan
            .radio_bursts
            .iter()
            .filter(|b| b.window.contains(now))
            .map(|b| b.extra_loss)
            .fold(0.0, f64::max)
    }

    /// Tampering probability active at `now` (max over overlapping
    /// windows).
    pub(crate) fn tamper_probability(&self, now: Time) -> f64 {
        self.plan
            .tampering
            .iter()
            .filter(|t| t.window.contains(now))
            .map(|t| t.probability)
            .fold(0.0, f64::max)
    }

    /// Whether any tampering window with non-zero probability overlaps the
    /// half-open span `[from, until)`. The windowed executor refuses to
    /// form parallel windows over such spans: the tamper decision draws
    /// from the world RNG *on delivery*, so those events must run through
    /// the serial step to keep the RNG stream byte-identical.
    pub(crate) fn tamper_active_in(&self, from: Time, until: Time) -> bool {
        self.plan
            .tampering
            .iter()
            .any(|t| t.probability > 0.0 && t.window.from < until && from < t.window.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    fn t(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(t(1), t(3));
        assert!(!w.contains(t(0)));
        assert!(w.contains(t(1)));
        assert!(w.contains(t(2)));
        assert!(!w.contains(t(3)));
        let _ = Duration::ZERO;
    }

    #[test]
    fn transitions_sorted_down_before_up() {
        let plan = FaultPlan {
            crashes: vec![
                CrashFault {
                    node: NodeId::new(2),
                    at: t(5),
                    restart_at: Some(t(9)),
                },
                CrashFault {
                    node: NodeId::new(1),
                    at: t(1),
                    restart_at: Some(t(5)),
                },
            ],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let mut order = Vec::new();
        while let Some((time, tr)) = inj.pop_due(t(100)) {
            order.push((time, tr));
        }
        assert_eq!(
            order,
            vec![
                (t(1), Transition::Down(NodeId::new(1))),
                (t(5), Transition::Down(NodeId::new(2))),
                (t(5), Transition::Up(NodeId::new(1))),
                (t(9), Transition::Up(NodeId::new(2))),
            ]
        );
        assert_eq!(inj.next_transition_at(), None);
    }

    #[test]
    fn wired_severed_is_symmetric_and_windowed() {
        let plan = FaultPlan {
            wired_outages: vec![WiredOutage {
                a: NodeId::new(1),
                b: NodeId::new(2),
                window: FaultWindow::new(t(2), t(4)),
            }],
            wired_isolations: vec![(NodeId::new(7), FaultWindow::new(t(0), t(10)))],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert!(inj.wired_severed(NodeId::new(1), NodeId::new(2), t(3)));
        assert!(inj.wired_severed(NodeId::new(2), NodeId::new(1), t(3)));
        assert!(!inj.wired_severed(NodeId::new(1), NodeId::new(2), t(5)));
        assert!(!inj.wired_severed(NodeId::new(1), NodeId::new(3), t(3)));
        // Isolation severs every pair touching the node.
        assert!(inj.wired_severed(NodeId::new(7), NodeId::new(3), t(3)));
        assert!(inj.wired_severed(NodeId::new(3), NodeId::new(7), t(3)));
    }

    #[test]
    fn burst_loss_takes_window_max() {
        let plan = FaultPlan {
            radio_bursts: vec![
                RadioBurst {
                    window: FaultWindow::new(t(1), t(5)),
                    extra_loss: 0.3,
                },
                RadioBurst {
                    window: FaultWindow::new(t(3), t(6)),
                    extra_loss: 0.8,
                },
            ],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.burst_loss(t(0)), 0.0);
        assert_eq!(inj.burst_loss(t(2)), 0.3);
        assert_eq!(inj.burst_loss(t(4)), 0.8);
        assert_eq!(inj.burst_loss(t(6)), 0.0);
    }

    #[test]
    #[should_panic(expected = "restart must follow the crash")]
    fn rejects_restart_before_crash() {
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                node: NodeId::new(0),
                at: t(5),
                restart_at: Some(t(2)),
            }],
            ..FaultPlan::default()
        };
        FaultInjector::new(plan);
    }
}
