//! Runtime invariant oracle: per-event hooks evaluated by the world.
//!
//! An [`InvariantCheck`] observes the engine's packet lifecycle — every
//! payload accepted onto the delivery queue, every dispatch to a node,
//! every drop of a queued payload — and reports [`Violation`]s to a
//! bounded sink. Checks are engine-agnostic: the scenario layer installs
//! protocol-aware implementations (packet conservation, radio-range
//! discipline, AODV sequence monotonicity, isolation permanence, crypto
//! acceptance rules) via [`World::add_invariant`](crate::World::add_invariant).
//!
//! With no checks installed the world pays a single branch per event;
//! installing checks costs one virtual call per check per event, which is
//! why the fuzzer and gated test builds install them but the benchmark
//! paths do not.

use crate::{Channel, NodeId, Time};

/// One engine-level packet event, observed as it happens.
///
/// `Enqueued` fires when a payload is accepted onto the delivery queue —
/// after range/fading/loss filtering for radio, after outage filtering for
/// wired — so every `Delivered` or `Dropped` was preceded by a matching
/// `Enqueued`. `dist_m` carries the sender–receiver distance at
/// transmission time when the radio medium computed one (out-of-band
/// injections bypass the medium and carry `None`).
#[derive(Debug)]
pub enum SimEvent<'a, P> {
    /// A payload was accepted onto the delivery queue.
    Enqueued {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Radio or wired.
        channel: Channel,
        /// Sender–receiver distance at transmission time, when the radio
        /// medium evaluated one.
        dist_m: Option<f64>,
        /// The payload.
        payload: &'a P,
    },
    /// A queued payload reached its receiver's `on_packet`.
    Delivered {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Radio or wired.
        channel: Channel,
        /// The payload.
        payload: &'a P,
    },
    /// A queued payload was discarded before dispatch (despawned or
    /// crashed receiver).
    Dropped {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Radio or wired.
        channel: Channel,
        /// The payload.
        payload: &'a P,
    },
}

/// One invariant breach, with enough context to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The [`InvariantCheck::name`] of the violated check.
    pub invariant: &'static str,
    /// Virtual time of the offending event.
    pub at: Time,
    /// Human-readable description of what broke.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={} {}", self.invariant, self.at, self.detail)
    }
}

/// Upper bound on stored violations; a broken invariant usually fires on
/// every subsequent event, and one screenful is enough to debug from.
const MAX_VIOLATIONS: usize = 64;

/// The bounded violation collector handed to checks.
#[derive(Debug, Default)]
pub struct ViolationSink {
    items: Vec<Violation>,
    /// Violations discarded after [`MAX_VIOLATIONS`] were stored.
    overflow: u64,
    /// Stamped by the world before each `observe`/`finish` call.
    current: &'static str,
    now: Time,
}

impl ViolationSink {
    /// Records a violation against the currently observing check.
    pub fn report(&mut self, detail: impl Into<String>) {
        if self.items.len() >= MAX_VIOLATIONS {
            self.overflow += 1;
            return;
        }
        self.items.push(Violation {
            invariant: self.current,
            at: self.now,
            detail: detail.into(),
        });
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.items
    }

    /// Violations discarded because the sink was full.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Attributes subsequent [`Self::report`] calls to `invariant` at
    /// virtual time `now`. The world calls this before every `observe`;
    /// harnesses driving a check by hand should too.
    pub fn begin(&mut self, invariant: &'static str, now: Time) {
        self.current = invariant;
        self.now = now;
    }
}

/// A runtime invariant evaluated against every engine packet event.
///
/// Implementations keep whatever state they need across events and call
/// [`ViolationSink::report`] when the invariant breaks. `exercised` counts
/// how many times the check actually evaluated its property (not merely
/// skipped an irrelevant event) so harnesses can assert coverage.
pub trait InvariantCheck<P> {
    /// Stable identifier used in violation reports and coverage counts.
    fn name(&self) -> &'static str;

    /// Observes one engine event at virtual time `now`.
    fn observe(&mut self, now: Time, event: &SimEvent<'_, P>, sink: &mut ViolationSink);

    /// Called once after the run, for end-of-run audits (e.g. leak
    /// checks over accumulated state).
    fn finish(&mut self, now: Time, sink: &mut ViolationSink) {
        let _ = (now, sink);
    }

    /// How many times the invariant's property was actually evaluated.
    fn exercised(&self) -> u64;
}

/// The world-owned oracle: installed checks plus the shared sink.
pub(crate) struct Oracle<P> {
    pub(crate) checks: Vec<Box<dyn InvariantCheck<P>>>,
    pub(crate) sink: ViolationSink,
    pub(crate) finished: bool,
}

impl<P> Oracle<P> {
    pub(crate) fn new() -> Self {
        Oracle {
            checks: Vec::new(),
            sink: ViolationSink::default(),
            finished: false,
        }
    }

    pub(crate) fn observe(&mut self, now: Time, event: &SimEvent<'_, P>) {
        for check in &mut self.checks {
            self.sink.begin(check.name(), now);
            check.observe(now, event, &mut self.sink);
        }
    }

    pub(crate) fn finish(&mut self, now: Time) {
        if self.finished {
            return;
        }
        self.finished = true;
        for check in &mut self.checks {
            self.sink.begin(check.name(), now);
            check.finish(now, &mut self.sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountAll {
        seen: u64,
        flag_wired: bool,
    }

    impl InvariantCheck<u32> for CountAll {
        fn name(&self) -> &'static str {
            "count-all"
        }
        fn observe(&mut self, _now: Time, event: &SimEvent<'_, u32>, sink: &mut ViolationSink) {
            self.seen += 1;
            if self.flag_wired {
                if let SimEvent::Delivered {
                    channel: Channel::Wired,
                    ..
                } = event
                {
                    sink.report("wired delivery flagged");
                }
            }
        }
        fn exercised(&self) -> u64 {
            self.seen
        }
    }

    #[test]
    fn sink_is_bounded() {
        let mut sink = ViolationSink::default();
        sink.begin("x", Time::ZERO);
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            sink.report(format!("v{i}"));
        }
        assert_eq!(sink.violations().len(), MAX_VIOLATIONS);
        assert_eq!(sink.overflow(), 10);
    }

    #[test]
    fn oracle_routes_events_and_finishes_once() {
        let mut oracle: Oracle<u32> = Oracle::new();
        oracle.checks.push(Box::new(CountAll {
            seen: 0,
            flag_wired: true,
        }));
        let payload = 7u32;
        oracle.observe(
            Time::ZERO,
            &SimEvent::Delivered {
                from: NodeId::new(0),
                to: NodeId::new(1),
                channel: Channel::Wired,
                payload: &payload,
            },
        );
        oracle.finish(Time::ZERO);
        oracle.finish(Time::ZERO); // idempotent
        assert_eq!(oracle.checks[0].exercised(), 1);
        assert_eq!(oracle.sink.violations().len(), 1);
        assert_eq!(oracle.sink.violations()[0].invariant, "count-all");
    }
}
