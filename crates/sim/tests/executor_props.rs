//! Differential property tests for the conservative-window parallel
//! executor: a `Windowed { threads }` world must be **bit-identical** to
//! the serial executor — same delivery trace bytes, same `EngineStamp`
//! witnesses, same `Stats::digest` — for any thread count × shard count,
//! on live jittered broadcast workloads, including runs whose windows
//! are split by mid-run crash/restart fault edges.
//!
//! These are differential oracles, not statistical ones: the windowed
//! executor stages handler effects and commits them in serial
//! `(time, seq)` order by construction, so *any* byte of drift is an
//! engine bug.

use std::cell::RefCell;
use std::rc::Rc;

use blackdp_sim::{
    Channel, Context, CrashFault, Duration, ExecutorMode, FaultPlan, Node, NodeId, Position, Time,
    World, WorldBackend, WorldConfig,
};
use proptest::prelude::*;

/// Above the small-world scan threshold (64 slots), so sharded × windowed
/// runs exercise the band-ownership lane partition on a real index.
const NODES: usize = 72;

/// A beacon moving at constant velocity that rebroadcasts on a periodic
/// timer and counts what it hears — jittered broadcasts give every
/// window multiple same-span deliveries to parallelize, and the heard
/// counter feeds `state_digest` so reordered handler execution would
/// surface in the `EngineStamp`.
struct Beacon {
    start: Position,
    velocity: (f64, f64),
    period: Duration,
    heard: u64,
}

impl Node<u32, u8> for Beacon {
    fn position(&self, now: Time) -> Position {
        let t = now.as_secs_f64();
        Position::new(
            self.start.x + self.velocity.0 * t,
            self.start.y + self.velocity.1 * t,
        )
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
        ctx.set_timer(self.period, 0);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, u32, u8>, from: NodeId, p: u32, _ch: Channel) {
        self.heard += 1;
        ctx.count("heard");
        // Every 16th packet triggers an immediate reply, so windows also
        // carry handler-emitted sends whose RNG draws must stay in
        // serial commit order.
        if self.heard.is_multiple_of(16) {
            ctx.send(from, p ^ 0xA5A5);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _token: u8) {
        ctx.broadcast(self.heard as u32);
        ctx.set_timer(self.period, 0);
    }
    fn on_restart(&mut self, ctx: &mut Context<'_, u32, u8>) {
        // Re-arm the beacon so a restarted node keeps participating.
        ctx.set_timer(self.period, 0);
    }
    fn state_digest(&self) -> u64 {
        self.heard
    }
}

/// One run's observable behavior, byte-for-byte.
#[derive(PartialEq, Debug)]
struct RunWitness {
    /// Serialized delivery trace: every radio/wired delivery in
    /// execution order.
    trace: Vec<u8>,
    /// Scheduler/RNG/digest witnesses sampled mid-run and at the end.
    stamps: Vec<blackdp_sim::EngineStamp>,
    /// Order-insensitive stats digest.
    stats_digest: u64,
}

/// Builds and runs one world, recording the full delivery trace.
fn run(
    seed: u64,
    backend: WorldBackend,
    executor: ExecutorMode,
    faults: FaultPlan,
    until_secs: u64,
) -> RunWitness {
    let cfg = WorldConfig {
        seed,
        radio_range_m: 320.0,
        motion_bound_mps: 35.0,
        backend,
        executor,
        ..WorldConfig::default()
    };
    let mut world: World<u32, u8> = World::new(cfg);
    for i in 0..NODES {
        world.spawn(Box::new(Beacon {
            start: Position::new((i as f64) * 110.0, (i % 4) as f64 * 35.0),
            velocity: (if i % 2 == 0 { 25.0 } else { -25.0 }, 0.0),
            period: Duration::from_millis(600 + (i as u64 % 7) * 110),
            heard: 0,
        }));
    }
    if !faults.is_empty() {
        world.install_faults(faults);
    }
    let trace: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&trace);
    world.set_tap(Box::new(move |at, from, to, payload: &u32, channel| {
        let mut t = sink.borrow_mut();
        t.extend_from_slice(&at.as_micros().to_be_bytes());
        t.extend_from_slice(&from.index().to_be_bytes());
        t.extend_from_slice(&to.index().to_be_bytes());
        t.extend_from_slice(&payload.to_be_bytes());
        t.push(matches!(channel, Channel::Radio) as u8);
    }));
    let mut stamps = Vec::new();
    for step in 1..=2u64 {
        world.run_until(Time::from_secs(until_secs * step / 2));
        stamps.push(world.engine_stamp());
    }
    let stats_digest = world.stats().digest();
    drop(world); // release the tap's clone of the trace handle
    RunWitness {
        trace: Rc::try_unwrap(trace).unwrap().into_inner(),
        stamps,
        stats_digest,
    }
}

/// Crash/restart edges at sub-millisecond offsets, so they land *inside*
/// would-be parallel windows and force the fault-horizon split.
fn crash_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for k in 0..6u64 {
        let node = NodeId::new(((seed >> (k * 7)) % NODES as u64) as u32);
        let at = Time::from_micros(1_000_000 + k * 1_234_567 + (seed % 997) * 13);
        let restart_at = if k % 3 == 2 {
            None
        } else {
            Some(at + Duration::from_millis(1500 + k * 700))
        };
        plan.crashes.push(CrashFault {
            node,
            at,
            restart_at,
        });
    }
    plan
}

proptest! {
    /// The core claim: thread count × shard count never changes a byte.
    #[test]
    fn windowed_executor_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        thread_pick in 0usize..3,
        shard_pick in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][thread_pick];
        let shards = [1u32, 3, 7][shard_pick];
        let backend = WorldBackend::Sharded { shards };
        let serial = run(seed, backend, ExecutorMode::Serial, FaultPlan::none(), 8);
        let windowed = run(
            seed,
            backend,
            ExecutorMode::Windowed { threads },
            FaultPlan::none(),
            8,
        );
        prop_assert_eq!(
            serial, windowed,
            "windowed run diverged (threads = {}, shards = {})", threads, shards
        );
    }

    /// Same claim with crash/restart edges splitting windows mid-run: the
    /// conservative window must stop short of every fault horizon, and
    /// restarted nodes must rejoin identically.
    #[test]
    fn windowed_executor_is_bit_identical_under_crash_faults(
        seed in 0u64..10_000,
        thread_pick in 0usize..3,
        shard_pick in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][thread_pick];
        let shards = [1u32, 3, 7][shard_pick];
        let backend = WorldBackend::Sharded { shards };
        let serial = run(seed, backend, ExecutorMode::Serial, crash_plan(seed), 8);
        let windowed = run(
            seed,
            backend,
            ExecutorMode::Windowed { threads },
            crash_plan(seed),
            8,
        );
        prop_assert_eq!(
            serial, windowed,
            "faulted windowed run diverged (threads = {}, shards = {})", threads, shards
        );
    }

    /// The serial backend (no band map) must also agree: lane assignment
    /// falls back to id-hashing and the result still cannot drift.
    #[test]
    fn windowed_executor_matches_serial_on_the_serial_backend(
        seed in 0u64..10_000,
    ) {
        let serial = run(seed, WorldBackend::Serial, ExecutorMode::Serial, FaultPlan::none(), 8);
        let windowed = run(
            seed,
            WorldBackend::Serial,
            ExecutorMode::Windowed { threads: 8 },
            FaultPlan::none(),
            8,
        );
        prop_assert_eq!(serial, windowed);
    }
}

/// Guard against the windowed path silently degenerating to the serial
/// fallback: on this workload real multi-delivery windows must form, and
/// the window tap must observe them.
#[test]
fn windowed_runs_actually_form_parallel_windows() {
    let cfg = WorldConfig {
        seed: 7,
        radio_range_m: 320.0,
        motion_bound_mps: 35.0,
        backend: WorldBackend::Sharded { shards: 3 },
        executor: ExecutorMode::Windowed { threads: 8 },
        ..WorldConfig::default()
    };
    let mut world: World<u32, u8> = World::new(cfg);
    for i in 0..NODES {
        world.spawn(Box::new(Beacon {
            start: Position::new((i as f64) * 110.0, (i % 4) as f64 * 35.0),
            velocity: (if i % 2 == 0 { 25.0 } else { -25.0 }, 0.0),
            period: Duration::from_millis(600 + (i as u64 % 7) * 110),
            heard: 0,
        }));
    }
    let counts: Rc<RefCell<(u64, u64)>> = Rc::new(RefCell::new((0, 0)));
    let sink = Rc::clone(&counts);
    world.set_window_tap(Box::new(move |event| {
        let mut c = sink.borrow_mut();
        match event {
            blackdp_sim::WindowEvent::Delivery { .. } => c.0 += 1,
            blackdp_sim::WindowEvent::Flush { .. } => c.1 += 1,
        }
    }));
    world.run_until(Time::from_secs(8));
    let (deliveries, flushes) = *counts.borrow();
    assert!(
        flushes > 0,
        "no parallel window ever formed on a dense broadcast workload"
    );
    let mean = deliveries as f64 / flushes as f64;
    assert!(
        mean >= 2.0,
        "windows are degenerate: {deliveries} deliveries over {flushes} flushes (mean {mean:.2})"
    );
}
