//! Differential property tests: the spatial-grid neighbor index must be
//! indistinguishable from the brute-force scan — same nodes, same order —
//! on arbitrary layouts, including nodes exactly at `radio_range_m`
//! (the boundary is inclusive) and after mid-run despawns.

use blackdp_sim::{Channel, Context, Node, NodeId, Position, Time, World, WorldConfig};
use proptest::prelude::*;

/// A stationary node with no behaviour; the tests only exercise the
/// radio medium's neighbor queries.
struct StaticNode {
    at: Position,
}

impl Node<u32, u8> for StaticNode {
    fn position(&self, _now: Time) -> Position {
        self.at
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u8>, _token: u8) {}
}

fn build_world(range: f64, positions: &[(f64, f64)]) -> (World<u32, u8>, Vec<NodeId>) {
    let cfg = WorldConfig {
        radio_range_m: range,
        ..WorldConfig::default()
    };
    let mut world = World::new(cfg);
    let ids = positions
        .iter()
        .map(|&(x, y)| {
            world.spawn(Box::new(StaticNode {
                at: Position::new(x, y),
            }))
        })
        .collect();
    (world, ids)
}

proptest! {
    #[test]
    fn grid_matches_scan_on_random_layouts(
        positions in prop::collection::vec(
            (-2000.0f64..2000.0, -500.0f64..500.0),
            1..40,
        ),
        range_m in 50u32..800,
    ) {
        // An integral range makes range² exact, so the appended boundary
        // node at (range, 0) from the origin node sits at distance exactly
        // `range` — it must be found (the range check is inclusive).
        let range = f64::from(range_m);
        let mut positions = positions;
        positions.insert(0, (0.0, 0.0));
        positions.push((range, 0.0));
        let (mut world, ids) = build_world(range, &positions);

        let boundary = *ids.last().unwrap();
        prop_assert!(
            world.neighbors_of(ids[0]).contains(&boundary),
            "node exactly at radio_range_m must be a neighbor"
        );

        for &id in &ids {
            let grid = world.neighbors_of(id);
            let scan = world.neighbors_of_scan(id);
            prop_assert_eq!(grid, scan, "grid/scan diverged for {:?}", id);
        }
    }

    #[test]
    fn grid_matches_scan_after_despawns(
        positions in prop::collection::vec(
            (-1000.0f64..1000.0, -300.0f64..300.0),
            2..30,
        ),
        despawn_mask in any::<u64>(),
        range_m in 50u32..800,
    ) {
        let range = f64::from(range_m);
        let (mut world, ids) = build_world(range, &positions);

        // Query once so the grid is built, then despawn a subset within
        // the same timestamp: the stale grid must filter them out exactly
        // like the scan does.
        let _ = world.neighbors_of(ids[0]);
        for (i, &id) in ids.iter().enumerate().skip(1) {
            if despawn_mask >> (i % 64) & 1 == 1 {
                world.despawn(id);
            }
        }
        for &id in &ids {
            if !world.is_active(id) {
                continue;
            }
            let grid = world.neighbors_of(id);
            let scan = world.neighbors_of_scan(id);
            prop_assert_eq!(grid, scan, "grid/scan diverged for {:?} after despawns", id);
        }
    }
}
