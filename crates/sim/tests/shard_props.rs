//! Differential property tests: the sharded spatial backend must be
//! indistinguishable from the brute-force scan — same neighbors, same
//! order — and a sharded `World` must be **bit-identical** to the serial
//! oracle: same `EngineStamp` witnesses and `Stats::digest` for any shard
//! count, on arbitrary layouts, moving nodes across staleness horizons,
//! and after mid-run despawns.
//!
//! Worlds here exceed the small-world scan threshold (64 slots), so the
//! sharded index is genuinely on the query path rather than the scan
//! override.

use blackdp_sim::{
    Channel, Context, Duration, Node, NodeId, Position, Time, World, WorldBackend, WorldConfig,
};
use proptest::prelude::*;

/// Minimum node count that puts the world above the small-world scan
/// threshold (64 slots) with room to spare.
const MIN_NODES: usize = 70;

/// A beacon moving at constant velocity that rebroadcasts on a periodic
/// timer — the minimal workload that exercises jittered broadcasts,
/// per-receiver RNG draws, and index staleness all at once.
struct Beacon {
    start: Position,
    velocity: (f64, f64),
    period: Duration,
    heard: u64,
}

impl Beacon {
    fn still(x: f64, y: f64) -> Beacon {
        Beacon {
            start: Position::new(x, y),
            velocity: (0.0, 0.0),
            period: Duration::ZERO,
            heard: 0,
        }
    }
}

impl Node<u32, u8> for Beacon {
    fn position(&self, now: Time) -> Position {
        let t = now.as_secs_f64();
        Position::new(
            self.start.x + self.velocity.0 * t,
            self.start.y + self.velocity.1 * t,
        )
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32, u8>) {
        if !self.period.is_zero() {
            ctx.set_timer(self.period, 0);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
        self.heard += 1;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32, u8>, _token: u8) {
        ctx.broadcast(0);
        ctx.set_timer(self.period, 0);
    }
    fn state_digest(&self) -> u64 {
        self.heard
    }
}

fn world_with(cfg: WorldConfig, beacons: Vec<Beacon>) -> (World<u32, u8>, Vec<NodeId>) {
    let mut world = World::new(cfg);
    let ids = beacons
        .into_iter()
        .map(|b| world.spawn(Box::new(b)))
        .collect();
    (world, ids)
}

proptest! {
    /// Static layouts: for every node and every shard count, the sharded
    /// index must return exactly the scan's neighbor list (including a
    /// node at distance exactly `radio_range_m` — the check is inclusive),
    /// and must keep doing so after mid-timestamp despawns.
    #[test]
    fn sharded_matches_scan_on_random_layouts(
        positions in prop::collection::vec(
            (-4000.0f64..4000.0, -500.0f64..500.0),
            MIN_NODES..120,
        ),
        despawn_mask in any::<u64>(),
        range_m in 50u32..800,
        shard_pick in 0usize..4,
    ) {
        let shards = [1u32, 2, 3, 7][shard_pick];
        let range = f64::from(range_m);
        let mut positions = positions;
        positions.insert(0, (0.0, 0.0));
        positions.push((range, 0.0));
        let cfg = WorldConfig {
            radio_range_m: range,
            backend: WorldBackend::Sharded { shards },
            ..WorldConfig::default()
        };
        let beacons = positions.iter().map(|&(x, y)| Beacon::still(x, y)).collect();
        let (mut world, ids) = world_with(cfg, beacons);

        let boundary = *ids.last().unwrap();
        prop_assert!(
            world.neighbors_of(ids[0]).contains(&boundary),
            "node exactly at radio_range_m must be a neighbor"
        );
        for &id in &ids {
            let sharded = world.neighbors_of(id);
            let scan = world.neighbors_of_scan(id);
            prop_assert_eq!(sharded, scan, "sharded/scan diverged for {:?}", id);
        }

        // Despawn a subset within the same timestamp: the (stale) index
        // must filter them at query time, exactly like the scan.
        for (i, &id) in ids.iter().enumerate().skip(1) {
            if despawn_mask >> (i % 64) & 1 == 1 {
                world.despawn(id);
            }
        }
        for &id in &ids {
            if !world.is_active(id) {
                continue;
            }
            let sharded = world.neighbors_of(id);
            let scan = world.neighbors_of_scan(id);
            prop_assert_eq!(sharded, scan, "diverged for {:?} after despawns", id);
        }
    }

    /// Moving nodes with a finite motion bound: the index goes stale
    /// between rebuild horizons, and its answers must still match the
    /// scan at every sampled timestamp — the staleness-horizon exactness
    /// claim, checked differentially.
    #[test]
    fn sharded_matches_scan_across_staleness_horizons(
        seeds in prop::collection::vec(0u64..1_000_000, MIN_NODES..90,),
        shard_pick in 0usize..4,
    ) {
        let shards = [1u32, 2, 3, 7][shard_pick];
        let range = 400.0;
        let bound = 30.0; // m/s; horizon = 0.5·range/bound ≈ 6.7 s
        let cfg = WorldConfig {
            radio_range_m: range,
            backend: WorldBackend::Sharded { shards },
            motion_bound_mps: bound,
            ..WorldConfig::default()
        };
        let beacons = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                // Deterministic pseudo-random strip layout and speeds
                // within the declared bound (some nodes drive backward).
                let x = (s % 9000) as f64;
                let y = (s / 9000 % 100) as f64;
                let v = 10.0 + (s % 21) as f64; // 10..=30 ≤ bound
                let dir = if i % 3 == 0 { -1.0 } else { 1.0 };
                Beacon {
                    start: Position::new(x, y),
                    velocity: (v * dir, 0.0),
                    period: Duration::ZERO,
                    heard: 0,
                }
            })
            .collect();
        let (mut world, ids) = world_with(cfg, beacons);

        // Sample both inside the first horizon (stale index) and well
        // past several expiries (rebuilds + boundary handoffs).
        for secs in [1u64, 4, 8, 15, 23, 30] {
            world.run_until(Time::from_secs(secs));
            for &id in &ids {
                let sharded = world.neighbors_of(id);
                let scan = world.neighbors_of_scan(id);
                prop_assert_eq!(
                    sharded, scan,
                    "diverged for {:?} at t = {} s (shards = {})", id, secs, shards
                );
            }
        }
        let diag = world.shard_diagnostics().expect("sharded backend ran");
        prop_assert!(diag.full_rebuilds >= 2, "horizon expiries must rebuild");
    }

    /// The full differential-oracle claim: a sharded world running a live
    /// jittered broadcast workload produces the **same** `EngineStamp`
    /// witness and `Stats::digest` as the serial world, for any shard
    /// count — same RNG state, same scheduler counters, same node digests.
    #[test]
    fn sharded_world_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        shard_pick in 0usize..4,
    ) {
        let shards = [1u32, 2, 3, 7][shard_pick];
        let build = |backend: WorldBackend| {
            let cfg = WorldConfig {
                radio_range_m: 300.0,
                seed,
                backend,
                motion_bound_mps: 35.0,
                ..WorldConfig::default()
            };
            let beacons: Vec<Beacon> = (0..MIN_NODES + 10)
                .map(|i| Beacon {
                    start: Position::new((i as f64) * 120.0, (i % 4) as f64 * 40.0),
                    velocity: (if i % 2 == 0 { 25.0 } else { -25.0 }, 0.0),
                    period: Duration::from_millis(700 + (i as u64 % 5) * 130),
                    heard: 0,
                })
                .collect();
            world_with(cfg, beacons).0
        };

        let mut serial = build(WorldBackend::Serial);
        let mut sharded = build(WorldBackend::Sharded { shards });
        for secs in [5u64, 12] {
            serial.run_until(Time::from_secs(secs));
            sharded.run_until(Time::from_secs(secs));
            prop_assert_eq!(
                serial.engine_stamp(),
                sharded.engine_stamp(),
                "witness diverged at t = {} s (shards = {})", secs, shards
            );
        }
        prop_assert_eq!(serial.stats().digest(), sharded.stats().digest());
    }
}
