//! Boundary edge cases for the sharded spatial backend, each checked
//! against the serial oracle (`neighbors_of_scan`):
//!
//! - a node sitting *exactly* on a shard-band boundary (a grid-cell
//!   column edge),
//! - a node that crosses a band boundary and returns (A → B → A) across
//!   consecutive rebuild horizons — the double-handoff case,
//! - a radio disk whose 3-column query window spans three one-column
//!   bands, with receivers straddling a boundary.
//!
//! The attacker-straddles-a-boundary case lives at the scenario level
//! (`tests/determinism.rs`), where a real attacker stack exists.

use blackdp_sim::{
    Channel, Context, Node, NodeId, Position, Time, World, WorldBackend, WorldConfig,
};

/// Stationary marker node.
struct Still(Position);

impl Node<u32, u8> for Still {
    fn position(&self, _now: Time) -> Position {
        self.0
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u8>, _token: u8) {}
}

/// Oscillates on the x-axis around `center` with a triangle wave:
/// `center ± amp`, half-period `half_secs`, so it repeatedly crosses any
/// band boundary near `center` and comes back. Peak speed is
/// `amp / half_secs` m/s.
struct Zigzag {
    center: f64,
    y: f64,
    amp: f64,
    half_secs: f64,
}

impl Node<u32, u8> for Zigzag {
    fn position(&self, now: Time) -> Position {
        let phase = now.as_secs_f64() / self.half_secs;
        // Triangle in [-1, 1]: rises on even half-periods, falls on odd.
        let cycle = phase.rem_euclid(2.0);
        let tri = if cycle <= 1.0 { cycle } else { 2.0 - cycle } * 2.0 - 1.0;
        Position::new(self.center + self.amp * tri, self.y)
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_, u32, u8>, _from: NodeId, _p: u32, _ch: Channel) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u8>, _token: u8) {}
}

/// Spawns `n` stationary filler nodes in a strip so the world exceeds the
/// small-world scan threshold and the sharded index is actually used.
fn spawn_strip(world: &mut World<u32, u8>, n: usize, spacing: f64) -> Vec<NodeId> {
    (0..n)
        .map(|i| {
            world.spawn(Box::new(Still(Position::new(
                i as f64 * spacing,
                -200.0,
            ))))
        })
        .collect()
}

fn assert_all_match_scan(world: &mut World<u32, u8>, ids: &[NodeId], what: &str) {
    for &id in ids {
        if !world.is_active(id) {
            continue;
        }
        let sharded = world.neighbors_of(id);
        let scan = world.neighbors_of_scan(id);
        assert_eq!(sharded, scan, "{what}: diverged for {id:?}");
    }
}

/// A node at exactly `k · cell_size` sits on the edge between two cell
/// columns — and, with the right shard count, between two *bands*. Its
/// queries, and queries about it, must still match the scan exactly.
#[test]
fn node_exactly_on_a_band_boundary() {
    let range = 500.0; // cell size = 2·range = 1000
    for shards in [2u32, 3, 7] {
        let cfg = WorldConfig {
            radio_range_m: range,
            backend: WorldBackend::Sharded { shards },
            ..WorldConfig::default()
        };
        let mut world: World<u32, u8> = World::new(cfg);
        // 80 nodes spaced 250 m: every fourth sits exactly on a column
        // edge (x = 0, 1000, 2000, …).
        let ids = spawn_strip(&mut world, 80, 250.0);
        assert_all_match_scan(&mut world, &ids, &format!("boundary strip, {shards} shards"));

        // The node exactly at x = 4000 must see symmetric neighbors on
        // both sides of its boundary (x = 3500..=4500, itself excluded).
        let on_edge = ids[16]; // 16 · 250 = 4000
        let neighbors = world.neighbors_of(on_edge);
        assert_eq!(
            neighbors.len(),
            4,
            "x = 4000 must see 3500, 3750, 4250, 4500"
        );
    }
}

/// A zigzag node crosses a band boundary and comes back across
/// consecutive rebuild horizons (A → B → A). Every rebuild must hand it
/// off to the band owning its current position, and every query in
/// between must still match the scan.
#[test]
fn same_tick_double_handoff_a_b_a() {
    let range = 500.0; // cell = 1000; horizon = 0.5·500/150 ≈ 1.67 s
    let bound = 150.0;
    let cfg = WorldConfig {
        radio_range_m: range,
        backend: WorldBackend::Sharded { shards: 4 },
        motion_bound_mps: bound,
        ..WorldConfig::default()
    };
    let mut world: World<u32, u8> = World::new(cfg);
    let mut ids = spawn_strip(&mut world, 78, 150.0); // strip 0..11550
    // Oscillates 5200 ↔ 6400 every 4 s at 150 m/s: with ~1.67 s horizons
    // it lands on alternating sides of the x = 6000 column edge at
    // successive rebuilds.
    let zig = world.spawn(Box::new(Zigzag {
        center: 5800.0,
        y: 0.0,
        amp: 600.0,
        half_secs: 4.0,
    }));
    ids.push(zig);

    let mut bands_seen = Vec::new();
    for millis in (0..=16_000u64).step_by(500) {
        world.run_until(Time::from_millis(millis));
        assert_all_match_scan(&mut world, &ids, &format!("t = {millis} ms"));
        if let Some(band) = world.shard_band_of(zig) {
            if bands_seen.last() != Some(&band) {
                bands_seen.push(band);
            }
        }
    }
    // The node's *current* band (from live geometry) must flip A → B → A…
    assert!(
        bands_seen.len() >= 3,
        "zigzag must alternate bands, saw {bands_seen:?}"
    );
    // …and the index must have processed boundary handoffs in both
    // directions across rebuilds.
    let diag = world.shard_diagnostics().expect("sharded backend ran");
    assert!(
        diag.handoffs >= 2,
        "expected ≥ 2 handoffs (A→B then B→A), got {}",
        diag.handoffs
    );
    assert!(diag.full_rebuilds >= 4, "horizons must have expired");
}

/// With one-column bands, a query's 3-column window spans three distinct
/// bands, and a querier on a column edge has receivers straddling a band
/// boundary. The emitted set must match the scan, and the cross-band
/// candidate counter must see the straddle.
#[test]
fn radio_disk_window_spans_three_one_column_bands() {
    let range = 500.0; // cell = 1000
    let cfg = WorldConfig {
        radio_range_m: range,
        // Far more shards than the 4-column strip needs: band width
        // clamps to one column, so adjacent columns are distinct bands.
        backend: WorldBackend::Sharded { shards: 32 },
        ..WorldConfig::default()
    };
    let mut world: World<u32, u8> = World::new(cfg);
    // 80 nodes spaced 200 m: strip 0..15800, 16 columns.
    let ids = spawn_strip(&mut world, 80, 200.0);
    assert_all_match_scan(&mut world, &ids, "one-column bands");

    // Querier exactly at x = 5000, the edge between columns 4 and 5:
    // in-range receivers [4500, 5500] live in two different bands.
    let querier = ids[25]; // 25 · 200 = 5000
    let neighbors = world.neighbors_of(querier);
    assert_eq!(neighbors, world.neighbors_of_scan(querier));
    let bands: std::collections::BTreeSet<u32> = neighbors
        .iter()
        .filter_map(|&n| world.shard_band_of(n))
        .collect();
    assert!(
        bands.len() >= 2,
        "receivers must straddle a band boundary, got bands {bands:?}"
    );
    let diag = world.shard_diagnostics().expect("sharded backend ran");
    assert!(
        diag.cross_band_candidates > 0,
        "cross-band candidates must be counted"
    );
}
