//! Offline stand-in for the `criterion` crate.
//!
//! The sandbox has no registry access, so this vendors the benchmark API
//! the workspace's `benches/` use — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a deliberately small timing loop. There is no statistical
//! analysis; each benchmark calibrates a batch size large enough to
//! resolve against timer granularity, times a few batches, and prints
//! the best per-iteration figure. `cargo test` executes these binaries
//! (benches are `harness = false`), so the loop is sized to finish in
//! milliseconds.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How many timed batches each benchmark runs.
const SAMPLES: u32 = 3;

/// Minimum wall-clock per timed batch: far above `Instant` granularity,
/// so nanosecond-scale routines still get meaningful per-iter figures.
const MIN_BATCH_TIME: Duration = Duration::from_micros(200);

/// Upper bound on the calibrated batch size (guards against a routine the
/// optimizer collapsed to nothing spinning the calibration loop forever).
const MAX_BATCH: u32 = 1 << 22;

/// Advises real criterion how to batch inputs; accepted and ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Annotates measured throughput; accepted and echoed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing handle.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`: calibrates a batch size whose wall-clock exceeds
    /// timer granularity, then reports the fastest of [`SAMPLES`] batches
    /// (the minimum is the standard noise-rejecting summary for
    /// micro-timings — interference only ever adds time).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut batch: u32 = 1;
        let per_batch = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH_TIME || batch >= MAX_BATCH {
                break elapsed;
            }
            // Grow geometrically, overshooting toward the target time.
            batch = batch.saturating_mul(4).min(MAX_BATCH);
        };
        let mut best_ns = per_batch.as_nanos() as f64 / f64::from(batch);
        for _ in 1..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / f64::from(batch);
            if ns < best_ns {
                best_ns = ns;
            }
        }
        self.mean_ns = best_ns;
    }

    /// Times `routine` over freshly set-up inputs.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..SAMPLES).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(SAMPLES);
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    group: Option<String>,
    throughput: Option<Throughput>,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let name = name.as_ref();
        let label = match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_owned(),
        };
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                println!("bench {label}: {:.0} ns/iter ({n} bytes)", bencher.mean_ns);
            }
            Some(Throughput::Elements(n)) => {
                println!("bench {label}: {:.0} ns/iter ({n} elems)", bencher.mean_ns);
            }
            None => println!("bench {label}: {:.0} ns/iter", bencher.mean_ns),
        }
        self
    }

    /// Opens a named group; benchmarks inside share its label prefix.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: Criterion {
                group: Some(name.to_owned()),
                throughput: None,
            },
            _parent: std::marker::PhantomData,
        }
    }
}

/// A labelled collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: Criterion,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepts real criterion's sample-count hint; the stub's fixed
    /// [`SAMPLES`] loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.c.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.c.bench_function(name, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_throughput_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 100u64, sum_to, BatchSize::SmallInput)
        });
        group.finish();
    }
}
