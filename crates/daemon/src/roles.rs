//! Role drivers: the concrete node each daemon hosts, plus its outputs.
//!
//! All four roles wrap the same sans-io node types the simulator runs —
//! [`VehicleNode`], [`MaliciousNode`], [`RsuNode`], [`TaNode`] — so the
//! daemon exercises exactly the code the experiments measure. The driver
//! layer adds what a live process needs on top: constructing the node from
//! a [`NodeConfig`] + [`Identity`], answering out-of-band enrollment
//! requests (TA only), and writing role-specific output files the testbed
//! reads back (verdicts, revocations, responses, attacker addresses).

use std::io;
use std::path::Path;

use blackdp::{ChEvent, DetectionOutcome, TaEvent};
use blackdp_aodv::Addr;
use blackdp_attacks::{AttackerConfig, AttackerStack, DropData, Evasion, ForgeRrep, Interceptor};
use blackdp_crypto::{LongTermId, PublicKey, TaId, TrustedAuthority};
use blackdp_mobility::{ClusterId, ClusterPlan, Direction, Kmh, Trajectory};
use blackdp_scenario::{
    atomic_write, ch_addr, Frame, MaliciousNode, MaliciousNodeConfig, RsuNode, TaNode,
    TrafficIntent, VehicleConfig, VehicleNode, WiredDirectory, PHANTOM_DEST, TA_ADDR_BASE,
};
use blackdp_scenario::Tick;
use blackdp_sim::{Duration, Node, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{ConfigError, Identity, NodeConfig, Role};
use crate::net::Envelope;
use crate::verdict::testbed_scenario;

/// A role-specific daemon core: the hosted node plus output bookkeeping.
///
/// Exactly one of these exists per process, so the size spread between
/// variants costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum RoleDriver {
    /// Honest vehicle.
    Vehicle(VehicleNode),
    /// Black-hole attacker.
    Attacker(MaliciousNode),
    /// Roadside unit.
    Rsu(RsuState),
    /// Trusted authority.
    Ta(TaState),
}

/// RSU driver state: the node plus how many events are already on disk.
pub struct RsuState {
    node: RsuNode,
    written: usize,
}

/// TA driver state: the node, the enrollment RNG, and output bookkeeping.
pub struct TaState {
    node: TaNode,
    rng: StdRng,
    validity: Duration,
    written: usize,
}

fn wired_directory(cfg: &NodeConfig) -> WiredDirectory {
    let mut dir = WiredDirectory::new();
    dir.add_ch(ClusterId(1), NodeId::new(cfg.rsu_id));
    dir.add_ta(TaId(1), NodeId::new(cfg.ta_id), Addr(TA_ADDR_BASE + 1));
    dir
}

/// Builds the driver for `cfg`, reading the identity file for every role
/// but the TA (which derives its authority from the scenario seed).
pub fn build_driver(cfg: &NodeConfig) -> Result<RoleDriver, ConfigError> {
    let (scen, _) = testbed_scenario(cfg.scenario_seed);
    let plan: ClusterPlan = scen.plan();
    match cfg.role {
        Role::Ta => {
            let mut rng = StdRng::seed_from_u64(cfg.scenario_seed.wrapping_add(0x7A));
            let ta = TrustedAuthority::new(TaId(1), &mut rng);
            let clusters: Vec<ClusterId> = plan.clusters().collect();
            let node = blackdp::AuthorityNode::new(
                ta,
                clusters,
                Vec::new(),
                scen.blackdp.cert_validity,
                cfg.node_seed,
            );
            let mut ta_node = TaNode::new(node, Addr(TA_ADDR_BASE + 1));
            ta_node.set_directory(wired_directory(cfg));
            Ok(RoleDriver::Ta(TaState {
                node: ta_node,
                rng,
                validity: scen.blackdp.cert_validity,
                written: 0,
            }))
        }
        Role::Rsu => {
            let identity = Identity::load(&cfg.identity)?;
            let ch = blackdp::ClusterHead::new(
                ClusterId(1),
                ch_addr(ClusterId(1)),
                TaId(1),
                identity.ta_public_key(),
                plan.cluster_count(),
                scen.blackdp.clone(),
                cfg.node_seed,
            );
            let mut node = RsuNode::new(ch, &plan, scen.tick);
            node.set_directory(wired_directory(cfg));
            Ok(RoleDriver::Rsu(RsuState { node, written: 0 }))
        }
        Role::Vehicle => {
            let identity = Identity::load(&cfg.identity)?;
            let trajectory = Trajectory::new(
                Position::new(cfg.start_x, cfg.start_y),
                Kmh(cfg.speed_kmh),
                Direction::Forward,
                Time::ZERO,
            );
            let vcfg = VehicleConfig {
                aodv: scen.aodv.clone(),
                blackdp: scen.blackdp.clone(),
                defense: scen.defense,
                tick: scen.tick,
                range_m: scen.range_m,
                ..VehicleConfig::default()
            };
            let mut node = VehicleNode::new(
                trajectory,
                plan,
                identity.keypair(),
                identity.certificate(),
                identity.ta_public_key(),
                vcfg,
                cfg.node_seed,
            );
            if cfg.source {
                node.add_intent(TrafficIntent {
                    dest: Addr(PHANTOM_DEST),
                    start: Time::from_secs(2),
                    count: scen.data_packets,
                    interval: scen.data_interval,
                });
            }
            Ok(RoleDriver::Vehicle(node))
        }
        Role::Attacker => {
            let identity = Identity::load(&cfg.identity)?;
            let trajectory = Trajectory::new(
                Position::new(cfg.start_x, cfg.start_y),
                Kmh(cfg.speed_kmh),
                Direction::Forward,
                Time::ZERO,
            );
            // The same interceptor chain `build_scenario` composes for a
            // single (non-cooperative, non-evading) black hole.
            let attack_cfg = AttackerConfig::default();
            let chain: Vec<Box<dyn Interceptor>> = vec![
                Box::new(Evasion),
                Box::new(ForgeRrep::new(attack_cfg.forge_params(), None)),
                Box::new(DropData::blackhole()),
            ];
            let node_cfg = MaliciousNodeConfig {
                tick: scen.tick,
                hello_interval: scen.aodv.hello_interval,
                renewal_zone: scen.renewal_zone,
                ..MaliciousNodeConfig::black_hole(TaId(identity.issuer))
            };
            let stack = AttackerStack::new(
                identity.keypair(),
                identity.certificate(),
                cfg.node_seed.wrapping_add(1),
                chain,
            );
            Ok(RoleDriver::Attacker(MaliciousNode::new(
                stack,
                trajectory,
                plan,
                node_cfg,
                cfg.node_seed,
            )))
        }
    }
}

fn outcome_line(suspect: Addr, outcome: &DetectionOutcome, packets: u32) -> String {
    let (tag, teammate) = match outcome {
        DetectionOutcome::ConfirmedSingle => ("confirmed-single", None),
        DetectionOutcome::ConfirmedCooperative { teammate } => {
            ("confirmed-cooperative", Some(*teammate))
        }
        DetectionOutcome::Unconfirmed => ("unconfirmed", None),
        DetectionOutcome::SuspectGone => ("suspect-gone", None),
    };
    let teammate = teammate.map_or("none".to_string(), |t| t.0.to_string());
    format!("suspect={} outcome={tag} teammate={teammate} packets={packets}\n", suspect.0)
}

impl RoleDriver {
    /// The hosted node, as the simulator trait object the harness drives.
    pub fn as_node(&mut self) -> &mut dyn Node<Frame, Tick> {
        match self {
            RoleDriver::Vehicle(n) => n,
            RoleDriver::Attacker(n) => n,
            RoleDriver::Rsu(s) => &mut s.node,
            RoleDriver::Ta(s) => &mut s.node,
        }
    }

    /// Handles an out-of-band control datagram. Only the TA answers
    /// enrollment requests; everyone else ignores them.
    ///
    /// Certificates are dated `Time::ZERO`, not the TA's current virtual
    /// time: enrollment happens during provisioning, before the peers'
    /// own clocks start, and each daemon maps its wall epoch to virtual
    /// zero independently. A cert stamped with the TA's (already running)
    /// clock would sit in every peer's future and be rejected until their
    /// clocks catch up — the simulator likewise enrolls everyone at zero.
    pub fn handle_enroll(&mut self, long_term: u64, public_key: u64) -> Option<Envelope> {
        let RoleDriver::Ta(s) = self else { return None };
        let cert = s.node.authority_mut().authority_mut().enroll(
            LongTermId(long_term),
            PublicKey::from_raw(public_key),
            Time::ZERO,
            s.validity,
            &mut s.rng,
        );
        let ta_key = s.node.authority().authority().public_key();
        Some(Envelope::EnrollReply {
            long_term,
            cert,
            ta_key: ta_key.raw(),
        })
    }

    /// Writes incremental outputs when they changed: the RSU's verdict
    /// journal and the TA's revocation journal. Cheap when nothing changed.
    pub fn flush(&mut self, out_dir: &Path, node_id: u32) -> io::Result<()> {
        match self {
            RoleDriver::Rsu(s) => {
                let events = s.node.events();
                if events.len() == s.written {
                    return Ok(());
                }
                let mut text = String::new();
                for event in events {
                    if let ChEvent::DetectionConcluded {
                        suspect,
                        outcome,
                        packets,
                    } = event
                    {
                        text.push_str(&outcome_line(*suspect, outcome, *packets));
                    }
                }
                atomic_write(&out_dir.join(format!("node{node_id}.verdicts")), text.as_bytes())?;
                s.written = events.len();
                Ok(())
            }
            RoleDriver::Ta(s) => {
                let events = s.node.events();
                if events.len() == s.written {
                    return Ok(());
                }
                let mut text = String::new();
                for event in events {
                    if let TaEvent::CertificateRevoked(p) = event {
                        text.push_str(&format!("revoked={}\n", p.0));
                    }
                }
                atomic_write(&out_dir.join(format!("node{node_id}.revoked")), text.as_bytes())?;
                s.written = events.len();
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Writes end-of-run outputs: detection responses for vehicles, the
    /// full address history for the attacker, and a forced journal rewrite
    /// for the RSU/TA (so an empty journal still exists for pollers).
    pub fn finish(&mut self, out_dir: &Path, node_id: u32) -> io::Result<()> {
        match self {
            RoleDriver::Vehicle(n) => {
                let mut text = String::new();
                for r in n.responses() {
                    text.push_str(&outcome_line(r.suspect, &r.outcome, 0));
                }
                atomic_write(
                    &out_dir.join(format!("node{node_id}.responses")),
                    text.as_bytes(),
                )
            }
            RoleDriver::Attacker(n) => {
                let mut text = String::new();
                for a in n.addr_history() {
                    text.push_str(&format!("addr={}\n", a.0));
                }
                atomic_write(&out_dir.join(format!("node{node_id}.addrs")), text.as_bytes())
            }
            RoleDriver::Rsu(s) => {
                // Mark dirty so `flush` rewrites unconditionally.
                s.written = usize::MAX;
                let mut text = String::new();
                for event in s.node.events() {
                    if let ChEvent::DetectionConcluded {
                        suspect,
                        outcome,
                        packets,
                    } = event
                    {
                        text.push_str(&outcome_line(*suspect, outcome, *packets));
                    }
                }
                s.written = s.node.events().len();
                atomic_write(&out_dir.join(format!("node{node_id}.verdicts")), text.as_bytes())
            }
            RoleDriver::Ta(s) => {
                let mut text = String::new();
                for event in s.node.events() {
                    if let TaEvent::CertificateRevoked(p) = event {
                        text.push_str(&format!("revoked={}\n", p.0));
                    }
                }
                s.written = s.node.events().len();
                atomic_write(&out_dir.join(format!("node{node_id}.revoked")), text.as_bytes())
            }
        }
    }
}
