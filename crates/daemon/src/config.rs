//! Daemon configuration and on-disk identity files.
//!
//! Both files are flat `key = value` text (one pair per line, `#` comments),
//! so a testbed — or a human — can write them with nothing but `println!`.
//! The only repeated key is `peer`, which lists every other daemon in the
//! deployment: `peer = <node_id>,<ip:port>,<radio|wired>`.
//!
//! The identity file is written by `blackdpd init` after enrolling with the
//! TA daemon and read back by `blackdpd run`. Secret keys never leave the
//! node: the file stores the RNG seed the keypair was generated from and
//! `run` re-derives the same keypair deterministically.

use std::fmt;
use std::fs;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use blackdp_crypto::{Certificate, Keypair, PseudonymId, PublicKey, Signature, TaId};
use blackdp_sim::Time;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which node the daemon runs as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Honest vehicle (full layered stack).
    Vehicle,
    /// Black-hole attacker (interceptor-composed stack).
    Attacker,
    /// Roadside unit / cluster head.
    Rsu,
    /// Trusted authority.
    Ta,
}

impl Role {
    /// Canonical config-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Vehicle => "vehicle",
            Role::Attacker => "attacker",
            Role::Rsu => "rsu",
            Role::Ta => "ta",
        }
    }

    fn parse(s: &str) -> Option<Role> {
        match s {
            "vehicle" => Some(Role::Vehicle),
            "attacker" => Some(Role::Attacker),
            "rsu" => Some(Role::Rsu),
            "ta" => Some(Role::Ta),
            _ => None,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One other daemon in the deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peer {
    /// The peer's node id (the simulator-level `NodeId` index).
    pub id: u32,
    /// Where its UDP socket listens.
    pub addr: SocketAddr,
    /// `true` for wired-backbone peers (RSU ↔ TA), `false` for radio.
    pub wired: bool,
}

/// Everything a `blackdpd` process needs to know, parsed from one file.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which node this daemon runs as.
    pub role: Role,
    /// This daemon's node id.
    pub node_id: u32,
    /// The UDP socket to bind.
    pub listen: SocketAddr,
    /// Every other daemon in the deployment.
    pub peers: Vec<Peer>,
    /// Node id of the TA daemon (enrollment + wired directory).
    pub ta_id: u32,
    /// Node id of the RSU daemon (wired directory).
    pub rsu_id: u32,
    /// Long-term identity enrolled with the TA.
    pub long_term: u64,
    /// Scenario seed: selects the shared protocol parameterization
    /// (`verdict::testbed_scenario`) and derives key seeds.
    pub scenario_seed: u64,
    /// Per-node RNG seed for the protocol stack.
    pub node_seed: u64,
    /// Wall-to-virtual time compression factor (1 = real time).
    pub scale: u64,
    /// Virtual seconds to run before shutting down.
    pub run_secs: u64,
    /// Spawn position along the highway, metres.
    pub start_x: f64,
    /// Lateral spawn position, metres.
    pub start_y: f64,
    /// Constant speed, km/h.
    pub speed_kmh: f64,
    /// Whether this vehicle originates the application traffic.
    pub source: bool,
    /// Directory for trace journals, verdicts, and logs.
    pub out_dir: PathBuf,
    /// Path of the identity file (`init` writes, `run` reads).
    pub identity: PathBuf,
}

/// A structured config/identity parse failure.
#[derive(Debug)]
pub enum ConfigError {
    /// The file could not be read or written.
    Io(io::Error),
    /// A required key is absent.
    Missing(&'static str),
    /// A key's value failed to parse.
    Invalid {
        /// The offending key.
        key: &'static str,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io(e) => write!(f, "io error: {e}"),
            ConfigError::Missing(key) => write!(f, "missing required key {key:?}"),
            ConfigError::Invalid { key, value } => {
                write!(f, "invalid value {value:?} for key {key:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<io::Error> for ConfigError {
    fn from(e: io::Error) -> Self {
        ConfigError::Io(e)
    }
}

/// Parsed `key = value` lines; repeated keys keep every occurrence.
struct KvFile {
    pairs: Vec<(String, String)>,
}

impl KvFile {
    fn parse(text: &str) -> KvFile {
        let mut pairs = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((k, v)) = line.split_once('=') {
                pairs.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        KvFile { pairs }
    }

    fn get(&self, key: &'static str) -> Result<&str, ConfigError> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or(ConfigError::Missing(key))
    }

    fn parse_as<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ConfigError> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| ConfigError::Invalid {
            key,
            value: raw.to_string(),
        })
    }

    fn all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.pairs
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl NodeConfig {
    /// Loads and parses a config file.
    pub fn load(path: &Path) -> Result<NodeConfig, ConfigError> {
        let text = fs::read_to_string(path)?;
        let kv = KvFile::parse(&text);
        let role_raw = kv.get("role")?;
        let role = Role::parse(role_raw).ok_or(ConfigError::Invalid {
            key: "role",
            value: role_raw.to_string(),
        })?;
        let mut peers = Vec::new();
        for raw in kv.all("peer") {
            let mut parts = raw.split(',').map(str::trim);
            let bad = || ConfigError::Invalid {
                key: "peer",
                value: raw.to_string(),
            };
            let id = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(bad)?;
            let addr = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(bad)?;
            let wired = match parts.next() {
                Some("radio") => false,
                Some("wired") => true,
                _ => return Err(bad()),
            };
            peers.push(Peer { id, addr, wired });
        }
        Ok(NodeConfig {
            role,
            node_id: kv.parse_as("node_id")?,
            listen: kv.parse_as("listen")?,
            peers,
            ta_id: kv.parse_as("ta_id")?,
            rsu_id: kv.parse_as("rsu_id")?,
            long_term: kv.parse_as("long_term")?,
            scenario_seed: kv.parse_as("scenario_seed")?,
            node_seed: kv.parse_as("node_seed")?,
            scale: kv.parse_as("scale")?,
            run_secs: kv.parse_as("run_secs")?,
            start_x: kv.parse_as("start_x")?,
            start_y: kv.parse_as("start_y")?,
            speed_kmh: kv.parse_as("speed_kmh")?,
            source: kv.parse_as("source")?,
            out_dir: PathBuf::from(kv.get("out_dir")?),
            identity: PathBuf::from(kv.get("identity")?),
        })
    }

    /// Renders the config back to file text (the testbed writes these).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("role = {}\n", self.role));
        s.push_str(&format!("node_id = {}\n", self.node_id));
        s.push_str(&format!("listen = {}\n", self.listen));
        for p in &self.peers {
            let kind = if p.wired { "wired" } else { "radio" };
            s.push_str(&format!("peer = {},{},{}\n", p.id, p.addr, kind));
        }
        s.push_str(&format!("ta_id = {}\n", self.ta_id));
        s.push_str(&format!("rsu_id = {}\n", self.rsu_id));
        s.push_str(&format!("long_term = {}\n", self.long_term));
        s.push_str(&format!("scenario_seed = {}\n", self.scenario_seed));
        s.push_str(&format!("node_seed = {}\n", self.node_seed));
        s.push_str(&format!("scale = {}\n", self.scale));
        s.push_str(&format!("run_secs = {}\n", self.run_secs));
        s.push_str(&format!("start_x = {}\n", self.start_x));
        s.push_str(&format!("start_y = {}\n", self.start_y));
        s.push_str(&format!("speed_kmh = {}\n", self.speed_kmh));
        s.push_str(&format!("source = {}\n", self.source));
        s.push_str(&format!("out_dir = {}\n", self.out_dir.display()));
        s.push_str(&format!("identity = {}\n", self.identity.display()));
        s
    }

    /// The peer entry for `id`, if listed.
    pub fn peer(&self, id: u32) -> Option<&Peer> {
        self.peers.iter().find(|p| p.id == id)
    }
}

/// A provisioned credential, as written by `blackdpd init`.
///
/// Stores the keypair's derivation seed (not the secret scalar) plus every
/// certificate field and the TA public key learned during enrollment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// The role the identity was provisioned for.
    pub role: Role,
    /// Seed the keypair is re-derived from.
    pub key_seed: u64,
    /// Long-term identity registered with the TA.
    pub long_term: u64,
    /// Issued pseudonym.
    pub pseudonym: u64,
    /// Raw public key.
    pub public_key: u64,
    /// Certificate serial number.
    pub serial: u64,
    /// Issuing TA.
    pub issuer: u32,
    /// Issue time, virtual microseconds.
    pub issued_micros: u64,
    /// Expiry time, virtual microseconds.
    pub expires_micros: u64,
    /// Certificate signature (e component).
    pub sig_e: u64,
    /// Certificate signature (s component).
    pub sig_s: u64,
    /// The TA's raw public key (verifies certificates and seals).
    pub ta_key: u64,
}

impl Identity {
    /// Builds an identity record from an enrollment result.
    pub fn from_enrollment(
        role: Role,
        key_seed: u64,
        long_term: u64,
        cert: &Certificate,
        ta_key: PublicKey,
    ) -> Identity {
        Identity {
            role,
            key_seed,
            long_term,
            pseudonym: cert.pseudonym.0,
            public_key: cert.public_key.raw(),
            serial: cert.serial,
            issuer: cert.issuer.0,
            issued_micros: cert.issued.as_micros(),
            expires_micros: cert.expires.as_micros(),
            sig_e: cert.signature.e,
            sig_s: cert.signature.s,
            ta_key: ta_key.raw(),
        }
    }

    /// Re-derives the keypair the identity was enrolled with.
    pub fn keypair(&self) -> Keypair {
        Keypair::generate(&mut StdRng::seed_from_u64(self.key_seed))
    }

    /// Reconstructs the enrolled certificate.
    pub fn certificate(&self) -> Certificate {
        Certificate {
            pseudonym: PseudonymId(self.pseudonym),
            public_key: PublicKey::from_raw(self.public_key),
            serial: self.serial,
            issuer: TaId(self.issuer),
            issued: Time::from_micros(self.issued_micros),
            expires: Time::from_micros(self.expires_micros),
            signature: Signature {
                e: self.sig_e,
                s: self.sig_s,
            },
        }
    }

    /// The TA public key learned at enrollment.
    pub fn ta_public_key(&self) -> PublicKey {
        PublicKey::from_raw(self.ta_key)
    }

    /// Renders the identity to file text.
    pub fn render(&self) -> String {
        format!(
            "role = {}\nkey_seed = {}\nlong_term = {}\npseudonym = {}\n\
             public_key = {}\nserial = {}\nissuer = {}\nissued_micros = {}\n\
             expires_micros = {}\nsig_e = {}\nsig_s = {}\nta_key = {}\n",
            self.role,
            self.key_seed,
            self.long_term,
            self.pseudonym,
            self.public_key,
            self.serial,
            self.issuer,
            self.issued_micros,
            self.expires_micros,
            self.sig_e,
            self.sig_s,
            self.ta_key,
        )
    }

    /// Loads and parses an identity file.
    pub fn load(path: &Path) -> Result<Identity, ConfigError> {
        let text = fs::read_to_string(path)?;
        let kv = KvFile::parse(&text);
        let role_raw = kv.get("role")?;
        let role = Role::parse(role_raw).ok_or(ConfigError::Invalid {
            key: "role",
            value: role_raw.to_string(),
        })?;
        Ok(Identity {
            role,
            key_seed: kv.parse_as("key_seed")?,
            long_term: kv.parse_as("long_term")?,
            pseudonym: kv.parse_as("pseudonym")?,
            public_key: kv.parse_as("public_key")?,
            serial: kv.parse_as("serial")?,
            issuer: kv.parse_as("issuer")?,
            issued_micros: kv.parse_as("issued_micros")?,
            expires_micros: kv.parse_as("expires_micros")?,
            sig_e: kv.parse_as("sig_e")?,
            sig_s: kv.parse_as("sig_s")?,
            ta_key: kv.parse_as("ta_key")?,
        })
    }

    /// Writes the identity file (atomically, world-unreadable content aside:
    /// the file holds a derivation seed, so the testbed keeps it in its
    /// private output directory).
    pub fn save(&self, path: &Path) -> Result<(), ConfigError> {
        blackdp_scenario::atomic_write(path, self.render().as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> NodeConfig {
        NodeConfig {
            role: Role::Vehicle,
            node_id: 2,
            listen: "127.0.0.1:45002".parse().unwrap(),
            peers: vec![
                Peer {
                    id: 0,
                    addr: "127.0.0.1:45000".parse().unwrap(),
                    wired: true,
                },
                Peer {
                    id: 3,
                    addr: "127.0.0.1:45003".parse().unwrap(),
                    wired: false,
                },
            ],
            ta_id: 0,
            rsu_id: 1,
            long_term: 2,
            scenario_seed: 42,
            node_seed: 142,
            scale: 10,
            run_secs: 25,
            start_x: 100.0,
            start_y: 20.0,
            speed_kmh: 60.0,
            source: true,
            out_dir: PathBuf::from("/tmp/tb"),
            identity: PathBuf::from("/tmp/tb/node2.id"),
        }
    }

    #[test]
    fn config_round_trips_through_render() {
        let cfg = sample_config();
        let dir = std::env::temp_dir().join(format!("blackdpd-cfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.cfg");
        std::fs::write(&path, cfg.render()).unwrap();
        let back = NodeConfig::load(&path).unwrap();
        assert_eq!(back.role, cfg.role);
        assert_eq!(back.node_id, cfg.node_id);
        assert_eq!(back.listen, cfg.listen);
        assert_eq!(back.peers, cfg.peers);
        assert_eq!(back.source, cfg.source);
        assert_eq!(back.identity, cfg.identity);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identity_reconstructs_keypair_and_cert() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ta = blackdp_crypto::TrustedAuthority::new(TaId(1), &mut rng);
        let keys = Keypair::generate(&mut StdRng::seed_from_u64(99));
        let cert = ta.enroll(
            blackdp_crypto::LongTermId(5),
            keys.public(),
            Time::ZERO,
            blackdp_sim::Duration::from_secs(600),
            &mut rng,
        );
        let id = Identity::from_enrollment(Role::Vehicle, 99, 5, &cert, ta.public_key());
        assert_eq!(id.keypair().public(), keys.public());
        assert_eq!(id.certificate(), cert);

        let dir = std::env::temp_dir().join(format!("blackdpd-id-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.id");
        id.save(&path).unwrap();
        assert_eq!(Identity::load(&path).unwrap(), id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_invalid_keys_are_structured_errors() {
        let dir = std::env::temp_dir().join(format!("blackdpd-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.cfg");
        std::fs::write(&path, "role = vehicle\n").unwrap();
        match NodeConfig::load(&path) {
            Err(ConfigError::Missing(key)) => assert_eq!(key, "node_id"),
            other => panic!("expected Missing, got {other:?}"),
        }
        std::fs::write(&path, "role = submarine\nnode_id = 1\n").unwrap();
        assert!(matches!(
            NodeConfig::load(&path),
            Err(ConfigError::Invalid { key: "role", .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
