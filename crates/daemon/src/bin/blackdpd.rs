//! `blackdpd` — one BlackDP node as a UDP daemon.
//!
//! ```text
//! blackdpd init --config <file>   # provision identity/cert from the TA
//! blackdpd run  --config <file>   # run the node until its virtual end
//! ```
//!
//! `init` generates the node's keypair deterministically from the scenario
//! seed, enrolls with the TA daemon over UDP, and writes the identity file
//! named in the config. `run` reads the config (and, for every role but the
//! TA, the identity file) and enters the socket event loop.

use std::net::UdpSocket;
use std::path::PathBuf;
use std::process::ExitCode;

use blackdp_daemon::config::{Identity, NodeConfig, Role};
use blackdp_daemon::{key_seed, net, roles, runtime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn usage() -> ExitCode {
    eprintln!("usage: blackdpd <init|run> --config <file>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, config_path) = match parse_args(&args) {
        Some(parts) => parts,
        None => return usage(),
    };
    let cfg = match NodeConfig::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("blackdpd: cannot load config {}: {e}", config_path.display());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "init" => cmd_init(&cfg),
        "run" => cmd_run(&cfg),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("blackdpd: node {} ({}): {e}", cfg.node_id, cfg.role);
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Option<(String, PathBuf)> {
    let cmd = args.first()?.clone();
    let mut config = None;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--config" {
            config = Some(PathBuf::from(args.get(i + 1)?));
            i += 2;
        } else {
            return None;
        }
    }
    Some((cmd, config?))
}

fn cmd_init(cfg: &NodeConfig) -> Result<(), Box<dyn std::error::Error>> {
    if cfg.role == Role::Ta {
        // The TA derives its authority from the scenario seed at `run`
        // time; there is nothing to provision.
        println!("blackdpd: node {} is the TA; no identity needed", cfg.node_id);
        return Ok(());
    }
    let seed = key_seed(cfg.scenario_seed, cfg.node_id);
    let keys = blackdp_crypto::Keypair::generate(&mut StdRng::seed_from_u64(seed));
    let ta_peer = cfg
        .peer(cfg.ta_id)
        .ok_or("config lists no peer entry for the TA")?;
    let socket = UdpSocket::bind(cfg.listen)?;
    let (cert, ta_key) = net::enroll(
        &socket,
        ta_peer.addr,
        cfg.node_id,
        cfg.long_term,
        keys.public().raw(),
    )?;
    let identity = Identity::from_enrollment(cfg.role, seed, cfg.long_term, &cert, ta_key);
    identity.save(&cfg.identity)?;
    println!(
        "blackdpd: node {} enrolled as pseudonym {} (cert serial {})",
        cfg.node_id, identity.pseudonym, identity.serial
    );
    Ok(())
}

fn cmd_run(cfg: &NodeConfig) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    let driver = roles::build_driver(cfg)?;
    let report = runtime::run(cfg, driver)?;
    println!(
        "blackdpd: node {} ({}) stopped: {:?} sent={} recv={} timers={} decode_errors={}",
        cfg.node_id,
        cfg.role,
        report.stopped,
        report.sent,
        report.received,
        report.timers_fired,
        report.decode_errors,
    );
    Ok(())
}
