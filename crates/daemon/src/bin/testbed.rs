//! `testbed` — a multi-process BlackDP deployment on localhost.
//!
//! ```text
//! testbed run   [--seed N] [--scale N] [--out DIR] [--keep]
//! testbed smoke
//! ```
//!
//! Launches one `blackdpd` process per node — 1 TA, 1 RSU, 5 honest
//! vehicles, 1 black-hole attacker — on loopback UDP, provisions every
//! identity through the live TA (`blackdpd init`), runs the detection
//! protocol end-to-end in compressed wall time, then runs the *same*
//! scenario in the discrete-event simulator and demands verdict
//! equivalence through the trace oracle. `smoke` is the CI entry point:
//! it fails unless the attacker is confirmed, revoked, and the two runs
//! agree.

use std::fs;
use std::io::Write as _;
use std::net::UdpSocket;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use blackdp_daemon::config::{NodeConfig, Peer, Role};
use blackdp_daemon::net::Envelope;
use blackdp_daemon::verdict::{
    canon_events, compare, sim_verdicts, testbed_scenario, CanonVerdict, RunVerdicts,
};

/// Node ids: TA, RSU, honest vehicles (first is the traffic source), and
/// the black-hole attacker.
const TA: u32 = 0;
const RSU: u32 = 1;
const VEHICLES: std::ops::RangeInclusive<u32> = 2..=6;
const ATTACKER: u32 = 7;
const ALL: std::ops::RangeInclusive<u32> = 0..=7;

const DEFAULT_SEED: u64 = 42;
const DEFAULT_SCALE: u64 = 10;
const RUN_SECS: u64 = 25;

struct Options {
    seed: u64,
    scale: u64,
    out: Option<PathBuf>,
    keep: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, opts)) = parse_args(&args) else {
        eprintln!("usage: testbed <run|smoke> [--seed N] [--scale N] [--out DIR] [--keep]");
        return ExitCode::from(2);
    };
    if cmd == "dump" {
        // Debug helper: decode and print a per-node trace journal.
        return match opts.out.as_deref().map(dump_trace) {
            Some(Ok(())) => ExitCode::SUCCESS,
            _ => {
                eprintln!("usage: testbed dump --out <node trace file>");
                ExitCode::FAILURE
            }
        };
    }
    if cmd != "run" && cmd != "smoke" {
        eprintln!("testbed: unknown command {cmd:?}");
        return ExitCode::from(2);
    }
    match testbed(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("testbed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Option<(String, Options)> {
    let cmd = args.first()?.clone();
    let mut opts = Options {
        seed: DEFAULT_SEED,
        scale: DEFAULT_SCALE,
        out: None,
        keep: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.seed = args.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--scale" => {
                opts.scale = args.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.get(i + 1)?));
                i += 2;
            }
            "--keep" => {
                opts.keep = true;
                i += 1;
            }
            _ => return None,
        }
    }
    Some((cmd, opts))
}

fn dump_trace(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = fs::read(path)?;
    let events = blackdp_daemon::verdict::decode_trace_bytes(&bytes)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for e in events {
        // A closed pipe (`testbed dump | head`) is a normal way to stop.
        if writeln!(out, "{e}").is_err() {
            break;
        }
    }
    Ok(())
}

/// Picks a free localhost port per node by binding throwaway sockets.
fn allocate_ports() -> std::io::Result<Vec<(u32, u16)>> {
    let mut holders = Vec::new();
    let mut ports = Vec::new();
    for id in ALL {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        ports.push((id, sock.local_addr()?.port()));
        holders.push(sock);
    }
    drop(holders);
    Ok(ports)
}

fn role_of(id: u32) -> Role {
    match id {
        TA => Role::Ta,
        RSU => Role::Rsu,
        ATTACKER => Role::Attacker,
        _ => Role::Vehicle,
    }
}

fn node_config(id: u32, ports: &[(u32, u16)], opts: &Options, out: &Path) -> NodeConfig {
    let port_of = |id: u32| ports.iter().find(|(i, _)| *i == id).unwrap().1;
    let peers: Vec<Peer> = ALL
        .filter(|&p| p != id)
        .map(|p| Peer {
            id: p,
            addr: format!("127.0.0.1:{}", port_of(p)).parse().unwrap(),
            // The TA sits off the radio plane: RSU reaches it (and it
            // answers) over the wired backbone only.
            wired: p == TA,
        })
        .collect();
    // Geometry: everyone inside the single 5 km cluster and inside radio
    // range; the attacker sits mid-cluster like the simulator places it.
    let (start_x, start_y) = match id {
        TA | RSU => (2_500.0, 0.0),
        ATTACKER => (2_000.0, 40.0),
        v => (100.0 * f64::from(v), 20.0),
    };
    let speed_kmh = match id {
        TA | RSU => 0.0,
        _ => 60.0,
    };
    let long_term = match id {
        RSU => 9_000,
        ATTACKER => 1_000,
        v => u64::from(v - 2),
    };
    NodeConfig {
        role: role_of(id),
        node_id: id,
        listen: format!("127.0.0.1:{}", port_of(id)).parse().unwrap(),
        peers,
        ta_id: TA,
        rsu_id: RSU,
        long_term,
        scenario_seed: opts.seed,
        node_seed: opts.seed.wrapping_add(100 + u64::from(id)),
        scale: opts.scale,
        run_secs: RUN_SECS,
        start_x,
        start_y,
        speed_kmh,
        source: id == *VEHICLES.start(),
        out_dir: out.to_path_buf(),
        identity: out.join(format!("node{id}.id")),
    }
}

fn blackdpd_path() -> std::io::Result<PathBuf> {
    let me = std::env::current_exe()?;
    let dir = me
        .parent()
        .ok_or_else(|| std::io::Error::other("current_exe has no parent"))?;
    let path = dir.join("blackdpd");
    if path.exists() {
        Ok(path)
    } else {
        Err(std::io::Error::other(format!(
            "blackdpd not found next to testbed at {}",
            path.display()
        )))
    }
}

fn spawn(bin: &Path, sub: &str, cfg_path: &Path, log: &Path) -> std::io::Result<Child> {
    let log_file = fs::File::create(log)?;
    let err_file = log_file.try_clone()?;
    Command::new(bin)
        .arg(sub)
        .arg("--config")
        .arg(cfg_path)
        .stdout(Stdio::from(log_file))
        .stderr(Stdio::from(err_file))
        .spawn()
}

fn parse_kv_lines(path: &Path, key: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            line.split_whitespace().find_map(|field| {
                field
                    .strip_prefix(key)
                    .and_then(|rest| rest.strip_prefix('='))
                    .and_then(|v| v.parse().ok())
            })
        })
        .collect()
}

/// Parses the RSU's verdict journal into canonical confirmed verdicts.
fn parse_verdicts(path: &Path, is_attacker: &dyn Fn(u64) -> bool) -> Vec<CanonVerdict> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut verdicts = Vec::new();
    for line in text.lines() {
        let mut suspect = None;
        let mut outcome = None;
        let mut teammate = None;
        for field in line.split_whitespace() {
            if let Some(v) = field.strip_prefix("suspect=") {
                suspect = v.parse::<u64>().ok();
            } else if let Some(v) = field.strip_prefix("outcome=") {
                outcome = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("teammate=") {
                teammate = v.parse::<u64>().ok();
            }
        }
        let (Some(suspect), Some(outcome)) = (suspect, outcome) else {
            continue;
        };
        match outcome.as_str() {
            "confirmed-single" => verdicts.push(CanonVerdict {
                suspect_is_attacker: is_attacker(suspect),
                cooperative: false,
                teammate_is_attacker: None,
            }),
            "confirmed-cooperative" => verdicts.push(CanonVerdict {
                suspect_is_attacker: is_attacker(suspect),
                cooperative: true,
                teammate_is_attacker: teammate.map(&is_attacker),
            }),
            _ => {}
        }
    }
    verdicts
}

fn file_contains_confirmed(path: &Path) -> bool {
    fs::read_to_string(path)
        .map(|t| t.contains("outcome=confirmed-"))
        .unwrap_or(false)
}

fn send_shutdown(ports: &[(u32, u16)]) {
    let Ok(sock) = UdpSocket::bind("127.0.0.1:0") else {
        return;
    };
    let bytes = Envelope::Shutdown { from: u32::MAX }.encode();
    for &(_, port) in ports {
        let _ = sock.send_to(&bytes, format!("127.0.0.1:{port}"));
    }
}

fn reap(mut children: Vec<(u32, Child)>, grace: Duration) -> Vec<(u32, bool)> {
    let deadline = Instant::now() + grace;
    let mut status = Vec::new();
    while !children.is_empty() {
        children.retain_mut(|(id, child)| match child.try_wait() {
            Ok(Some(s)) => {
                status.push((*id, s.success()));
                false
            }
            Ok(None) => true,
            Err(_) => {
                status.push((*id, false));
                false
            }
        });
        if children.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            for (id, child) in children.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
                status.push((*id, false));
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    status
}

fn testbed(opts: &Options) -> Result<bool, Box<dyn std::error::Error>> {
    let bin = blackdpd_path()?;
    let out = opts.out.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("blackdp-testbed-{}", std::process::id()))
    });
    fs::create_dir_all(&out)?;
    println!("testbed: seed={} scale={} out={}", opts.seed, opts.scale, out.display());

    let ports = allocate_ports()?;
    let mut cfg_paths = Vec::new();
    for id in ALL {
        let cfg = node_config(id, &ports, opts, &out);
        let path = out.join(format!("node{id}.cfg"));
        let mut f = fs::File::create(&path)?;
        f.write_all(cfg.render().as_bytes())?;
        cfg_paths.push((id, path));
    }
    let cfg_path = |id: u32| -> &Path {
        &cfg_paths.iter().find(|(i, _)| *i == id).unwrap().1
    };

    // 1. The TA comes up first: it answers enrollment during init.
    let mut children = vec![(TA, spawn(&bin, "run", cfg_path(TA), &out.join("node0.log"))?)];
    std::thread::sleep(Duration::from_millis(150));

    // 2. Provision every identity through the live TA, in a fixed order.
    let mut init_order: Vec<u32> = vec![RSU];
    init_order.extend(VEHICLES);
    init_order.push(ATTACKER);
    for id in init_order {
        let status = Command::new(&bin)
            .arg("init")
            .arg("--config")
            .arg(cfg_path(id))
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .status()?;
        if !status.success() {
            send_shutdown(&ports);
            reap(children, Duration::from_secs(5));
            return Err(format!("blackdpd init failed for node {id}").into());
        }
    }

    // 3. Launch the deployment.
    for id in ALL.filter(|&id| id != TA) {
        children.push((
            id,
            spawn(&bin, "run", cfg_path(id), &out.join(format!("node{id}.log")))?,
        ));
    }

    // 4. Wait for the RSU to confirm a suspect and the TA to revoke — or
    //    for the virtual run to end.
    let verdict_file = out.join(format!("node{RSU}.verdicts"));
    let revoked_file = out.join(format!("node{TA}.revoked"));
    let wall_run = Duration::from_secs(RUN_SECS / opts.scale.max(1) + 1);
    let deadline = Instant::now() + wall_run + Duration::from_secs(30);
    while Instant::now() < deadline {
        if file_contains_confirmed(&verdict_file) && !parse_kv_lines(&revoked_file, "revoked").is_empty()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // 5. Tear down and collect.
    send_shutdown(&ports);
    let exit_status = reap(children, Duration::from_secs(10));
    for (id, ok) in &exit_status {
        if !ok {
            eprintln!("testbed: node {id} exited abnormally (see node{id}.log)");
        }
    }

    // 6. The attacker's full protocol-address history (identity renewal
    //    included) defines who "the attacker" is.
    let mut attacker_addrs = parse_kv_lines(&out.join(format!("node{ATTACKER}.addrs")), "addr");
    attacker_addrs.extend(parse_kv_lines(
        &out.join(format!("node{ATTACKER}.id")),
        "pseudonym",
    ));
    if attacker_addrs.is_empty() {
        return Err("no attacker addresses recovered from the testbed run".into());
    }
    let is_attacker = |a: u64| attacker_addrs.contains(&a);

    let live = RunVerdicts {
        verdicts: parse_verdicts(&verdict_file, &is_attacker),
        attacker_revoked: parse_kv_lines(&revoked_file, "revoked")
            .iter()
            .any(|&p| is_attacker(p)),
    };

    // 7. The simulator twin of the same scenario.
    let (cfg, spec) = testbed_scenario(opts.seed);
    let sim = sim_verdicts(&cfg, &spec);

    println!(
        "testbed: live verdicts: {:?} revoked={}",
        live.verdicts, live.attacker_revoked
    );
    println!(
        "testbed: sim  verdicts: {:?} revoked={}",
        sim.verdicts, sim.attacker_revoked
    );

    let mut ok = true;
    if !live.attacker_confirmed() {
        eprintln!("testbed: FAIL — live run never confirmed the attacker");
        ok = false;
    }
    if !live.attacker_revoked {
        eprintln!("testbed: FAIL — live run never revoked the attacker");
        ok = false;
    }
    if live.attacker_revoked != sim.attacker_revoked {
        eprintln!(
            "testbed: FAIL — isolation diverges (live {} vs sim {})",
            live.attacker_revoked, sim.attacker_revoked
        );
        ok = false;
    }
    match compare(&sim, &live) {
        None => println!(
            "testbed: verdict equivalence OK ({} canonical verdict(s))",
            canon_events(&live.verdicts).len()
        ),
        Some(divergence) => {
            eprintln!("testbed: FAIL — verdicts diverge from the simulator: {divergence:?}");
            ok = false;
        }
    }

    if ok && !opts.keep && opts.out.is_none() {
        let _ = fs::remove_dir_all(&out);
    } else {
        println!("testbed: artifacts kept at {}", out.display());
    }
    println!("testbed: {}", if ok { "PASS" } else { "FAIL" });
    Ok(ok)
}
