//! # blackdp-daemon — the BlackDP stack as a real UDP daemon
//!
//! Everything below `crates/scenario` is sans-io: the protocol state
//! machines consume messages and emit effects without touching a socket.
//! This crate is the second host for those state machines (the simulator
//! being the first): `blackdpd` runs one node — vehicle, attacker, RSU, or
//! TA — over a real UDP socket, with wall-clock time mapped onto virtual
//! [`Time`](blackdp_sim::Time) through
//! [`WallClock`](blackdp_sim::WallClock), and the `testbed` binary launches
//! a full localhost deployment (TA + RSU + vehicles + one black-hole
//! attacker), runs live detection end-to-end, and cross-validates the
//! verdicts against a simulator run of the same scenario through the trace
//! oracle.
//!
//! Module map:
//!
//! - [`config`] — `key = value` config and identity files.
//! - [`net`] — the datagram envelope, retry/backoff, enrollment handshake.
//! - [`roles`] — per-role node construction and output files.
//! - [`runtime`] — the socket event loop.
//! - [`verdict`] — the shared scenario and testbed↔simulator equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod net;
pub mod roles;
pub mod runtime;
pub mod verdict;

/// Derives the deterministic keypair seed for a node: `init` generates the
/// keypair from this and the identity file records it, so `run` re-derives
/// the same secret without ever storing it.
pub fn key_seed(scenario_seed: u64, node_id: u32) -> u64 {
    // splitmix64 of the combined value, so adjacent node ids do not
    // produce adjacent RNG streams.
    let mut z = scenario_seed
        .wrapping_add(u64::from(node_id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
