//! The daemon's socket event loop.
//!
//! Maps the simulator's effect vocabulary onto a real UDP socket: virtual
//! time comes from a [`WallClock`] anchored at startup, timers live in a
//! local heap and become socket read timeouts, and `Unicast`/`Wired`/
//! `Broadcast` effects become datagrams to the configured peers. Every
//! frame sent or received is journalled as a [`TraceEvent`] and written to
//! `node<N>.trace` at shutdown with the PR-3 trace codec, so a testbed run
//! leaves the same kind of evidence a simulator run does.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io;
use std::net::UdpSocket;
use std::time::Duration as WallDuration;

use blackdp_scenario::{atomic_write, encode_trace, Frame, Tick, TraceEvent};
use blackdp_sim::{Channel, NodeEffect, NodeHarness, NodeId, Time, WallClock};

use crate::config::{NodeConfig, Peer};
use crate::net::{send_with_retry, Envelope, NetError, MAX_DATAGRAM};
use crate::roles::RoleDriver;

/// Marker for the `to` field of broadcast trace events.
const BROADCAST_TO: u32 = u32::MAX;

/// Shortest socket read timeout — below this we'd busy-spin syscalls.
const MIN_WAIT: WallDuration = WallDuration::from_micros(200);
/// Longest socket read timeout — an upper bound keeps the loop responsive
/// to shutdown datagrams even with no timer armed.
const MAX_WAIT: WallDuration = WallDuration::from_millis(50);

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Counters reported at shutdown.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunReport {
    /// Datagrams sent (broadcast fan-out counted per peer).
    pub sent: u64,
    /// Protocol frames delivered to the node.
    pub received: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Why the loop ended.
    pub stopped: Stop,
}

/// How a daemon run ended.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The configured virtual duration elapsed.
    #[default]
    EndOfRun,
    /// The node despawned itself.
    Despawned,
    /// A shutdown datagram arrived.
    Shutdown,
}

/// Runs the daemon event loop to completion. Returns the run report.
pub fn run(cfg: &NodeConfig, mut driver: RoleDriver) -> io::Result<RunReport> {
    let socket = UdpSocket::bind(cfg.listen)?;
    let peers: HashMap<u32, Peer> = cfg.peers.iter().map(|p| (p.id, p.clone())).collect();
    let self_id = NodeId::new(cfg.node_id);
    let end = Time::from_secs(cfg.run_secs);

    let mut harness = NodeHarness::new();
    let mut timers: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut report = RunReport::default();
    let mut buf = vec![0u8; MAX_DATAGRAM];

    // The clock anchors virtual zero at startup; everything before the
    // first `now()` call happens "at" Time::ZERO.
    let clock = WallClock::new(cfg.scale);

    let (_, effects) =
        harness.dispatch(Time::ZERO, self_id, |ctx| driver.as_node().on_start(ctx));
    let mut despawned = apply(
        &socket, &peers, cfg, &clock, &mut timers, &mut cancelled, &mut trace, &mut report,
        effects,
    );

    while !despawned {
        let now = clock.now();
        if now >= end {
            break;
        }

        // Fire every timer that is due.
        while let Some(&Reverse((at, raw))) = timers.peek() {
            if at > now.as_micros() {
                break;
            }
            timers.pop();
            if cancelled.remove(&raw) {
                continue;
            }
            report.timers_fired += 1;
            let fire_at = clock.now().max(Time::from_micros(at));
            let effects = harness.fire(driver.as_node(), fire_at, self_id, Tick);
            despawned |= apply(
                &socket, &peers, cfg, &clock, &mut timers, &mut cancelled, &mut trace,
                &mut report, effects,
            );
        }
        if despawned {
            report.stopped = Stop::Despawned;
            break;
        }

        // Sleep (in wall time) until the next timer or the end of the run,
        // waking early for any datagram.
        let next_deadline = timers
            .peek()
            .map(|&Reverse((at, _))| Time::from_micros(at))
            .unwrap_or(end)
            .min(end);
        let wait = clock.wall_until(next_deadline).clamp(MIN_WAIT, MAX_WAIT);
        socket.set_read_timeout(Some(wait))?;

        match socket.recv_from(&mut buf) {
            Ok((n, src)) => match Envelope::decode(&buf[..n]) {
                Ok(Envelope::Frame {
                    from,
                    channel,
                    frame,
                }) => {
                    report.received += 1;
                    trace.push(frame_event(&frame, clock.now(), from, cfg.node_id, channel));
                    let effects = harness.deliver(
                        driver.as_node(),
                        clock.now(),
                        self_id,
                        NodeId::new(from),
                        frame,
                        channel,
                    );
                    despawned |= apply(
                        &socket, &peers, cfg, &clock, &mut timers, &mut cancelled, &mut trace,
                        &mut report, effects,
                    );
                    if despawned {
                        report.stopped = Stop::Despawned;
                    }
                }
                Ok(Envelope::EnrollRequest {
                    long_term,
                    public_key,
                    ..
                }) => {
                    if let Some(reply) = driver.handle_enroll(long_term, public_key) {
                        // Reply straight to the requester's socket — during
                        // init the requester is not in the peer table yet.
                        let _ = socket.send_to(&reply.encode(), src);
                    }
                }
                Ok(Envelope::EnrollReply { .. }) => {
                    // Only `init` consumes these; a stray one is ignored.
                }
                Ok(Envelope::Shutdown { .. }) => {
                    report.stopped = Stop::Shutdown;
                    break;
                }
                Err(NetError::BadWire(_)) | Err(_) => {
                    report.decode_errors += 1;
                }
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }

        driver.flush(&cfg.out_dir, cfg.node_id)?;
    }
    if despawned {
        report.stopped = Stop::Despawned;
    }

    driver.finish(&cfg.out_dir, cfg.node_id)?;
    atomic_write(
        &cfg.out_dir.join(format!("node{}.trace", cfg.node_id)),
        &encode_trace(&trace),
    )?;
    Ok(report)
}

fn frame_event(frame: &Frame, now: Time, from: u32, to: u32, channel: Channel) -> TraceEvent {
    TraceEvent {
        at_micros: now.as_micros(),
        from,
        to,
        channel: match channel {
            Channel::Radio => 0,
            Channel::Wired => 1,
        },
        src: frame.src.0,
        dst: frame.dst.map(|d| d.0),
        kind: frame.wire.kind().to_string(),
        digest: fnv64(&frame.wire.encode()),
    }
}

/// Sends one addressed frame to a peer, journalling it. The channel the
/// receiver sees mirrors the effect kind, exactly as the simulator's
/// delivery path does.
#[allow(clippy::too_many_arguments)]
fn send_unicast(
    socket: &UdpSocket,
    peers: &HashMap<u32, Peer>,
    cfg: &NodeConfig,
    clock: &WallClock,
    trace: &mut Vec<TraceEvent>,
    report: &mut RunReport,
    to: NodeId,
    payload: Frame,
    channel: Channel,
) {
    let Some(peer) = peers.get(&to.index()) else {
        return;
    };
    trace.push(frame_event(
        &payload,
        clock.now(),
        cfg.node_id,
        to.index(),
        channel,
    ));
    let env = Envelope::Frame {
        from: cfg.node_id,
        channel,
        frame: payload,
    };
    if send_with_retry(socket, &env.encode(), peer.addr).is_ok() {
        report.sent += 1;
    }
}

/// Executes one dispatch's effects. Returns `true` if the node despawned.
#[allow(clippy::too_many_arguments)]
fn apply(
    socket: &UdpSocket,
    peers: &HashMap<u32, Peer>,
    cfg: &NodeConfig,
    clock: &WallClock,
    timers: &mut BinaryHeap<Reverse<(u64, u64)>>,
    cancelled: &mut HashSet<u64>,
    trace: &mut Vec<TraceEvent>,
    report: &mut RunReport,
    effects: Vec<NodeEffect<Frame, Tick>>,
) -> bool {
    let mut despawned = false;
    for effect in effects {
        match effect {
            NodeEffect::Unicast { to, payload } => {
                send_unicast(
                    socket, peers, cfg, clock, trace, report, to, payload, Channel::Radio,
                );
            }
            NodeEffect::Wired { to, payload } => {
                send_unicast(
                    socket, peers, cfg, clock, trace, report, to, payload, Channel::Wired,
                );
            }
            NodeEffect::Broadcast { payload } => {
                trace.push(frame_event(
                    &payload,
                    clock.now(),
                    cfg.node_id,
                    BROADCAST_TO,
                    Channel::Radio,
                ));
                let env = Envelope::Frame {
                    from: cfg.node_id,
                    channel: Channel::Radio,
                    frame: payload,
                };
                let bytes = env.encode();
                for peer in peers.values().filter(|p| !p.wired) {
                    if send_with_retry(socket, &bytes, peer.addr).is_ok() {
                        report.sent += 1;
                    }
                }
            }
            NodeEffect::SetTimer { id, at, token: _ } => {
                timers.push(Reverse((at.as_micros(), id.raw())));
            }
            NodeEffect::CancelTimer(id) => {
                cancelled.insert(id.raw());
            }
            NodeEffect::Despawn => despawned = true,
        }
    }
    despawned
}
