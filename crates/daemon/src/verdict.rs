//! Cross-validation between the live testbed and the simulator.
//!
//! The testbed and the simulator run *the same* scenario — same protocol
//! configuration, same topology shape, same attacker — but under different
//! schedulers (wall-clock UDP vs. discrete events) and different enrollment
//! orders, so pseudonyms and packet timings differ between the two runs.
//! What must NOT differ is the detection verdict: who got confirmed, how,
//! and whether the TA isolated them. This module canonicalizes confirmed
//! verdicts to the *role* level ([`CanonVerdict`]), renders both sides as
//! synthetic trace events, and reuses the trace oracle's
//! [`diff`](blackdp_scenario::diff_traces) to report the first divergence.

use blackdp::DetectionOutcome;
use blackdp_aodv::Addr;
use blackdp_scenario::{
    build_scenario, diff_traces, harvest, AttackSetup, Divergence, MaliciousNode, RsuNode,
    ScenarioConfig, TraceEvent, TrialSpec,
};
use blackdp_attacks::EvasionPolicy;
use blackdp_sim::{Duration, Time};

/// The scenario both the testbed and its simulator twin run: one cluster
/// spanning a 5 km highway segment, five honest vehicles plus one black-hole
/// attacker, everyone inside radio range, source traffic addressed to a
/// phantom destination only the attacker will claim a route to.
///
/// One cluster keeps the testbed at eight processes (TA + RSU + 6 vehicles)
/// while still exercising the full detection ladder: forged RREP, failed
/// Hello probes, d_req to the RSU, disposable-identity probes, revocation.
pub fn testbed_scenario(seed: u64) -> (ScenarioConfig, TrialSpec) {
    let cfg = ScenarioConfig {
        vehicles: 6,
        highway_length_m: 5_000.0,
        highway_width_m: 200.0,
        cluster_len_m: 5_000.0,
        range_m: 5_000.0,
        ta_regions: vec![(1, 1)],
        sim_duration: Duration::from_secs(25),
        data_packets: 5,
        data_interval: Duration::from_millis(250),
        ..ScenarioConfig::paper_table1()
    };
    let spec = TrialSpec {
        seed,
        attack: AttackSetup::Single { cluster: 1 },
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: None,
        attacker_moves: false,
        attacker_fake_hello: false,
    };
    (cfg, spec)
}

/// A confirmed detection verdict, reduced to what both runs must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CanonVerdict {
    /// Whether the confirmed suspect is the staged attacker.
    pub suspect_is_attacker: bool,
    /// `false` = single, `true` = cooperative.
    pub cooperative: bool,
    /// For cooperative verdicts, whether the disclosed teammate is also an
    /// attacker.
    pub teammate_is_attacker: Option<bool>,
}

impl CanonVerdict {
    /// Canonicalizes one concluded outcome; `None` for unconfirmed ones
    /// (only confirmations must agree across runs — timing-dependent
    /// `Unconfirmed`/`SuspectGone` episodes may differ).
    pub fn from_outcome(
        suspect: Addr,
        outcome: &DetectionOutcome,
        is_attacker: impl Fn(Addr) -> bool,
    ) -> Option<CanonVerdict> {
        match outcome {
            DetectionOutcome::ConfirmedSingle => Some(CanonVerdict {
                suspect_is_attacker: is_attacker(suspect),
                cooperative: false,
                teammate_is_attacker: None,
            }),
            DetectionOutcome::ConfirmedCooperative { teammate } => Some(CanonVerdict {
                suspect_is_attacker: is_attacker(suspect),
                cooperative: true,
                teammate_is_attacker: Some(is_attacker(*teammate)),
            }),
            DetectionOutcome::Unconfirmed | DetectionOutcome::SuspectGone => None,
        }
    }
}

/// Renders canonical verdicts as synthetic trace events so the PR-3 trace
/// oracle diffs them: verdicts are sorted and deduplicated first, so event
/// position encodes nothing schedule-dependent.
pub fn canon_events(verdicts: &[CanonVerdict]) -> Vec<TraceEvent> {
    let mut sorted: Vec<CanonVerdict> = verdicts.to_vec();
    sorted.sort();
    sorted.dedup();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| TraceEvent {
            at_micros: i as u64,
            from: 0,
            to: 0,
            channel: 0,
            src: u64::from(v.suspect_is_attacker),
            dst: v.teammate_is_attacker.map(u64::from),
            kind: if v.cooperative {
                "verdict-cooperative".to_string()
            } else {
                "verdict-single".to_string()
            },
            digest: 0,
        })
        .collect()
}

/// What one run (testbed or simulator) concluded.
#[derive(Debug, Clone)]
pub struct RunVerdicts {
    /// Canonical confirmed verdicts.
    pub verdicts: Vec<CanonVerdict>,
    /// Whether the TA revoked an attacker certificate.
    pub attacker_revoked: bool,
}

impl RunVerdicts {
    /// Whether the staged attacker was confirmed at least once.
    pub fn attacker_confirmed(&self) -> bool {
        self.verdicts.iter().any(|v| v.suspect_is_attacker)
    }
}

/// Runs the simulator twin of the testbed scenario and harvests its
/// canonical verdicts.
pub fn sim_verdicts(cfg: &ScenarioConfig, spec: &TrialSpec) -> RunVerdicts {
    let mut built = build_scenario(cfg, spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    let mut attacker_addrs: Vec<Addr> = Vec::new();
    for &a in &built.attackers {
        if let Some(node) = built.world.get::<MaliciousNode>(a) {
            attacker_addrs.extend_from_slice(node.addr_history());
        }
    }
    let is_attacker = |addr: Addr| attacker_addrs.contains(&addr);

    let mut verdicts = Vec::new();
    for &r in &built.rsus {
        if let Some(rsu) = built.world.get::<RsuNode>(r) {
            for event in rsu.events() {
                if let blackdp::ChEvent::DetectionConcluded {
                    suspect, outcome, ..
                } = event
                {
                    if let Some(v) = CanonVerdict::from_outcome(*suspect, outcome, is_attacker) {
                        verdicts.push(v);
                    }
                }
            }
        }
    }
    let outcome = harvest(cfg, spec, &built);
    RunVerdicts {
        verdicts,
        attacker_revoked: outcome.attacker_revoked,
    }
}

/// Decodes a trace journal written by the daemon runtime (thin re-export
/// for the testbed's `dump` debug command).
pub fn decode_trace_bytes(
    bytes: &[u8],
) -> Result<Vec<TraceEvent>, blackdp_scenario::TraceError> {
    blackdp_scenario::decode_trace(bytes)
}

/// Compares two runs' canonical verdicts through the trace oracle.
/// `None` means equivalent; `Some` pinpoints the first divergence.
pub fn compare(expected: &RunVerdicts, actual: &RunVerdicts) -> Option<Divergence> {
    diff_traces(&canon_events(&expected.verdicts), &canon_events(&actual.verdicts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default seed the testbed pins must produce a confirmed, revoked
    /// attacker in the simulator twin — otherwise the smoke gate's
    /// equivalence check would be comparing two empty verdict sets.
    #[test]
    fn sim_twin_detects_attacker_on_default_seed() {
        let (cfg, spec) = testbed_scenario(42);
        let run = sim_verdicts(&cfg, &spec);
        assert!(
            run.attacker_confirmed(),
            "sim twin failed to confirm the attacker: {:?}",
            run.verdicts
        );
        assert!(run.attacker_revoked, "sim twin failed to revoke");
        assert!(
            !run.verdicts.iter().any(|v| !v.suspect_is_attacker),
            "sim twin confirmed an honest vehicle: {:?}",
            run.verdicts
        );
    }

    #[test]
    fn canonical_events_are_order_insensitive() {
        let a = CanonVerdict {
            suspect_is_attacker: true,
            cooperative: false,
            teammate_is_attacker: None,
        };
        let b = CanonVerdict {
            suspect_is_attacker: false,
            cooperative: true,
            teammate_is_attacker: Some(true),
        };
        let forward = RunVerdicts {
            verdicts: vec![a, b],
            attacker_revoked: true,
        };
        let reversed = RunVerdicts {
            verdicts: vec![b, a, a],
            attacker_revoked: true,
        };
        assert!(compare(&forward, &reversed).is_none());

        let missing = RunVerdicts {
            verdicts: vec![b],
            attacker_revoked: true,
        };
        assert!(compare(&forward, &missing).is_some());
    }
}
