//! The daemon's datagram layer.
//!
//! Every UDP datagram between daemons is one [`Envelope`]:
//!
//! ```text
//! "BDPD" | version u8 (=1) | kind u8 | from u32 LE | payload…
//! ```
//!
//! Kind 0 carries a protocol [`Frame`] (link source/destination plus a
//! [`Wire`] message in its checksummed byte encoding from `blackdp::codec`).
//! Kinds 1–2 are the out-of-band enrollment handshake `blackdpd init` runs
//! against the TA daemon, and kind 3 is the testbed's shutdown signal.
//! UDP gives no delivery guarantee, so [`send_with_retry`] retries transient
//! socket errors with bounded exponential backoff, and [`enroll`] treats the
//! whole request/reply exchange as retryable.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration as WallDuration;

use blackdp::{Wire, WireDecodeError};
use blackdp_aodv::Addr;
use blackdp_crypto::{Certificate, PseudonymId, PublicKey, Signature, TaId};
use blackdp_scenario::Frame;
use blackdp_sim::{Channel, Time};

/// Magic prefix of every daemon datagram.
pub const ENV_MAGIC: [u8; 4] = *b"BDPD";
/// Envelope format version.
pub const ENV_VERSION: u8 = 1;
/// Largest datagram the runtime will read.
pub const MAX_DATAGRAM: usize = 64 * 1024;

/// One decoded daemon datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// A protocol frame travelling between nodes.
    Frame {
        /// Sender's node id.
        from: u32,
        /// Radio or wired backbone.
        channel: Channel,
        /// The frame itself.
        frame: Frame,
    },
    /// `init` asking the TA daemon for a credential.
    EnrollRequest {
        /// Sender's node id.
        from: u32,
        /// Long-term identity to enroll.
        long_term: u64,
        /// Raw public key to certify.
        public_key: u64,
    },
    /// The TA daemon's answer to an [`Envelope::EnrollRequest`].
    EnrollReply {
        /// Echo of the request's long-term id (matches replies to requests).
        long_term: u64,
        /// The issued certificate.
        cert: Certificate,
        /// The TA's public key.
        ta_key: u64,
    },
    /// Orderly shutdown (testbed teardown).
    Shutdown {
        /// Sender's node id.
        from: u32,
    },
}

/// A malformed daemon datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Shorter than the fixed header.
    Short,
    /// Wrong magic prefix.
    BadMagic,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown kind byte.
    BadKind(u8),
    /// Payload truncated mid-field.
    Truncated,
    /// The embedded wire message failed to decode.
    BadWire(WireDecodeError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Short => write!(f, "datagram shorter than envelope header"),
            NetError::BadMagic => write!(f, "bad envelope magic"),
            NetError::BadVersion(v) => write!(f, "unsupported envelope version {v}"),
            NetError::BadKind(k) => write!(f, "unknown envelope kind {k}"),
            NetError::Truncated => write!(f, "envelope payload truncated"),
            NetError::BadWire(e) => write!(f, "embedded wire message rejected: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, NetError> {
    let end = pos.checked_add(4).ok_or(NetError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(NetError::Truncated)?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, NetError> {
    let end = pos.checked_add(8).ok_or(NetError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(NetError::Truncated)?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

impl Envelope {
    /// Serializes the envelope to datagram bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&ENV_MAGIC);
        buf.push(ENV_VERSION);
        match self {
            Envelope::Frame {
                from,
                channel,
                frame,
            } => {
                buf.push(0);
                put_u32(&mut buf, *from);
                buf.push(match channel {
                    Channel::Radio => 0,
                    Channel::Wired => 1,
                });
                put_u64(&mut buf, frame.src.0);
                match frame.dst {
                    None => buf.push(0),
                    Some(d) => {
                        buf.push(1);
                        put_u64(&mut buf, d.0);
                    }
                }
                buf.extend_from_slice(&frame.wire.encode());
            }
            Envelope::EnrollRequest {
                from,
                long_term,
                public_key,
            } => {
                buf.push(1);
                put_u32(&mut buf, *from);
                put_u64(&mut buf, *long_term);
                put_u64(&mut buf, *public_key);
            }
            Envelope::EnrollReply {
                long_term,
                cert,
                ta_key,
            } => {
                buf.push(2);
                put_u32(&mut buf, 0);
                put_u64(&mut buf, *long_term);
                put_u64(&mut buf, cert.pseudonym.0);
                put_u64(&mut buf, cert.public_key.raw());
                put_u64(&mut buf, cert.serial);
                put_u32(&mut buf, cert.issuer.0);
                put_u64(&mut buf, cert.issued.as_micros());
                put_u64(&mut buf, cert.expires.as_micros());
                put_u64(&mut buf, cert.signature.e);
                put_u64(&mut buf, cert.signature.s);
                put_u64(&mut buf, *ta_key);
            }
            Envelope::Shutdown { from } => {
                buf.push(3);
                put_u32(&mut buf, *from);
            }
        }
        buf
    }

    /// Parses a datagram.
    pub fn decode(buf: &[u8]) -> Result<Envelope, NetError> {
        if buf.len() < 10 {
            return Err(NetError::Short);
        }
        if buf[..4] != ENV_MAGIC {
            return Err(NetError::BadMagic);
        }
        if buf[4] != ENV_VERSION {
            return Err(NetError::BadVersion(buf[4]));
        }
        let kind = buf[5];
        let mut pos = 6;
        let from = get_u32(buf, &mut pos)?;
        match kind {
            0 => {
                let channel = match buf.get(pos).copied().ok_or(NetError::Truncated)? {
                    0 => Channel::Radio,
                    1 => Channel::Wired,
                    _ => return Err(NetError::Truncated),
                };
                pos += 1;
                let src = Addr(get_u64(buf, &mut pos)?);
                let dst = match buf.get(pos).copied().ok_or(NetError::Truncated)? {
                    0 => {
                        pos += 1;
                        None
                    }
                    1 => {
                        pos += 1;
                        Some(Addr(get_u64(buf, &mut pos)?))
                    }
                    _ => return Err(NetError::Truncated),
                };
                let wire = Wire::decode(&buf[pos..]).map_err(NetError::BadWire)?;
                Ok(Envelope::Frame {
                    from,
                    channel,
                    frame: Frame { src, dst, wire },
                })
            }
            1 => Ok(Envelope::EnrollRequest {
                from,
                long_term: get_u64(buf, &mut pos)?,
                public_key: get_u64(buf, &mut pos)?,
            }),
            2 => {
                let long_term = get_u64(buf, &mut pos)?;
                let cert = Certificate {
                    pseudonym: PseudonymId(get_u64(buf, &mut pos)?),
                    public_key: PublicKey::from_raw(get_u64(buf, &mut pos)?),
                    serial: get_u64(buf, &mut pos)?,
                    issuer: TaId(get_u32(buf, &mut pos)?),
                    issued: Time::from_micros(get_u64(buf, &mut pos)?),
                    expires: Time::from_micros(get_u64(buf, &mut pos)?),
                    signature: Signature {
                        e: get_u64(buf, &mut pos)?,
                        s: get_u64(buf, &mut pos)?,
                    },
                };
                let ta_key = get_u64(buf, &mut pos)?;
                Ok(Envelope::EnrollReply {
                    long_term,
                    cert,
                    ta_key,
                })
            }
            3 => Ok(Envelope::Shutdown { from }),
            k => Err(NetError::BadKind(k)),
        }
    }
}

/// Sends one datagram, retrying transient socket errors with bounded
/// exponential backoff (1, 2, 4, 8, 16 ms). Returns the first success or
/// the last error.
pub fn send_with_retry(socket: &UdpSocket, bytes: &[u8], dest: SocketAddr) -> io::Result<()> {
    let mut backoff_ms = 1u64;
    let mut last_err = None;
    for attempt in 0..5 {
        match socket.send_to(bytes, dest) {
            Ok(_) => return Ok(()),
            Err(e) => last_err = Some(e),
        }
        if attempt < 4 {
            std::thread::sleep(WallDuration::from_millis(backoff_ms));
            backoff_ms *= 2;
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("send failed")))
}

/// Runs the enrollment handshake against the TA daemon: sends
/// [`Envelope::EnrollRequest`] and waits for the matching
/// [`Envelope::EnrollReply`], retrying the whole exchange with backoff
/// (UDP may drop either direction). Returns the certificate and TA key.
pub fn enroll(
    socket: &UdpSocket,
    ta_addr: SocketAddr,
    from: u32,
    long_term: u64,
    public_key: u64,
) -> io::Result<(Certificate, PublicKey)> {
    let request = Envelope::EnrollRequest {
        from,
        long_term,
        public_key,
    }
    .encode();
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let mut backoff = WallDuration::from_millis(50);
    for _ in 0..40 {
        send_with_retry(socket, &request, ta_addr)?;
        socket.set_read_timeout(Some(WallDuration::from_millis(100)))?;
        // Drain whatever arrives inside this window, looking for our reply.
        loop {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Ok(Envelope::EnrollReply {
                        long_term: lt,
                        cert,
                        ta_key,
                    }) = Envelope::decode(&buf[..n])
                    {
                        if lt == long_term {
                            return Ok((cert, PublicKey::from_raw(ta_key)));
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(WallDuration::from_millis(500));
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        "enrollment with TA daemon timed out",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_aodv::{Hello, Message as AodvMessage};

    #[test]
    fn frame_envelope_round_trips() {
        let env = Envelope::Frame {
            from: 3,
            channel: Channel::Radio,
            frame: Frame {
                src: Addr(0xAB),
                dst: Some(Addr(0xCD)),
                wire: Wire::Aodv(AodvMessage::Hello(Hello {
                    orig: Addr(0xAB),
                    seq: 7,
                })),
            },
        };
        let bytes = env.encode();
        assert_eq!(Envelope::decode(&bytes).unwrap(), env);
    }

    #[test]
    fn enrollment_envelopes_round_trip() {
        let req = Envelope::EnrollRequest {
            from: 2,
            long_term: 5,
            public_key: 0xFEED,
        };
        assert_eq!(Envelope::decode(&req.encode()).unwrap(), req);

        let reply = Envelope::EnrollReply {
            long_term: 5,
            cert: Certificate {
                pseudonym: PseudonymId(10),
                public_key: PublicKey::from_raw(0xFEED),
                serial: 77,
                issuer: TaId(1),
                issued: Time::from_micros(123),
                expires: Time::from_micros(456),
                signature: Signature { e: 1, s: 2 },
            },
            ta_key: 0xBEEF,
        };
        assert_eq!(Envelope::decode(&reply.encode()).unwrap(), reply);

        let down = Envelope::Shutdown { from: 9 };
        assert_eq!(Envelope::decode(&down.encode()).unwrap(), down);
    }

    #[test]
    fn malformed_datagrams_are_structured_errors() {
        assert_eq!(Envelope::decode(b"BD"), Err(NetError::Short));
        assert_eq!(
            Envelope::decode(b"XXXX\x01\x03\x00\x00\x00\x00"),
            Err(NetError::BadMagic)
        );
        assert_eq!(
            Envelope::decode(b"BDPD\x02\x03\x00\x00\x00\x00"),
            Err(NetError::BadVersion(2))
        );
        assert_eq!(
            Envelope::decode(b"BDPD\x01\x09\x00\x00\x00\x00"),
            Err(NetError::BadKind(9))
        );
        // A frame whose wire payload is corrupted is rejected by the inner
        // codec's checksum, surfaced as BadWire.
        let env = Envelope::Frame {
            from: 1,
            channel: Channel::Radio,
            frame: Frame {
                src: Addr(1),
                dst: None,
                wire: Wire::Aodv(AodvMessage::Hello(Hello {
                    orig: Addr(1),
                    seq: 1,
                })),
            },
        };
        let mut bytes = env.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(NetError::BadWire(_))
        ));
    }
}
