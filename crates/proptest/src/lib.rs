//! Offline stand-in for the `proptest` crate.
//!
//! The sandbox has no registry access, so this crate vendors the slice of
//! proptest the workspace's property tests rely on: the [`Strategy`]
//! trait with `prop_map`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `collection::vec`, `option::of`, `sample::Index`,
//! `prop_oneof!`, the `proptest!` test-block macro (honouring
//! `#![proptest_config(..)]`), and the `prop_assert*` family.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! sampled deterministically (seeded per test by name) and failures are
//! reported without shrinking. That trades minimal counterexamples for
//! reproducibility in an offline CI environment.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a case generator.
    pub fn seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.random_range(0..bound)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.0.random::<f64>()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix raw draws with boundary values so edge cases appear
                // with non-vanishing probability, as real proptest biases.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.bits() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => (rng.unit() - 0.5) * 2e6,
        }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Bias toward the boundaries occasionally.
                let offset = match rng.below(8) {
                    0 => 0,
                    1 => span - 1,
                    _ => rng.bits() as u128 % span,
                };
                self.start.wrapping_add(offset as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                start.wrapping_add((rng.bits() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = if span == 0 {
                self.len.start
            } else {
                self.len.start + rng.below(span)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy yielding `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Index sampling (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An opaque fraction that projects onto any collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.bits())
        }
    }
}

/// A uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternative strategies.
    pub variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.variants.is_empty(), "prop_oneof! needs an arm");
        let i = rng.below(self.variants.len());
        self.variants[i].sample(rng)
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// Controls how many cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed `prop_assert*` inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, Strategy};

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// FNV-1a over a string — stable per-test seeds without `std::hash`
/// randomization.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests. Each `name in strategy` binding is sampled
/// per case; the body runs for `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::seed(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Boxes a strategy for [`Union`] storage (used by [`prop_oneof!`]).
pub fn box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniformly chooses among alternative strategies producing one value
/// type, boxing each arm.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            variants: vec![$($crate::box_strategy($strat)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_within_bounds() {
        let mut rng = crate::TestRng::seed(5);
        for _ in 0..200 {
            let v = (0u32..50).sample(&mut rng);
            assert!(v < 50);
            let xs = crate::collection::vec(1u8..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (1..10).contains(&x)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x + 1),
        ];
        let mut rng = crate::TestRng::seed(8);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            if v < 20 {
                saw_low = true;
            } else {
                assert!((101..111).contains(&v));
                saw_high = true;
            }
        }
        assert!(saw_low && saw_high);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, asserts, config all work.
        #[test]
        fn macro_smoke(a in any::<u64>(), b in 1u64..100, flag in any::<bool>()) {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, 0, "b must be positive, got {}", b);
            let _ = flag;
        }
    }
}
