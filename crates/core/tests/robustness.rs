//! Adversarial robustness: the cluster head and verifier must never panic,
//! never isolate without a confirmed violation, and never leak resources,
//! no matter what message soup an attacker throws at them.

use blackdp::{
    BlackDpConfig, BlackDpMessage, ChAction, ChEvent, ClusterHead, DReq, DetectionHandoff,
    DetectionOutcome, DetectionResponse, HelloProbe, JoinBody, Sealed, SuspicionReason,
};
use blackdp_aodv::{Addr, Rrep};
use blackdp_crypto::{Keypair, LongTermId, PseudonymId, TaId, TrustedAuthority};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generator for arbitrary (mostly malformed) BlackDP messages. Sealed
/// variants are built with a *throwaway* TA so their signatures never
/// verify against the CH's root key — the worst case.
fn arbitrary_message() -> impl Strategy<Value = BlackDpMessage> {
    fn addr() -> impl Strategy<Value = Addr> {
        any::<u64>().prop_map(Addr)
    }
    fn pseu() -> impl Strategy<Value = PseudonymId> {
        any::<u64>().prop_map(PseudonymId)
    }
    prop_oneof![
        (pseu(),).prop_map(|(vehicle,)| BlackDpMessage::Leave { vehicle }),
        (addr(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(suspect, rc, sc, packets)| BlackDpMessage::ForwardedDetection {
                dreq: DReq {
                    reporter: PseudonymId(packets),
                    reporter_cluster: ClusterId(rc % 12),
                    suspect,
                    suspect_cluster: Some(ClusterId(sc % 12)),
                    reason: SuspicionReason::NoHelloResponse,
                },
                packets_so_far: (packets % 32) as u32,
            }
        ),
        (addr(), any::<u32>(), any::<bool>()).prop_map(|(suspect, s1, have_s1)| {
            BlackDpMessage::Handoff(DetectionHandoff {
                suspect,
                rrep1_seq: have_s1.then_some(s1),
                reporters: vec![(PseudonymId(1), ClusterId(1))],
                packets_so_far: 3,
            })
        }),
        (addr(), pseu()).prop_map(|(suspect, reporter)| {
            BlackDpMessage::Response(DetectionResponse {
                suspect,
                outcome: DetectionOutcome::Unconfirmed,
                reporter,
            })
        }),
        (pseu(),).prop_map(|(current,)| BlackDpMessage::RenewReply {
            current,
            cert: None
        }),
    ]
}

fn fresh_ch(seed: u64) -> (ClusterHead, TrustedAuthority, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ta = TrustedAuthority::new(TaId(1), &mut rng);
    let ch = ClusterHead::new(
        ClusterId(2),
        Addr(900_002),
        TaId(1),
        ta.public_key(),
        10,
        BlackDpConfig::default(),
        seed,
    );
    (ch, ta, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever arrives, the CH neither panics nor isolates anyone without
    /// a confirmed probe violation.
    #[test]
    fn message_soup_never_triggers_isolation(
        seed in any::<u64>(),
        msgs in proptest::collection::vec((any::<u64>(), arbitrary_message()), 0..40),
    ) {
        let (mut ch, _ta, _rng) = fresh_ch(seed);
        let mut t = Time::ZERO;
        for (from, msg) in msgs {
            t += Duration::from_millis(50);
            for action in ch.handle_blackdp(Addr(from), msg, t) {
                prop_assert!(
                    !matches!(action, ChAction::Event(ChEvent::IsolationRequested(_))),
                    "isolation without confirmation"
                );
            }
            let _ = ch.tick(t);
        }
    }

    /// Unauthenticated detection requests are ignored outright: no probes,
    /// no verification-table growth.
    #[test]
    fn forged_dreqs_are_ignored(seed in any::<u64>(), suspect in any::<u64>()) {
        let (mut ch, _ta, mut rng) = fresh_ch(seed);
        // Seal with a DIFFERENT authority: the signature cannot verify.
        let rogue_ta_keys = Keypair::generate(&mut rng);
        let mut rogue = TrustedAuthority::with_keypair(TaId(9), rogue_ta_keys);
        let keys = Keypair::generate(&mut rng);
        let cert = rogue.enroll(LongTermId(1), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng);
        let dreq = DReq {
            reporter: cert.pseudonym,
            reporter_cluster: ClusterId(2),
            suspect: Addr(suspect),
            suspect_cluster: Some(ClusterId(2)),
            reason: SuspicionReason::NoHelloResponse,
        };
        let sealed = Sealed::seal(dreq, cert, Some(ClusterId(2)), &keys, &mut rng);
        let actions = ch.handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(sealed), Time::ZERO);
        prop_assert!(actions.is_empty(), "forged report acted upon: {actions:?}");
        prop_assert_eq!(ch.verification().len(), 0);
    }

    /// Rogue-certificate joins are rejected, so an outsider can never
    /// become probe-able (or poison the member table).
    #[test]
    fn rogue_joins_are_rejected(seed in any::<u64>()) {
        let (mut ch, _ta, mut rng) = fresh_ch(seed);
        let rogue_keys = Keypair::generate(&mut rng);
        let mut rogue = TrustedAuthority::with_keypair(TaId(9), rogue_keys);
        let keys = Keypair::generate(&mut rng);
        let cert = rogue.enroll(LongTermId(1), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng);
        let jreq = Sealed::seal(
            JoinBody { pos_x: 1_500.0, pos_y: 50.0, speed_kmh: 70.0, forward: true },
            cert,
            None,
            &keys,
            &mut rng,
        );
        let actions = ch.handle_blackdp(Addr(5), BlackDpMessage::Jreq(jreq), Time::ZERO);
        prop_assert!(actions.iter().any(|a| matches!(a, ChAction::Event(ChEvent::JoinRejected(_)))));
        prop_assert!(!ch.is_member(cert.pseudonym));
    }

    /// Stray probe RREPs (orig not one of our disposable identities) are
    /// ignored without state changes.
    #[test]
    fn stray_probe_rreps_are_ignored(seed in any::<u64>(), orig in any::<u64>(), seq in any::<u32>()) {
        let (mut ch, _ta, _rng) = fresh_ch(seed);
        let rrep = Rrep {
            dest: Addr(1),
            dest_seq: seq,
            orig: Addr(orig),
            hop_count: 1,
            lifetime: Duration::from_secs(5),
            next_hop: None,
        };
        let actions = ch.on_probe_rrep(Addr(7), &rrep, Time::ZERO);
        prop_assert!(actions.is_empty());
    }
}

#[test]
fn verifier_survives_malformed_probe_replies() {
    use blackdp::SourceVerifier;
    let mut rng = StdRng::seed_from_u64(4);
    let ta = TrustedAuthority::new(TaId(1), &mut rng);
    let mut verifier =
        SourceVerifier::new(BlackDpConfig::default(), ta.public_key(), PseudonymId(1));
    // Replies for destinations never begun, with arbitrary ids: all ignored.
    let keys = Keypair::generate(&mut rng);
    let mut rogue = TrustedAuthority::new(TaId(2), &mut rng);
    let cert = rogue.enroll(
        LongTermId(5),
        keys.public(),
        Time::ZERO,
        Duration::from_secs(60),
        &mut rng,
    );
    for i in 0..50u64 {
        let reply = Sealed::seal(
            blackdp::HelloReply {
                probe_id: i,
                src: Addr(i),
                dest: Addr(1),
                ttl: 3,
            },
            cert,
            None,
            &keys,
            &mut rng,
        );
        assert!(verifier
            .on_hello_reply(&reply, Time::from_millis(i))
            .is_empty());
    }
    let _ = HelloProbe {
        probe_id: 0,
        src: Addr(1),
        dest: Addr(2),
        ttl: 1,
    };
}
