//! Property tests for the `Wire` byte codec: every variant must round-trip
//! encode→decode exactly, and any corruption or truncation of the encoding
//! must be rejected with a structured error, never mis-decoded.

use blackdp::{
    BlackDpMessage, DReq, DetectionHandoff, DetectionOutcome, DetectionResponse, HelloProbe,
    HelloReply, JoinBody, RrepBody, Sealed, SuspicionReason, Wire,
};
use blackdp_aodv::{Addr, DataPacket, Hello, Message as AodvMessage, Rerr, Rreq, Rrep};
use blackdp_crypto::{
    Certificate, LongTermId, PseudonymId, PublicKey, RevocationNotice, Signature, TaId,
};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use proptest::prelude::*;

/// Splitmix64 stream: expands one seed into however many field values a
/// variant needs, so a `(kind, seed)` pair covers the whole message space
/// without a custom `Arbitrary` impl per type.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn opt<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.next() & 1 == 0 {
            None
        } else {
            Some(f(self))
        }
    }

    fn small(&mut self) -> usize {
        (self.next() % 4) as usize
    }

    fn sig(&mut self) -> Signature {
        Signature {
            e: self.next(),
            s: self.next(),
        }
    }

    fn cert(&mut self) -> Certificate {
        Certificate {
            pseudonym: PseudonymId(self.next()),
            public_key: PublicKey::from_raw(self.next()),
            serial: self.next(),
            issuer: TaId(self.next() as u32),
            issued: Time::from_micros(self.next()),
            expires: Time::from_micros(self.next()),
            signature: self.sig(),
        }
    }

    fn notice(&mut self) -> RevocationNotice {
        RevocationNotice {
            pseudonym: PseudonymId(self.next()),
            serial: self.next(),
            expires: Time::from_micros(self.next()),
        }
    }

    fn notices(&mut self) -> Vec<RevocationNotice> {
        (0..self.small()).map(|_| self.notice()).collect()
    }

    fn sealed<T>(&mut self, body: T) -> Sealed<T> {
        Sealed {
            body,
            cert: self.cert(),
            cluster: self.opt(|s| ClusterId(s.next() as u32)),
            signature: self.sig(),
        }
    }

    fn rreq(&mut self) -> Rreq {
        Rreq {
            rreq_id: self.next(),
            dest: Addr(self.next()),
            dest_seq: self.opt(|s| s.next() as u32),
            orig: Addr(self.next()),
            orig_seq: self.next() as u32,
            hop_count: self.next() as u8,
            ttl: self.next() as u8,
            next_hop_inquiry: self.next() & 1 == 0,
        }
    }

    fn rrep(&mut self) -> Rrep {
        Rrep {
            dest: Addr(self.next()),
            dest_seq: self.next() as u32,
            orig: Addr(self.next()),
            hop_count: self.next() as u8,
            lifetime: Duration::from_micros(self.next()),
            next_hop: self.opt(|s| Addr(s.next())),
        }
    }

    fn dreq(&mut self) -> DReq {
        DReq {
            reporter: PseudonymId(self.next()),
            reporter_cluster: ClusterId(self.next() as u32),
            suspect: Addr(self.next()),
            suspect_cluster: self.opt(|s| ClusterId(s.next() as u32)),
            reason: match self.next() % 3 {
                0 => SuspicionReason::NoHelloResponse,
                1 => SuspicionReason::FakeHelloReply,
                _ => SuspicionReason::AuthViolation,
            },
        }
    }

    fn outcome(&mut self) -> DetectionOutcome {
        match self.next() % 4 {
            0 => DetectionOutcome::ConfirmedSingle,
            1 => DetectionOutcome::ConfirmedCooperative {
                teammate: Addr(self.next()),
            },
            2 => DetectionOutcome::Unconfirmed,
            _ => DetectionOutcome::SuspectGone,
        }
    }

    fn probe(&mut self) -> HelloProbe {
        HelloProbe {
            probe_id: self.next(),
            src: Addr(self.next()),
            dest: Addr(self.next()),
            ttl: self.next() as u8,
        }
    }

    fn join(&mut self) -> JoinBody {
        JoinBody {
            pos_x: f64::from_bits(self.next() % (1 << 62)),
            pos_y: f64::from_bits(self.next() % (1 << 62)),
            speed_kmh: f64::from_bits(self.next() % (1 << 62)),
            forward: self.next() & 1 == 0,
        }
    }
}

/// Number of distinct wire variants `wire_from` can produce.
const VARIANTS: u8 = 22;

/// Builds variant `kind` (0..VARIANTS) with fields drawn from `seed` —
/// together the two parameters range over every arm of `Wire`,
/// `AodvMessage`, and `BlackDpMessage`.
fn wire_from(kind: u8, seed: u64) -> Wire {
    let s = &mut Stream(seed);
    match kind {
        0 => Wire::Aodv(AodvMessage::Rreq(s.rreq())),
        1 => Wire::Aodv(AodvMessage::Rrep(s.rrep())),
        2 => Wire::Aodv(AodvMessage::Rerr(Rerr {
            unreachable: (0..s.small())
                .map(|_| (Addr(s.next()), s.next() as u32))
                .collect(),
        })),
        3 => Wire::Aodv(AodvMessage::Hello(Hello {
            orig: Addr(s.next()),
            seq: s.next() as u32,
        })),
        4 => Wire::Aodv(AodvMessage::Data(DataPacket {
            orig: Addr(s.next()),
            dest: Addr(s.next()),
            seq_no: s.next(),
            ttl: s.next() as u8,
        })),
        5 => {
            let rrep = s.rrep();
            let body = RrepBody(s.rrep());
            Wire::SecuredRrep {
                rrep,
                auth: s.sealed(body),
            }
        }
        6 => {
            let body = s.join();
            Wire::BlackDp(BlackDpMessage::Jreq(s.sealed(body)))
        }
        7 => Wire::BlackDp(BlackDpMessage::Jrep {
            cluster: ClusterId(s.next() as u32),
            ch_addr: Addr(s.next()),
            epoch: s.next(),
            blacklist: s.notices(),
        }),
        8 => Wire::BlackDp(BlackDpMessage::Leave {
            vehicle: PseudonymId(s.next()),
        }),
        9 => {
            let body = s.probe();
            Wire::BlackDp(BlackDpMessage::HelloProbe(s.sealed(body)))
        }
        10 => {
            let body = HelloReply {
                probe_id: s.next(),
                src: Addr(s.next()),
                dest: Addr(s.next()),
                ttl: s.next() as u8,
            };
            Wire::BlackDp(BlackDpMessage::HelloReply(s.sealed(body)))
        }
        11 => {
            let body = s.dreq();
            Wire::BlackDp(BlackDpMessage::DetectionRequest(s.sealed(body)))
        }
        12 => Wire::BlackDp(BlackDpMessage::ForwardedDetection {
            dreq: s.dreq(),
            packets_so_far: s.next() as u32,
        }),
        13 => Wire::BlackDp(BlackDpMessage::Handoff(DetectionHandoff {
            suspect: Addr(s.next()),
            rrep1_seq: s.opt(|s| s.next() as u32),
            reporters: (0..s.small())
                .map(|_| (PseudonymId(s.next()), ClusterId(s.next() as u32)))
                .collect(),
            packets_so_far: s.next() as u32,
        })),
        14 => Wire::BlackDp(BlackDpMessage::Response(DetectionResponse {
            suspect: Addr(s.next()),
            outcome: s.outcome(),
            reporter: PseudonymId(s.next()),
        })),
        15 => Wire::BlackDp(BlackDpMessage::RevocationRequest {
            suspect: PseudonymId(s.next()),
            reporting_cluster: ClusterId(s.next() as u32),
        }),
        16 => Wire::BlackDp(BlackDpMessage::Revoked(s.notice())),
        17 => Wire::BlackDp(BlackDpMessage::PauseRenewal {
            owner: LongTermId(s.next()),
        }),
        18 => Wire::BlackDp(BlackDpMessage::BlacklistAdvisory {
            notices: s.notices(),
        }),
        19 => Wire::BlackDp(BlackDpMessage::RenewRequest {
            current: PseudonymId(s.next()),
            issuer: TaId(s.next() as u32),
            new_key: PublicKey::from_raw(s.next()),
            reply_cluster: ClusterId(s.next() as u32),
        }),
        20 => Wire::BlackDp(BlackDpMessage::RenewReply {
            current: PseudonymId(s.next()),
            cert: s.opt(|s| s.cert()),
        }),
        _ => Wire::BlackDp(BlackDpMessage::Resync {
            cluster: ClusterId(s.next() as u32),
            ch_addr: Addr(s.next()),
            epoch: s.next(),
        }),
    }
}

proptest! {
    #[test]
    fn every_variant_round_trips(kind in 0u8..VARIANTS, seed in any::<u64>()) {
        let wire = wire_from(kind, seed);
        let bytes = wire.encode();
        let back = Wire::decode(&bytes);
        prop_assert_eq!(back.as_ref().ok(), Some(&wire));
    }

    #[test]
    fn corruption_is_always_rejected(
        kind in 0u8..VARIANTS,
        seed in any::<u64>(),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let wire = wire_from(kind, seed);
        let mut bytes = wire.encode();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        // The checksum covers every byte before it, and a flip inside the
        // checksum itself no longer matches the (unchanged) frame — so any
        // single-bit corruption must surface as an error, never as a decode
        // of a different message.
        prop_assert!(Wire::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_is_always_rejected(
        kind in 0u8..VARIANTS,
        seed in any::<u64>(),
        keep in any::<usize>(),
    ) {
        let wire = wire_from(kind, seed);
        let bytes = wire.encode();
        let keep = keep % bytes.len(); // strictly shorter than the frame
        prop_assert!(Wire::decode(&bytes[..keep]).is_err());
    }

    #[test]
    fn extension_is_always_rejected(
        kind in 0u8..VARIANTS,
        seed in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let wire = wire_from(kind, seed);
        let mut bytes = wire.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(Wire::decode(&bytes).is_err());
    }
}

#[test]
fn all_variant_kinds_are_distinct() {
    // Guard against two `wire_from` arms accidentally building the same
    // variant (which would silently shrink coverage of the proptests).
    let kinds: std::collections::HashSet<String> = (0..VARIANTS)
        .map(|k| {
            let wire = wire_from(k, 7);
            // Discriminant path: outer arm + stats kind tag.
            format!("{}:{}", matches!(wire, Wire::SecuredRrep { .. }), wire.kind())
        })
        .collect();
    assert_eq!(kinds.len(), VARIANTS as usize);
}
