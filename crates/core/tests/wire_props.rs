//! Property tests on the signing-byte encodings: domain separation and
//! field sensitivity. A signature over one message type (or one field
//! value) must never verify as another — the protocol's replay resistance
//! rests on this.

use blackdp::{DReq, HelloProbe, HelloReply, RrepBody, SignBytes, SuspicionReason};
use blackdp_aodv::{Addr, Rrep};
use blackdp_crypto::PseudonymId;
use blackdp_mobility::ClusterId;
use blackdp_sim::Duration;
use proptest::prelude::*;

fn rrep(dest: u64, seq: u32, orig: u64, next_hop: Option<u64>) -> Rrep {
    Rrep {
        dest: Addr(dest),
        dest_seq: seq,
        orig: Addr(orig),
        hop_count: 3,
        lifetime: Duration::from_secs(6),
        next_hop: next_hop.map(Addr),
    }
}

proptest! {
    /// Probe and reply with identical fields never share signing bytes
    /// (domain tags separate them).
    #[test]
    fn probe_reply_domain_separation(id in any::<u64>(), src in any::<u64>(), dest in any::<u64>()) {
        let probe = HelloProbe { probe_id: id, src: Addr(src), dest: Addr(dest), ttl: 9 };
        let reply = HelloReply { probe_id: id, src: Addr(src), dest: Addr(dest), ttl: 9 };
        prop_assert_ne!(probe.sign_bytes(), reply.sign_bytes());
    }

    /// Every signed RREP field change changes the signing bytes.
    #[test]
    fn rrep_bytes_are_field_sensitive(
        dest in any::<u64>(), seq in any::<u32>(), orig in any::<u64>(),
        nh in proptest::option::of(any::<u64>()),
        flip in 0usize..4,
    ) {
        let base = RrepBody(rrep(dest, seq, orig, nh));
        let mutated = match flip {
            0 => RrepBody(rrep(dest.wrapping_add(1), seq, orig, nh)),
            1 => RrepBody(rrep(dest, seq.wrapping_add(1), orig, nh)),
            2 => RrepBody(rrep(dest, seq, orig.wrapping_add(1), nh)),
            _ => RrepBody(rrep(dest, seq, orig, match nh {
                Some(x) => Some(x.wrapping_add(1)),
                None => Some(0),
            })),
        };
        prop_assert_ne!(base.sign_bytes(), mutated.sign_bytes());
    }

    /// Hop count is deliberately NOT covered (forwarders mutate it).
    #[test]
    fn rrep_bytes_ignore_hop_count(dest in any::<u64>(), seq in any::<u32>(), h1 in any::<u8>(), h2 in any::<u8>()) {
        let mut a = rrep(dest, seq, 1, None);
        let mut b = rrep(dest, seq, 1, None);
        a.hop_count = h1;
        b.hop_count = h2;
        prop_assert_eq!(RrepBody(a).sign_bytes(), RrepBody(b).sign_bytes());
    }

    /// d_req bytes bind every field, including the reason code.
    #[test]
    fn dreq_bytes_bind_reason(reporter in any::<u64>(), suspect in any::<u64>()) {
        let mk = |reason| DReq {
            reporter: PseudonymId(reporter),
            reporter_cluster: ClusterId(1),
            suspect: Addr(suspect),
            suspect_cluster: Some(ClusterId(2)),
            reason,
        };
        let a = mk(SuspicionReason::NoHelloResponse).sign_bytes();
        let b = mk(SuspicionReason::FakeHelloReply).sign_bytes();
        let c = mk(SuspicionReason::AuthViolation).sign_bytes();
        prop_assert_ne!(&a, &b);
        prop_assert_ne!(&b, &c);
        prop_assert_ne!(&a, &c);
    }

    /// Distinct message types never collide even with adversarially chosen
    /// numeric fields (the leading four-byte tags guarantee it).
    #[test]
    fn cross_type_collision_resistance(x in any::<u64>(), y in any::<u64>()) {
        let probe = HelloProbe { probe_id: x, src: Addr(y), dest: Addr(x), ttl: 0 };
        let dreq = DReq {
            reporter: PseudonymId(x),
            reporter_cluster: ClusterId(y as u32),
            suspect: Addr(x),
            suspect_cluster: None,
            reason: SuspicionReason::NoHelloResponse,
        };
        let body = RrepBody(rrep(x, y as u32, x, None));
        prop_assert_ne!(probe.sign_bytes()[..4].to_vec(), dreq.sign_bytes()[..4].to_vec());
        prop_assert_ne!(probe.sign_bytes()[..4].to_vec(), body.sign_bytes()[..4].to_vec());
        prop_assert_ne!(dreq.sign_bytes()[..4].to_vec(), body.sign_bytes()[..4].to_vec());
    }
}
