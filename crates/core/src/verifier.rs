//! The originator-side route verification ladder
//! (Section III-B.1, "Source and Destination Verification").
//!
//! After AODV installs a route, the originator must not trust it yet:
//!
//! 1. If the RREP came **from the destination itself**, verifying the
//!    attached certificate + signature suffices.
//! 2. If it came from an **intermediate node** claiming a cached route, the
//!    originator sends a *secure Hello* probe end-to-end and waits for the
//!    destination's authenticated reply.
//! 3. On timeout it redoes route discovery once; a second unanswered probe
//!    behind the **same suspect** triggers a detection request (`d_req`) to
//!    the cluster head.
//! 4. A Hello reply that fails authentication, or authenticates as someone
//!    other than the destination, short-circuits to an immediate `d_req`
//!    ("anonymity response").
//!
//! Implemented sans-io: the host feeds in AODV route events and BlackDP
//! replies, and executes the returned [`VerifierAction`]s.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use blackdp_aodv::{Addr, Rrep};
use blackdp_crypto::{PseudonymId, PublicKey};
use blackdp_mobility::ClusterId;
use blackdp_sim::Time;

use crate::config::BlackDpConfig;
use crate::wire::{addr_of, DReq, HelloProbe, HelloReply, RouteAuth, Sealed, SuspicionReason};

/// An instruction for the host embedding a [`SourceVerifier`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifierAction {
    /// Seal and route this Hello probe toward its destination.
    SendProbe(HelloProbe),
    /// Tear down the unverified route and rerun AODV route discovery.
    RestartDiscovery {
        /// The destination to rediscover.
        dest: Addr,
    },
    /// Seal this detection request and send it to the cluster head.
    Report(DReq),
    /// The route to `dest` is authenticated end to end; data may flow.
    Verified {
        /// The verified destination.
        dest: Addr,
    },
    /// Verification could not complete (e.g. no route at all); the attack —
    /// if any — was prevented but nothing is reportable.
    GaveUp {
        /// The abandoned destination.
        dest: Addr,
    },
}

#[derive(Debug, Clone)]
struct VerifyState {
    /// The replier behind the route under test: `(address, cluster)`.
    suspect: Option<(Addr, Option<ClusterId>)>,
    /// Outstanding probe: `(probe id, deadline)`.
    probe: Option<(u64, Time)>,
}

/// The per-vehicle verification state machine.
///
/// # Examples
///
/// See the crate-level documentation for a full walkthrough; unit tests in
/// this module exercise every ladder rung.
#[derive(Debug)]
pub struct SourceVerifier {
    cfg: BlackDpConfig,
    ta_key: PublicKey,
    identity: PseudonymId,
    cluster: Option<ClusterId>,
    states: BTreeMap<Addr, VerifyState>,
    /// Unanswered-probe strikes per `(destination, replier)`. Strikes
    /// survive interleaved successful verifications of *other* routes, so
    /// an attacker whose forged RREP keeps re-capturing the route cannot
    /// reset its own count by letting an honest round through.
    strikes: HashMap<(Addr, Addr), u8>,
    /// Repliers already reported to the cluster head; their routes are
    /// held (neither probed again nor used) until the verdict arrives.
    reported: BTreeSet<Addr>,
    next_probe_id: u64,
}

impl SourceVerifier {
    /// Creates a verifier for the vehicle holding `identity`, validating
    /// certificates against `ta_key`.
    pub fn new(cfg: BlackDpConfig, ta_key: PublicKey, identity: PseudonymId) -> Self {
        SourceVerifier {
            cfg,
            ta_key,
            identity,
            cluster: None,
            states: BTreeMap::new(),
            strikes: HashMap::new(),
            reported: BTreeSet::new(),
            next_probe_id: 0,
        }
    }

    /// Updates the vehicle's identity after pseudonym renewal.
    pub fn set_identity(&mut self, identity: PseudonymId) {
        self.identity = identity;
    }

    /// Records the cluster this vehicle registered with (from the JREP).
    pub fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.cluster = cluster;
    }

    /// The destinations currently under verification.
    pub fn pending(&self) -> impl Iterator<Item = Addr> + '_ {
        self.states.keys().copied()
    }

    /// Declares interest in a verified route to `dest`. Route events for
    /// destinations never begun are ignored.
    pub fn begin(&mut self, dest: Addr) {
        self.states.entry(dest).or_insert(VerifyState {
            suspect: None,
            probe: None,
        });
    }

    /// True if `replier` was already reported and awaits a verdict.
    pub fn is_reported(&self, replier: Addr) -> bool {
        self.reported.contains(&replier)
    }

    /// Feed: AODV established a route to `dest`, won by `rrep` (delivered
    /// by neighbor `from`), optionally carrying its authentication
    /// envelope.
    pub fn on_route_established(
        &mut self,
        dest: Addr,
        from: Addr,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> Vec<VerifierAction> {
        let Some(state) = self.states.get_mut(&dest) else {
            return Vec::new();
        };
        if state.probe.is_some() {
            // Already probing this destination; ignore extra RREPs.
            return Vec::new();
        }

        // Authentication first (the paper: "nodes need to authenticate
        // themselves to the originator node").
        let envelope = match auth {
            Some(env) => env,
            None => {
                // Unsigned RREP: authentication violation. The replier's
                // only identity is its link address.
                let dreq = self.make_dreq(from, None, SuspicionReason::AuthViolation);
                self.states.remove(&dest);
                self.reported.insert(from);
                return vec![VerifierAction::Report(dreq)];
            }
        };
        if envelope.verify(self.ta_key, now).is_err() {
            let suspect = addr_of(envelope.signer());
            let dreq = self.make_dreq(suspect, envelope.cluster, SuspicionReason::AuthViolation);
            self.states.remove(&dest);
            self.reported.insert(suspect);
            return vec![VerifierAction::Report(dreq)];
        }

        let signer_addr = addr_of(envelope.signer());
        if self.reported.contains(&signer_addr) {
            // Already reported: hold this route until the CH verdict.
            return Vec::new();
        }
        if signer_addr == dest {
            // The destination itself replied and authenticated: done.
            self.states.remove(&dest);
            return vec![VerifierAction::Verified { dest }];
        }

        // An intermediate claims a cached route: probe end to end.
        let _ = rrep;
        state.suspect = Some((signer_addr, envelope.cluster));
        let probe_id = self.next_probe_id;
        self.next_probe_id += 1;
        state.probe = Some((probe_id, now + self.cfg.hello_probe_timeout));
        // NOTE: `make_dreq` borrows &self; capture identity fields first.
        vec![VerifierAction::SendProbe(HelloProbe {
            probe_id,
            src: addr_of(self.identity),
            dest,
            ttl: 16,
        })]
    }

    /// Feed: a sealed Hello reply arrived.
    pub fn on_hello_reply(
        &mut self,
        envelope: &Sealed<HelloReply>,
        now: Time,
    ) -> Vec<VerifierAction> {
        let reply = envelope.body;
        // Find the pending destination this reply claims to answer.
        let dest = reply.src;
        let Some(state) = self.states.get(&dest) else {
            return Vec::new();
        };
        let Some((probe_id, _)) = state.probe else {
            return Vec::new();
        };
        if reply.probe_id != probe_id {
            return Vec::new(); // stale reply from an earlier round
        }

        let authentic = envelope.verify(self.ta_key, now).is_ok();
        let is_destination = addr_of(envelope.signer()) == dest;
        if authentic && is_destination {
            self.states.remove(&dest);
            return vec![VerifierAction::Verified { dest }];
        }

        // "Node v_B1 may reply with a fake Hello packet claiming that
        // itself or the teammate attacker is the destination ... Node v_1
        // sends the detection request without performing the second route
        // discovery because of the anonymity response."
        let (suspect, suspect_cluster) = state
            .suspect
            .unwrap_or((addr_of(envelope.signer()), envelope.cluster));
        let dreq = self.make_dreq(suspect, suspect_cluster, SuspicionReason::FakeHelloReply);
        self.states.remove(&dest);
        self.reported.insert(suspect);
        vec![VerifierAction::Report(dreq)]
    }

    /// Feed: AODV reported that route discovery for `dest` failed outright.
    /// The paper: a suspect that stays silent on the second round "can only
    /// be prevented", not detected.
    pub fn on_discovery_failed(&mut self, dest: Addr) -> Vec<VerifierAction> {
        if self.states.remove(&dest).is_some() {
            vec![VerifierAction::GaveUp { dest }]
        } else {
            Vec::new()
        }
    }

    /// Periodic maintenance: probe timeouts drive the attempt ladder.
    pub fn tick(&mut self, now: Time) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        let expired: Vec<Addr> = self
            .states
            .iter()
            .filter(|(_, s)| s.probe.map(|(_, d)| now >= d).unwrap_or(false))
            .map(|(&d, _)| d)
            .collect();
        for dest in expired {
            let state = self.states.get_mut(&dest).expect("just listed");
            state.probe = None;
            let Some((suspect, suspect_cluster)) = state.suspect else {
                self.states.remove(&dest);
                actions.push(VerifierAction::GaveUp { dest });
                continue;
            };
            let strikes = self.strikes.entry((dest, suspect)).or_insert(0);
            *strikes += 1;
            if *strikes >= 2 {
                // Second unanswered probe behind the same replier: report.
                self.states.remove(&dest);
                self.strikes.remove(&(dest, suspect));
                self.reported.insert(suspect);
                actions.push(VerifierAction::Report(self.make_dreq(
                    suspect,
                    suspect_cluster,
                    SuspicionReason::NoHelloResponse,
                )));
            } else {
                // First unanswered probe: redo the route discovery with the
                // authentication process.
                actions.push(VerifierAction::RestartDiscovery { dest });
            }
        }
        actions
    }

    fn make_dreq(
        &self,
        suspect: Addr,
        suspect_cluster: Option<ClusterId>,
        reason: SuspicionReason,
    ) -> DReq {
        DReq {
            reporter: self.identity,
            reporter_cluster: self.cluster.unwrap_or(ClusterId(0)),
            suspect,
            suspect_cluster,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_crypto::{Certificate, Keypair, LongTermId, TaId, TrustedAuthority};
    use blackdp_sim::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::wire::RrepBody;

    struct Fixture {
        rng: StdRng,
        ta: TrustedAuthority,
        verifier: SourceVerifier,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(11);
        let ta = TrustedAuthority::new(TaId(0), &mut rng);
        let verifier =
            SourceVerifier::new(BlackDpConfig::default(), ta.public_key(), PseudonymId(1));
        Fixture { rng, ta, verifier }
    }

    fn enroll(fx: &mut Fixture, long_term: u64) -> (Keypair, Certificate) {
        let keys = Keypair::generate(&mut fx.rng);
        let cert = fx.ta.enroll(
            LongTermId(long_term),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        (keys, cert)
    }

    fn rrep(dest: Addr, seq: u32) -> Rrep {
        Rrep {
            dest,
            dest_seq: seq,
            orig: Addr(1),
            hop_count: 2,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        }
    }

    #[test]
    fn destination_signed_rrep_verifies_directly() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7);
        let dest = addr_of(cert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 75)),
            cert,
            Some(ClusterId(3)),
            &keys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            Addr(22),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        assert_eq!(actions, vec![VerifierAction::Verified { dest }]);
        assert_eq!(fx.verifier.pending().count(), 0);
    }

    #[test]
    fn intermediate_rrep_triggers_probe() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7); // an intermediate, not the dest
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 75)),
            cert,
            Some(ClusterId(2)),
            &keys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(cert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        match &actions[..] {
            [VerifierAction::SendProbe(p)] => {
                assert_eq!(p.dest, dest);
                assert_eq!(p.src, Addr(1));
            }
            other => panic!("expected a probe, got {other:?}"),
        }
    }

    #[test]
    fn unsigned_rrep_reports_auth_violation() {
        let mut fx = fixture();
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let actions =
            fx.verifier
                .on_route_established(dest, Addr(66), &rrep(dest, 200), None, Time::ZERO);
        match &actions[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.suspect, Addr(66));
                assert_eq!(dreq.reason, SuspicionReason::AuthViolation);
            }
            other => panic!("expected a report, got {other:?}"),
        }
    }

    #[test]
    fn bad_signature_reports_auth_violation() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7);
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let mut auth = Sealed::seal(RrepBody(rrep(dest, 200)), cert, None, &keys, &mut fx.rng);
        // Tamper: claim a different sequence number than was signed.
        auth.body = RrepBody(rrep(dest, 4000));
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(cert.pseudonym),
            &rrep(dest, 4000),
            Some(&auth),
            Time::ZERO,
        );
        assert!(matches!(
            &actions[..],
            [VerifierAction::Report(d)] if d.reason == SuspicionReason::AuthViolation
        ));
    }

    #[test]
    fn authentic_hello_reply_from_destination_verifies() {
        let mut fx = fixture();
        let (ikeys, icert) = enroll(&mut fx, 7); // intermediate
        let (dkeys, dcert) = enroll(&mut fx, 8); // destination
        let dest = addr_of(dcert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(RrepBody(rrep(dest, 75)), icert, None, &ikeys, &mut fx.rng);
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(icert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        let probe_id = match &actions[..] {
            [VerifierAction::SendProbe(p)] => p.probe_id,
            other => panic!("expected probe, got {other:?}"),
        };
        let reply = Sealed::seal(
            HelloReply {
                probe_id,
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            dcert,
            None,
            &dkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_hello_reply(&reply, Time::from_millis(10));
        assert_eq!(actions, vec![VerifierAction::Verified { dest }]);
    }

    #[test]
    fn fake_hello_reply_reports_immediately() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66); // the black hole
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 200)),
            bcert,
            Some(ClusterId(2)),
            &bkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 200),
            Some(&auth),
            Time::ZERO,
        );
        let probe_id = match &actions[..] {
            [VerifierAction::SendProbe(p)] => p.probe_id,
            other => panic!("expected probe, got {other:?}"),
        };
        // The attacker itself "replies" claiming to be the destination: it
        // must sign as `dest` but only holds its own certificate.
        let fake = Sealed::seal(
            HelloReply {
                probe_id,
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            bcert,
            Some(ClusterId(2)),
            &bkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_hello_reply(&fake, Time::from_millis(5));
        match &actions[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.reason, SuspicionReason::FakeHelloReply);
                assert_eq!(dreq.suspect, addr_of(bcert.pseudonym));
                assert_eq!(dreq.suspect_cluster, Some(ClusterId(2)));
            }
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn two_timeouts_escalate_to_report() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 200)),
            bcert,
            Some(ClusterId(4)),
            &bkeys,
            &mut fx.rng,
        );

        // Round 1: probe sent, times out → restart discovery.
        let t0 = Time::ZERO;
        let a1 = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 200),
            Some(&auth),
            t0,
        );
        assert!(matches!(&a1[..], [VerifierAction::SendProbe(_)]));
        let t1 = t0 + Duration::from_secs(2);
        let a2 = fx.verifier.tick(t1);
        assert_eq!(a2, vec![VerifierAction::RestartDiscovery { dest }]);

        // Round 2: the attacker answers again, probe again, timeout again
        // → report with NoHelloResponse.
        let a3 = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 201),
            Some(&auth),
            t1,
        );
        assert!(matches!(&a3[..], [VerifierAction::SendProbe(_)]));
        let t2 = t1 + Duration::from_secs(2);
        let a4 = fx.verifier.tick(t2);
        match &a4[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.reason, SuspicionReason::NoHelloResponse);
                assert_eq!(dreq.suspect, addr_of(bcert.pseudonym));
            }
            other => panic!("expected report, got {other:?}"),
        }
        assert_eq!(fx.verifier.pending().count(), 0);
    }

    #[test]
    fn discovery_failure_gives_up_quietly() {
        let mut fx = fixture();
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let actions = fx.verifier.on_discovery_failed(dest);
        assert_eq!(actions, vec![VerifierAction::GaveUp { dest }]);
        assert!(fx.verifier.on_discovery_failed(dest).is_empty());
    }

    #[test]
    fn stale_hello_reply_is_ignored() {
        let mut fx = fixture();
        let (ikeys, icert) = enroll(&mut fx, 7);
        let (dkeys, dcert) = enroll(&mut fx, 8);
        let dest = addr_of(dcert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(RrepBody(rrep(dest, 75)), icert, None, &ikeys, &mut fx.rng);
        let _ = fx.verifier.on_route_established(
            dest,
            addr_of(icert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        let stale = Sealed::seal(
            HelloReply {
                probe_id: 999, // wrong id
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            dcert,
            None,
            &dkeys,
            &mut fx.rng,
        );
        assert!(fx.verifier.on_hello_reply(&stale, Time::ZERO).is_empty());
    }

    #[test]
    fn events_for_unknown_destinations_are_ignored() {
        let mut fx = fixture();
        let actions =
            fx.verifier
                .on_route_established(Addr(5), Addr(6), &rrep(Addr(5), 1), None, Time::ZERO);
        assert!(actions.is_empty(), "begin() was never called for Addr(5)");
    }

    #[test]
    fn strikes_survive_interleaved_honest_verification() {
        // The oscillation scenario: the attacker's forged RREP keeps
        // re-capturing the route, but an honest round verifies in between.
        // Without persistent per-suspect strikes the suspect memory would
        // reset every round and no report would ever fire.
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66); // attacker
        let (dkeys, dcert) = enroll(&mut fx, 8); // honest destination
        let dest = addr_of(dcert.pseudonym);
        let battacker = addr_of(bcert.pseudonym);

        // Round 1: attacker's route wins, probe, timeout -> restart.
        fx.verifier.begin(dest);
        let bauth = Sealed::seal(RrepBody(rrep(dest, 200)), bcert, None, &bkeys, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 200),
            Some(&bauth),
            Time::ZERO,
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(2));
        assert_eq!(a, vec![VerifierAction::RestartDiscovery { dest }]);

        // Interleaved honest round: destination itself replies -> Verified,
        // verifier state for `dest` is gone.
        fx.verifier.begin(dest);
        let dauth = Sealed::seal(RrepBody(rrep(dest, 5)), dcert, None, &dkeys, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            Addr(3),
            &rrep(dest, 5),
            Some(&dauth),
            Time::from_secs(2),
        );
        assert_eq!(a, vec![VerifierAction::Verified { dest }]);

        // Round 2: the attacker re-captures the route. One more unanswered
        // probe must escalate straight to a report (strike #2), not loop.
        fx.verifier.begin(dest);
        let auth400 = bauth2(&mut fx, bcert, &bkeys, dest);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 400),
            Some(&auth400),
            Time::from_secs(3),
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(5));
        match &a[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.suspect, battacker);
                assert_eq!(dreq.reason, SuspicionReason::NoHelloResponse);
            }
            other => panic!("expected escalation to report, got {other:?}"),
        }
        assert!(fx.verifier.is_reported(battacker));
    }

    fn bauth2(
        fx: &mut Fixture,
        cert: Certificate,
        keys: &Keypair,
        dest: Addr,
    ) -> crate::wire::RouteAuth {
        Sealed::seal(RrepBody(rrep(dest, 400)), cert, None, keys, &mut fx.rng)
    }

    #[test]
    fn reported_suspect_routes_are_held() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let dest = Addr(999);
        let battacker = addr_of(bcert.pseudonym);
        fx.verifier.begin(dest);

        // Drive to a report via two unanswered probes.
        let auth = Sealed::seal(RrepBody(rrep(dest, 200)), bcert, None, &bkeys, &mut fx.rng);
        let _ = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 200),
            Some(&auth),
            Time::ZERO,
        );
        let _ = fx.verifier.tick(Time::from_secs(2));
        fx.verifier.begin(dest);
        let auth201 = auth2(&mut fx, bcert, &bkeys, dest, 201);
        let _ = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 201),
            Some(&auth201),
            Time::from_secs(2),
        );
        let a = fx.verifier.tick(Time::from_secs(4));
        assert!(matches!(&a[..], [VerifierAction::Report(_)]));

        // Any further route via the reported suspect is neither probed nor
        // verified: held until the verdict.
        fx.verifier.begin(dest);
        let auth300 = auth2(&mut fx, bcert, &bkeys, dest, 300);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 300),
            Some(&auth300),
            Time::from_secs(5),
        );
        assert!(a.is_empty(), "reported suspects are held, got {a:?}");
    }

    fn auth2(
        fx: &mut Fixture,
        cert: Certificate,
        keys: &Keypair,
        dest: Addr,
        seq: u32,
    ) -> crate::wire::RouteAuth {
        Sealed::seal(RrepBody(rrep(dest, seq)), cert, None, keys, &mut fx.rng)
    }

    #[test]
    fn different_suspects_have_independent_strikes() {
        let mut fx = fixture();
        let (k1, c1) = enroll(&mut fx, 61);
        let (k2, c2) = enroll(&mut fx, 62);
        let dest = Addr(999);
        let s1 = addr_of(c1.pseudonym);
        let s2 = addr_of(c2.pseudonym);

        // Strike 1 against suspect 1.
        fx.verifier.begin(dest);
        let a1auth = Sealed::seal(RrepBody(rrep(dest, 100)), c1, None, &k1, &mut fx.rng);
        let _ =
            fx.verifier
                .on_route_established(dest, s1, &rrep(dest, 100), Some(&a1auth), Time::ZERO);
        let _ = fx.verifier.tick(Time::from_secs(2));

        // Suspect 2 answers the rediscovery: its FIRST unanswered probe
        // must restart, not report (its own strike count is zero).
        let a2auth = Sealed::seal(RrepBody(rrep(dest, 150)), c2, None, &k2, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            s2,
            &rrep(dest, 150),
            Some(&a2auth),
            Time::from_secs(2),
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(4));
        assert_eq!(
            a,
            vec![VerifierAction::RestartDiscovery { dest }],
            "suspect 2's first strike must not inherit suspect 1's"
        );
    }
}
