//! The originator-side route verification ladder
//! (Section III-B.1, "Source and Destination Verification").
//!
//! After AODV installs a route, the originator must not trust it yet:
//!
//! 1. If the RREP came **from the destination itself**, verifying the
//!    attached certificate + signature suffices.
//! 2. If it came from an **intermediate node** claiming a cached route, the
//!    originator sends a *secure Hello* probe end-to-end and waits for the
//!    destination's authenticated reply.
//! 3. On timeout it redoes route discovery once; a second unanswered probe
//!    behind the **same suspect** triggers a detection request (`d_req`) to
//!    the cluster head.
//! 4. A Hello reply that fails authentication, or authenticates as someone
//!    other than the destination, short-circuits to an immediate `d_req`
//!    ("anonymity response").
//!
//! Implemented sans-io: the host feeds in AODV route events and BlackDP
//! replies, and executes the returned [`VerifierAction`]s.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use blackdp_aodv::{Addr, Rrep};
use blackdp_crypto::cert::CertError;
use blackdp_crypto::sig::VerifyBatch;
use blackdp_crypto::{PseudonymId, PublicKey};
use blackdp_mobility::ClusterId;
use blackdp_sim::Time;

use crate::config::BlackDpConfig;
use crate::wire::{
    addr_of, AuthError, DReq, HelloProbe, HelloReply, RouteAuth, Sealed, SignBytes,
    SuspicionReason,
};

/// Bookkeeping for one enqueued envelope verification.
#[derive(Debug, Clone, Copy)]
struct VerifyJob {
    /// Index of the certificate's TA signature in the batch, with the
    /// digest to memoize after the flush — `None` when the per-thread
    /// certificate cache already knew the answer.
    cert_slot: Option<(u32, u128)>,
    /// The cache's answer for the certificate signature, when it had one.
    cert_cached: Option<bool>,
    /// The validity-window verdict, evaluated eagerly (it depends on the
    /// enqueue-time `now`, which must not drift to the flush).
    window: Option<CertError>,
    /// Index of the body signature in the batch. Unused (left at
    /// `u32::MAX`) when `memo` or `alias_of` resolved the job without
    /// batch work.
    body_slot: u32,
    /// Pre-resolved `(cert_ok, body_ok)` from the process-global envelope
    /// memo: this exact envelope's signature math already ran once, so
    /// the flush reuses the verdict without touching the batch.
    memo: Option<(bool, bool)>,
    /// Store this job's raw verdict under the given envelope digest after
    /// the flush proves it.
    store: Option<u128>,
    /// Copy the raw verdict of an earlier job in the same batch carrying
    /// a byte-identical envelope (the broadcast case: every receiver in a
    /// window sees the same sealed beacon).
    alias_of: Option<u32>,
}

/// Bound on each shard of the process-global envelope memo. When an
/// insert would grow a shard past this, that shard is cleared — crude,
/// but O(1) amortized, allocation-stable, and the memo is a pure cache:
/// losing it costs speed, never correctness.
const ENVELOPE_MEMO_SHARD_CAP: usize = 8_192;

/// Shard count for the envelope memo. Power of two so shard selection is
/// a mask; sized so eight windowed-executor worker threads rarely
/// collide on one lock (the digest is fnv output, so its low bits spread
/// uniformly).
const ENVELOPE_MEMO_SHARDS: usize = 16;

type MemoShard = std::sync::Mutex<HashMap<u128, (bool, bool), blackdp_crypto::DigestHasherBuilder>>;

/// The process-global envelope-verdict memo: envelope digest →
/// `(cert_ok, body_ok)`, sharded by digest low bits.
///
/// Unlike the per-thread certificate cache this is deliberately global:
/// a broadcast beacon is verified once per *receiver*, and with the
/// windowed executor those receivers' handlers run on different worker
/// threads. Signature validity is a pure function of the envelope bytes,
/// so sharing verdicts across threads cannot perturb any result — the
/// validity *window* (time-dependent) is always evaluated fresh and is
/// never memoized. Sharding exists purely so parallel window lanes
/// contend on different locks: a single-mutex memo measurably *lost*
/// throughput at eight lanes.
fn envelope_memo() -> &'static [MemoShard; ENVELOPE_MEMO_SHARDS] {
    static MEMO: std::sync::OnceLock<[MemoShard; ENVELOPE_MEMO_SHARDS]> =
        std::sync::OnceLock::new();
    MEMO.get_or_init(|| std::array::from_fn(|_| std::sync::Mutex::new(HashMap::default())))
}

/// Locks one digest's shard, tolerating poisoning: the map holds plain
/// bools, so a panicking holder cannot leave it logically inconsistent.
fn envelope_memo_lock(
    digest: u128,
) -> std::sync::MutexGuard<'static, HashMap<u128, (bool, bool), blackdp_crypto::DigestHasherBuilder>>
{
    envelope_memo()[digest as usize & (ENVELOPE_MEMO_SHARDS - 1)]
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn envelope_memo_lookup(digest: u128) -> Option<(bool, bool)> {
    envelope_memo_lock(digest).get(&digest).copied()
}

fn envelope_memo_store(digest: u128, verdict: (bool, bool)) {
    let mut memo = envelope_memo_lock(digest);
    if memo.len() >= ENVELOPE_MEMO_SHARD_CAP && !memo.contains_key(&digest) {
        memo.clear();
    }
    memo.insert(digest, verdict);
}

/// Empties the process-global envelope memo. Benchmarks and differential
/// tests use this to measure cold-path costs and to keep verdict reuse
/// from leaking between cases.
#[doc(hidden)]
pub fn envelope_memo_clear() {
    for shard in envelope_memo() {
        shard
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
    }
}

/// Deferred, batch-backed verification of [`Sealed`] envelopes.
///
/// Callers [`enqueue`](VerifyQueue::enqueue) any number of envelopes and
/// then [`flush`](VerifyQueue::flush) once: every signature the flush
/// still has to prove — body signatures, plus certificate signatures the
/// per-thread cache has not memoized — runs through one
/// [`VerifyBatch`], sharing its fixed-base tables, interleaved
/// exponentiation ladders, and multi-lane challenge hashing. Per-job
/// results reproduce [`Sealed::verify`] exactly, including error
/// precedence (certificate signature, then validity window, then body
/// signature); the differential tests below pin that equivalence.
///
/// Determinism: the batch's acceptance-fold coefficients come from an
/// FNV stream over the batch contents — never a caller RNG — and the
/// cheap checks (cache lookups, window comparisons) are evaluated at
/// enqueue time, so routing verification through a queue instead of
/// calling [`Sealed::verify`] inline cannot perturb a simulation.
///
/// Dedup: byte-identical envelopes (one broadcast beacon, many
/// receivers) are proven once. Within a batch, later copies alias the
/// first job's verdict; across flushes — and across threads — a
/// process-global memo keyed by an FNV-128 envelope digest replays the
/// signature verdicts without re-running any math. Signature validity is
/// a pure function of the envelope bytes, so neither layer can change a
/// verdict; the time-dependent validity window is always re-evaluated at
/// the caller's `now` and never memoized.
///
/// All buffers (the batch arena and scratch, the job and result lists)
/// are retained across flushes: steady-state use is allocation-free
/// once warm.
#[derive(Debug, Default)]
pub struct VerifyQueue {
    batch: VerifyBatch,
    jobs: Vec<VerifyJob>,
    results: Vec<Result<(), AuthError>>,
    scratch: Vec<u8>,
    /// Second scratch for certificate bodies, so the envelope bytes in
    /// `scratch` survive from digesting to the body-signature push.
    cert_scratch: Vec<u8>,
    /// Envelope digest → index of the first job in the current batch
    /// carrying it; later byte-identical enqueues alias to that job
    /// instead of pushing duplicate signature work.
    pending_digests: HashMap<u128, u32, blackdp_crypto::DigestHasherBuilder>,
    /// Raw `(cert_ok, body_ok)` per job, resolved in enqueue order during
    /// the flush so alias jobs can copy their primary's verdict. Retained
    /// across flushes to stay allocation-free when warm.
    verdicts: Vec<(bool, bool)>,
}

impl VerifyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        VerifyQueue::default()
    }

    /// Queues `sealed` for verification at time `now` under the TA root
    /// key. Returns the job's index into [`flush`](VerifyQueue::flush)'s
    /// result slice.
    pub fn enqueue<T: SignBytes>(
        &mut self,
        sealed: &Sealed<T>,
        ta_key: PublicKey,
        now: Time,
    ) -> usize {
        // Validity window: time-dependent, so decided here, not at flush
        // — and never memoized, for the same reason.
        let window = sealed.cert.check_window(now).err();
        let (env_digest, body_len) = self.env_digest_of(sealed, ta_key);
        let index = self.jobs.len();
        // Same envelope already queued in this batch (a broadcast seen by
        // many receivers): alias to the first copy's verdict.
        if let Some(&primary) = self.pending_digests.get(&env_digest) {
            self.jobs.push(VerifyJob {
                cert_slot: None,
                cert_cached: None,
                window,
                body_slot: u32::MAX,
                memo: None,
                store: None,
                alias_of: Some(primary),
            });
            return index;
        }
        // Same envelope already proven by an earlier flush anywhere in
        // the process: reuse the memoized verdict.
        if let Some(verdict) = envelope_memo_lookup(env_digest) {
            self.jobs.push(VerifyJob {
                cert_slot: None,
                cert_cached: None,
                window,
                body_slot: u32::MAX,
                memo: Some(verdict),
                store: None,
                alias_of: None,
            });
            return index;
        }
        // Certificate signature: consult the memo cache now; only a miss
        // costs batch work. The per-thread cache key is computed lazily,
        // here on the memo-miss path only — alias and memo hits above
        // never pay for it.
        let digest = sealed.cert.cache_digest(ta_key);
        let cert_cached = blackdp_crypto::lookup_signature(digest);
        let cert_slot = if cert_cached.is_none() {
            let slot = u32::try_from(self.batch.len()).expect("batch < 4G items");
            // `scratch` still holds the envelope bytes needed for the
            // body push below; the cert body uses its own buffer.
            self.cert_scratch.clear();
            sealed.cert.write_body(&mut self.cert_scratch);
            self.batch
                .push(&self.cert_scratch, sealed.cert.signature, ta_key);
            Some((slot, digest))
        } else {
            None
        };
        // Body signature under the certificate's key. The signed message
        // is the `body_len` prefix of `scratch` — the digest pass above
        // appended cert identity after it.
        let body_slot = u32::try_from(self.batch.len()).expect("batch < 4G items");
        self.batch.push(
            &self.scratch[..body_len],
            sealed.signature,
            sealed.cert.public_key,
        );
        self.pending_digests.insert(env_digest, index as u32);
        self.jobs.push(VerifyJob {
            cert_slot,
            cert_cached,
            window,
            body_slot,
            memo: None,
            store: Some(env_digest),
            alias_of: None,
        });
        index
    }

    /// Number of envelopes queued since the last flush.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Verifies everything queued in one batch and returns the per-job
    /// verdicts, indexed by [`enqueue`](VerifyQueue::enqueue) order. The
    /// queue resets for reuse (capacity retained).
    pub fn flush(&mut self) -> &[Result<(), AuthError>] {
        let outcome = self.batch.verify_all();
        self.results.clear();
        self.verdicts.clear();
        for job in self.jobs.drain(..) {
            // Raw signature verdicts first: memo hit, alias of an earlier
            // job in this batch, or real batch slots.
            let (cert_ok, body_ok) = if let Some(verdict) = job.memo {
                verdict
            } else if let Some(primary) = job.alias_of {
                self.verdicts[primary as usize]
            } else {
                let cert_ok = match (job.cert_cached, job.cert_slot) {
                    (Some(valid), _) => valid,
                    (None, Some((slot, digest))) => {
                        let valid = outcome.is_valid(slot as usize);
                        blackdp_crypto::store_signature(digest, valid);
                        valid
                    }
                    (None, None) => unreachable!("cache miss queues a cert slot"),
                };
                (cert_ok, outcome.is_valid(job.body_slot as usize))
            };
            if let Some(env_digest) = job.store {
                envelope_memo_store(env_digest, (cert_ok, body_ok));
            }
            self.verdicts.push((cert_ok, body_ok));
            // Same precedence as `Sealed::verify`: certificate signature,
            // then validity window, then body signature.
            self.results.push(if !cert_ok {
                Err(AuthError::Cert(CertError::BadSignature))
            } else if let Some(w) = job.window {
                Err(AuthError::Cert(w))
            } else if !body_ok {
                Err(AuthError::BadSignature)
            } else {
                Ok(())
            });
        }
        self.pending_digests.clear();
        &self.results
    }

    /// Serializes the full envelope identity into `scratch` and digests
    /// it in one hash pass: the signed body bytes first — so the
    /// `body_len` prefix of `scratch` is exactly the batch message —
    /// then the body signature scalars, the certificate body, the
    /// certificate signature scalars, and the TA key. Everything the
    /// signature math depends on, one buffer, no allocation when warm:
    /// on the memo-hit path this digest IS the cost of a verification.
    fn env_digest_of<T: SignBytes>(
        &mut self,
        sealed: &Sealed<T>,
        ta_key: PublicKey,
    ) -> (u128, usize) {
        self.scratch.clear();
        sealed.full_bytes_into(&mut self.scratch);
        let body_len = self.scratch.len();
        self.scratch
            .extend_from_slice(&sealed.signature.e.to_be_bytes());
        self.scratch
            .extend_from_slice(&sealed.signature.s.to_be_bytes());
        sealed.cert.write_body(&mut self.scratch);
        self.scratch
            .extend_from_slice(&sealed.cert.signature.e.to_be_bytes());
        self.scratch
            .extend_from_slice(&sealed.cert.signature.s.to_be_bytes());
        self.scratch
            .extend_from_slice(&ta_key.raw().to_be_bytes());
        (blackdp_crypto::fast_hash_128(&[&self.scratch]), body_len)
    }

    /// Verifies a single envelope through the queue: enqueue plus flush.
    /// Below the batch's lane threshold this runs the exact scalar
    /// verifications [`Sealed::verify`] would, minus its per-call
    /// allocations. An envelope already proven anywhere in the process
    /// short-circuits on the memo alone — digest, shard lookup, verdict —
    /// skipping the whole job/flush machinery; the windowed executor's
    /// handlers lean on this after the window prefetcher has batch-proven
    /// the window's envelopes.
    pub fn verify_one<T: SignBytes>(
        &mut self,
        sealed: &Sealed<T>,
        ta_key: PublicKey,
        now: Time,
    ) -> Result<(), AuthError> {
        debug_assert!(self.is_empty(), "verify_one on a non-empty queue");
        let (env_digest, _) = self.env_digest_of(sealed, ta_key);
        if let Some((cert_ok, body_ok)) = envelope_memo_lookup(env_digest) {
            // Same precedence as `Sealed::verify` and `flush`: cert
            // signature, then validity window (always live, never
            // memoized), then body signature.
            return if !cert_ok {
                Err(AuthError::Cert(CertError::BadSignature))
            } else if let Err(w) = sealed.cert.check_window(now) {
                Err(AuthError::Cert(w))
            } else if !body_ok {
                Err(AuthError::BadSignature)
            } else {
                Ok(())
            };
        }
        self.enqueue(sealed, ta_key, now);
        self.flush()[0]
    }
}

/// Aggregate counters reported by a [`BoundaryAuditor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryAuditStats {
    /// Envelopes observed (enqueued) so far.
    pub enqueued: u64,
    /// Batched flushes executed.
    pub flushes: u64,
    /// Widest single flush, in envelopes. The PR-7 in-sim ceiling was ≤ 2
    /// signatures per flush; boundary auditing exists to push this past
    /// the batch verifier's lane threshold.
    pub max_width: usize,
    /// Envelopes whose audit verification failed.
    pub failures: u64,
}

/// Batched out-of-band verification of envelopes crossing shard
/// boundaries.
///
/// The in-simulation [`VerifyQueue`] is structurally limited to ≤ 2
/// signatures per flush — one envelope per delivery event, and wider
/// deferral would break trace byte-identity (the PR-7 finding). The
/// boundary auditor sits **outside** the protocol: it observes the sealed
/// envelopes of radio deliveries that crossed a shard-band boundary (via
/// the world's boundary tap), accumulates them to a target width, and
/// flushes them through one [`VerifyQueue`] batch. Because the audit makes
/// no RNG draws, touches no [`Stats`](blackdp_sim::Stats) counter, and
/// feeds nothing back into any node, attaching it cannot perturb a
/// simulation — which is exactly what lets it batch freely where the
/// in-sim queue cannot.
///
/// Verdicts reproduce [`Sealed::verify`] exactly (see [`VerifyQueue`]);
/// honest traffic must audit clean, so a nonzero
/// [`failures`](BoundaryAuditStats::failures) on an attacker-free run is a
/// bug detector in its own right.
#[derive(Debug)]
pub struct BoundaryAuditor {
    queue: VerifyQueue,
    ta_key: PublicKey,
    target_width: usize,
    pending: usize,
    stats: BoundaryAuditStats,
}

impl BoundaryAuditor {
    /// Default flush width: comfortably past the batch verifier's lane
    /// threshold while keeping audit latency (and peak arena size) small.
    pub const DEFAULT_WIDTH: usize = 64;

    /// Creates an auditor verifying against the TA root key `ta_key`,
    /// flushing whenever `target_width` envelopes are pending (values
    /// below 1 are treated as 1).
    pub fn new(ta_key: PublicKey, target_width: usize) -> Self {
        BoundaryAuditor {
            queue: VerifyQueue::new(),
            ta_key,
            target_width: target_width.max(1),
            pending: 0,
            stats: BoundaryAuditStats::default(),
        }
    }

    /// Observes one boundary-crossing envelope at time `now`. When the
    /// accumulated batch reaches the target width this flushes and returns
    /// the batch's verdicts (in observation order); otherwise `None`.
    pub fn observe<T: SignBytes>(
        &mut self,
        sealed: &Sealed<T>,
        now: Time,
    ) -> Option<&[Result<(), AuthError>]> {
        self.queue.enqueue(sealed, self.ta_key, now);
        self.pending += 1;
        self.stats.enqueued += 1;
        if self.pending >= self.target_width {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Flushes any pending envelopes through one batched verification and
    /// returns their verdicts (empty if nothing was pending). Call once
    /// after the run to drain the final partial batch.
    pub fn flush(&mut self) -> &[Result<(), AuthError>] {
        if self.pending == 0 {
            return &[];
        }
        self.stats.flushes += 1;
        self.stats.max_width = self.stats.max_width.max(self.pending);
        self.pending = 0;
        let results = self.queue.flush();
        self.stats.failures += results.iter().filter(|r| r.is_err()).count() as u64;
        results
    }

    /// Envelopes accumulated toward the next flush.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Aggregate audit counters so far. Drain with
    /// [`flush`](BoundaryAuditor::flush) first for final numbers.
    pub fn stats(&self) -> BoundaryAuditStats {
        self.stats
    }
}

/// An instruction for the host embedding a [`SourceVerifier`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifierAction {
    /// Seal and route this Hello probe toward its destination.
    SendProbe(HelloProbe),
    /// Tear down the unverified route and rerun AODV route discovery.
    RestartDiscovery {
        /// The destination to rediscover.
        dest: Addr,
    },
    /// Seal this detection request and send it to the cluster head.
    Report(DReq),
    /// The route to `dest` is authenticated end to end; data may flow.
    Verified {
        /// The verified destination.
        dest: Addr,
    },
    /// Verification could not complete (e.g. no route at all); the attack —
    /// if any — was prevented but nothing is reportable.
    GaveUp {
        /// The abandoned destination.
        dest: Addr,
    },
}

#[derive(Debug, Clone)]
struct VerifyState {
    /// The replier behind the route under test: `(address, cluster)`.
    suspect: Option<(Addr, Option<ClusterId>)>,
    /// Outstanding probe: `(probe id, deadline)`.
    probe: Option<(u64, Time)>,
}

/// The per-vehicle verification state machine.
///
/// # Examples
///
/// See the crate-level documentation for a full walkthrough; unit tests in
/// this module exercise every ladder rung.
#[derive(Debug)]
pub struct SourceVerifier {
    cfg: BlackDpConfig,
    ta_key: PublicKey,
    identity: PseudonymId,
    cluster: Option<ClusterId>,
    states: BTreeMap<Addr, VerifyState>,
    /// Unanswered-probe strikes per `(destination, replier)`. Strikes
    /// survive interleaved successful verifications of *other* routes, so
    /// an attacker whose forged RREP keeps re-capturing the route cannot
    /// reset its own count by letting an honest round through.
    strikes: HashMap<(Addr, Addr), u8>,
    /// Repliers already reported to the cluster head; their routes are
    /// held (neither probed again nor used) until the verdict arrives.
    reported: BTreeSet<Addr>,
    /// Batch-backed envelope verification with retained buffers; see
    /// [`VerifyQueue`].
    queue: VerifyQueue,
    next_probe_id: u64,
}

impl SourceVerifier {
    /// Creates a verifier for the vehicle holding `identity`, validating
    /// certificates against `ta_key`.
    pub fn new(cfg: BlackDpConfig, ta_key: PublicKey, identity: PseudonymId) -> Self {
        SourceVerifier {
            cfg,
            ta_key,
            identity,
            cluster: None,
            states: BTreeMap::new(),
            strikes: HashMap::new(),
            reported: BTreeSet::new(),
            queue: VerifyQueue::new(),
            next_probe_id: 0,
        }
    }

    /// Updates the vehicle's identity after pseudonym renewal.
    pub fn set_identity(&mut self, identity: PseudonymId) {
        self.identity = identity;
    }

    /// Records the cluster this vehicle registered with (from the JREP).
    pub fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.cluster = cluster;
    }

    /// The destinations currently under verification.
    pub fn pending(&self) -> impl Iterator<Item = Addr> + '_ {
        self.states.keys().copied()
    }

    /// Declares interest in a verified route to `dest`. Route events for
    /// destinations never begun are ignored.
    pub fn begin(&mut self, dest: Addr) {
        self.states.entry(dest).or_insert(VerifyState {
            suspect: None,
            probe: None,
        });
    }

    /// True if `replier` was already reported and awaits a verdict.
    pub fn is_reported(&self, replier: Addr) -> bool {
        self.reported.contains(&replier)
    }

    /// Feed: AODV established a route to `dest`, won by `rrep` (delivered
    /// by neighbor `from`), optionally carrying its authentication
    /// envelope.
    pub fn on_route_established(
        &mut self,
        dest: Addr,
        from: Addr,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> Vec<VerifierAction> {
        let Some(state) = self.states.get_mut(&dest) else {
            return Vec::new();
        };
        if state.probe.is_some() {
            // Already probing this destination; ignore extra RREPs.
            return Vec::new();
        }

        // Authentication first (the paper: "nodes need to authenticate
        // themselves to the originator node").
        let envelope = match auth {
            Some(env) => env,
            None => {
                // Unsigned RREP: authentication violation. The replier's
                // only identity is its link address.
                let dreq = self.make_dreq(from, None, SuspicionReason::AuthViolation);
                self.states.remove(&dest);
                self.reported.insert(from);
                return vec![VerifierAction::Report(dreq)];
            }
        };
        if self.queue.verify_one(envelope, self.ta_key, now).is_err() {
            let suspect = addr_of(envelope.signer());
            let dreq = self.make_dreq(suspect, envelope.cluster, SuspicionReason::AuthViolation);
            self.states.remove(&dest);
            self.reported.insert(suspect);
            return vec![VerifierAction::Report(dreq)];
        }

        let signer_addr = addr_of(envelope.signer());
        if self.reported.contains(&signer_addr) {
            // Already reported: hold this route until the CH verdict.
            return Vec::new();
        }
        if signer_addr == dest {
            // The destination itself replied and authenticated: done.
            self.states.remove(&dest);
            return vec![VerifierAction::Verified { dest }];
        }

        // An intermediate claims a cached route: probe end to end.
        let _ = rrep;
        state.suspect = Some((signer_addr, envelope.cluster));
        let probe_id = self.next_probe_id;
        self.next_probe_id += 1;
        state.probe = Some((probe_id, now + self.cfg.hello_probe_timeout));
        // NOTE: `make_dreq` borrows &self; capture identity fields first.
        vec![VerifierAction::SendProbe(HelloProbe {
            probe_id,
            src: addr_of(self.identity),
            dest,
            ttl: 16,
        })]
    }

    /// Feed: a sealed Hello reply arrived.
    pub fn on_hello_reply(
        &mut self,
        envelope: &Sealed<HelloReply>,
        now: Time,
    ) -> Vec<VerifierAction> {
        let reply = envelope.body;
        // Find the pending destination this reply claims to answer.
        let dest = reply.src;
        let Some(state) = self.states.get(&dest) else {
            return Vec::new();
        };
        let Some((probe_id, _)) = state.probe else {
            return Vec::new();
        };
        if reply.probe_id != probe_id {
            return Vec::new(); // stale reply from an earlier round
        }

        let authentic = self.queue.verify_one(envelope, self.ta_key, now).is_ok();
        let is_destination = addr_of(envelope.signer()) == dest;
        if authentic && is_destination {
            self.states.remove(&dest);
            return vec![VerifierAction::Verified { dest }];
        }

        // "Node v_B1 may reply with a fake Hello packet claiming that
        // itself or the teammate attacker is the destination ... Node v_1
        // sends the detection request without performing the second route
        // discovery because of the anonymity response."
        let (suspect, suspect_cluster) = state
            .suspect
            .unwrap_or((addr_of(envelope.signer()), envelope.cluster));
        let dreq = self.make_dreq(suspect, suspect_cluster, SuspicionReason::FakeHelloReply);
        self.states.remove(&dest);
        self.reported.insert(suspect);
        vec![VerifierAction::Report(dreq)]
    }

    /// Feed: AODV reported that route discovery for `dest` failed outright.
    /// The paper: a suspect that stays silent on the second round "can only
    /// be prevented", not detected.
    pub fn on_discovery_failed(&mut self, dest: Addr) -> Vec<VerifierAction> {
        if self.states.remove(&dest).is_some() {
            vec![VerifierAction::GaveUp { dest }]
        } else {
            Vec::new()
        }
    }

    /// Periodic maintenance: probe timeouts drive the attempt ladder.
    pub fn tick(&mut self, now: Time) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        let expired: Vec<Addr> = self
            .states
            .iter()
            .filter(|(_, s)| s.probe.map(|(_, d)| now >= d).unwrap_or(false))
            .map(|(&d, _)| d)
            .collect();
        for dest in expired {
            let state = self.states.get_mut(&dest).expect("just listed");
            state.probe = None;
            let Some((suspect, suspect_cluster)) = state.suspect else {
                self.states.remove(&dest);
                actions.push(VerifierAction::GaveUp { dest });
                continue;
            };
            let strikes = self.strikes.entry((dest, suspect)).or_insert(0);
            *strikes += 1;
            if *strikes >= 2 {
                // Second unanswered probe behind the same replier: report.
                self.states.remove(&dest);
                self.strikes.remove(&(dest, suspect));
                self.reported.insert(suspect);
                actions.push(VerifierAction::Report(self.make_dreq(
                    suspect,
                    suspect_cluster,
                    SuspicionReason::NoHelloResponse,
                )));
            } else {
                // First unanswered probe: redo the route discovery with the
                // authentication process.
                actions.push(VerifierAction::RestartDiscovery { dest });
            }
        }
        actions
    }

    fn make_dreq(
        &self,
        suspect: Addr,
        suspect_cluster: Option<ClusterId>,
        reason: SuspicionReason,
    ) -> DReq {
        DReq {
            reporter: self.identity,
            reporter_cluster: self.cluster.unwrap_or(ClusterId(0)),
            suspect,
            suspect_cluster,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_crypto::{Certificate, Keypair, LongTermId, TaId, TrustedAuthority};
    use blackdp_sim::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::wire::RrepBody;

    struct Fixture {
        rng: StdRng,
        ta: TrustedAuthority,
        verifier: SourceVerifier,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(11);
        let ta = TrustedAuthority::new(TaId(0), &mut rng);
        let verifier =
            SourceVerifier::new(BlackDpConfig::default(), ta.public_key(), PseudonymId(1));
        Fixture { rng, ta, verifier }
    }

    fn enroll(fx: &mut Fixture, long_term: u64) -> (Keypair, Certificate) {
        let keys = Keypair::generate(&mut fx.rng);
        let cert = fx.ta.enroll(
            LongTermId(long_term),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        (keys, cert)
    }

    fn rrep(dest: Addr, seq: u32) -> Rrep {
        Rrep {
            dest,
            dest_seq: seq,
            orig: Addr(1),
            hop_count: 2,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        }
    }

    #[test]
    fn destination_signed_rrep_verifies_directly() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7);
        let dest = addr_of(cert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 75)),
            cert,
            Some(ClusterId(3)),
            &keys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            Addr(22),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        assert_eq!(actions, vec![VerifierAction::Verified { dest }]);
        assert_eq!(fx.verifier.pending().count(), 0);
    }

    #[test]
    fn intermediate_rrep_triggers_probe() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7); // an intermediate, not the dest
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 75)),
            cert,
            Some(ClusterId(2)),
            &keys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(cert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        match &actions[..] {
            [VerifierAction::SendProbe(p)] => {
                assert_eq!(p.dest, dest);
                assert_eq!(p.src, Addr(1));
            }
            other => panic!("expected a probe, got {other:?}"),
        }
    }

    #[test]
    fn unsigned_rrep_reports_auth_violation() {
        let mut fx = fixture();
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let actions =
            fx.verifier
                .on_route_established(dest, Addr(66), &rrep(dest, 200), None, Time::ZERO);
        match &actions[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.suspect, Addr(66));
                assert_eq!(dreq.reason, SuspicionReason::AuthViolation);
            }
            other => panic!("expected a report, got {other:?}"),
        }
    }

    #[test]
    fn bad_signature_reports_auth_violation() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 7);
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let mut auth = Sealed::seal(RrepBody(rrep(dest, 200)), cert, None, &keys, &mut fx.rng);
        // Tamper: claim a different sequence number than was signed.
        auth.body = RrepBody(rrep(dest, 4000));
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(cert.pseudonym),
            &rrep(dest, 4000),
            Some(&auth),
            Time::ZERO,
        );
        assert!(matches!(
            &actions[..],
            [VerifierAction::Report(d)] if d.reason == SuspicionReason::AuthViolation
        ));
    }

    #[test]
    fn authentic_hello_reply_from_destination_verifies() {
        let mut fx = fixture();
        let (ikeys, icert) = enroll(&mut fx, 7); // intermediate
        let (dkeys, dcert) = enroll(&mut fx, 8); // destination
        let dest = addr_of(dcert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(RrepBody(rrep(dest, 75)), icert, None, &ikeys, &mut fx.rng);
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(icert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        let probe_id = match &actions[..] {
            [VerifierAction::SendProbe(p)] => p.probe_id,
            other => panic!("expected probe, got {other:?}"),
        };
        let reply = Sealed::seal(
            HelloReply {
                probe_id,
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            dcert,
            None,
            &dkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_hello_reply(&reply, Time::from_millis(10));
        assert_eq!(actions, vec![VerifierAction::Verified { dest }]);
    }

    #[test]
    fn fake_hello_reply_reports_immediately() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66); // the black hole
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 200)),
            bcert,
            Some(ClusterId(2)),
            &bkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 200),
            Some(&auth),
            Time::ZERO,
        );
        let probe_id = match &actions[..] {
            [VerifierAction::SendProbe(p)] => p.probe_id,
            other => panic!("expected probe, got {other:?}"),
        };
        // The attacker itself "replies" claiming to be the destination: it
        // must sign as `dest` but only holds its own certificate.
        let fake = Sealed::seal(
            HelloReply {
                probe_id,
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            bcert,
            Some(ClusterId(2)),
            &bkeys,
            &mut fx.rng,
        );
        let actions = fx.verifier.on_hello_reply(&fake, Time::from_millis(5));
        match &actions[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.reason, SuspicionReason::FakeHelloReply);
                assert_eq!(dreq.suspect, addr_of(bcert.pseudonym));
                assert_eq!(dreq.suspect_cluster, Some(ClusterId(2)));
            }
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn two_timeouts_escalate_to_report() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(
            RrepBody(rrep(dest, 200)),
            bcert,
            Some(ClusterId(4)),
            &bkeys,
            &mut fx.rng,
        );

        // Round 1: probe sent, times out → restart discovery.
        let t0 = Time::ZERO;
        let a1 = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 200),
            Some(&auth),
            t0,
        );
        assert!(matches!(&a1[..], [VerifierAction::SendProbe(_)]));
        let t1 = t0 + Duration::from_secs(2);
        let a2 = fx.verifier.tick(t1);
        assert_eq!(a2, vec![VerifierAction::RestartDiscovery { dest }]);

        // Round 2: the attacker answers again, probe again, timeout again
        // → report with NoHelloResponse.
        let a3 = fx.verifier.on_route_established(
            dest,
            addr_of(bcert.pseudonym),
            &rrep(dest, 201),
            Some(&auth),
            t1,
        );
        assert!(matches!(&a3[..], [VerifierAction::SendProbe(_)]));
        let t2 = t1 + Duration::from_secs(2);
        let a4 = fx.verifier.tick(t2);
        match &a4[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.reason, SuspicionReason::NoHelloResponse);
                assert_eq!(dreq.suspect, addr_of(bcert.pseudonym));
            }
            other => panic!("expected report, got {other:?}"),
        }
        assert_eq!(fx.verifier.pending().count(), 0);
    }

    #[test]
    fn discovery_failure_gives_up_quietly() {
        let mut fx = fixture();
        let dest = Addr(999);
        fx.verifier.begin(dest);
        let actions = fx.verifier.on_discovery_failed(dest);
        assert_eq!(actions, vec![VerifierAction::GaveUp { dest }]);
        assert!(fx.verifier.on_discovery_failed(dest).is_empty());
    }

    #[test]
    fn stale_hello_reply_is_ignored() {
        let mut fx = fixture();
        let (ikeys, icert) = enroll(&mut fx, 7);
        let (dkeys, dcert) = enroll(&mut fx, 8);
        let dest = addr_of(dcert.pseudonym);
        fx.verifier.begin(dest);
        let auth = Sealed::seal(RrepBody(rrep(dest, 75)), icert, None, &ikeys, &mut fx.rng);
        let _ = fx.verifier.on_route_established(
            dest,
            addr_of(icert.pseudonym),
            &rrep(dest, 75),
            Some(&auth),
            Time::ZERO,
        );
        let stale = Sealed::seal(
            HelloReply {
                probe_id: 999, // wrong id
                src: dest,
                dest: Addr(1),
                ttl: 12,
            },
            dcert,
            None,
            &dkeys,
            &mut fx.rng,
        );
        assert!(fx.verifier.on_hello_reply(&stale, Time::ZERO).is_empty());
    }

    #[test]
    fn events_for_unknown_destinations_are_ignored() {
        let mut fx = fixture();
        let actions =
            fx.verifier
                .on_route_established(Addr(5), Addr(6), &rrep(Addr(5), 1), None, Time::ZERO);
        assert!(actions.is_empty(), "begin() was never called for Addr(5)");
    }

    #[test]
    fn strikes_survive_interleaved_honest_verification() {
        // The oscillation scenario: the attacker's forged RREP keeps
        // re-capturing the route, but an honest round verifies in between.
        // Without persistent per-suspect strikes the suspect memory would
        // reset every round and no report would ever fire.
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66); // attacker
        let (dkeys, dcert) = enroll(&mut fx, 8); // honest destination
        let dest = addr_of(dcert.pseudonym);
        let battacker = addr_of(bcert.pseudonym);

        // Round 1: attacker's route wins, probe, timeout -> restart.
        fx.verifier.begin(dest);
        let bauth = Sealed::seal(RrepBody(rrep(dest, 200)), bcert, None, &bkeys, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 200),
            Some(&bauth),
            Time::ZERO,
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(2));
        assert_eq!(a, vec![VerifierAction::RestartDiscovery { dest }]);

        // Interleaved honest round: destination itself replies -> Verified,
        // verifier state for `dest` is gone.
        fx.verifier.begin(dest);
        let dauth = Sealed::seal(RrepBody(rrep(dest, 5)), dcert, None, &dkeys, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            Addr(3),
            &rrep(dest, 5),
            Some(&dauth),
            Time::from_secs(2),
        );
        assert_eq!(a, vec![VerifierAction::Verified { dest }]);

        // Round 2: the attacker re-captures the route. One more unanswered
        // probe must escalate straight to a report (strike #2), not loop.
        fx.verifier.begin(dest);
        let auth400 = bauth2(&mut fx, bcert, &bkeys, dest);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 400),
            Some(&auth400),
            Time::from_secs(3),
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(5));
        match &a[..] {
            [VerifierAction::Report(dreq)] => {
                assert_eq!(dreq.suspect, battacker);
                assert_eq!(dreq.reason, SuspicionReason::NoHelloResponse);
            }
            other => panic!("expected escalation to report, got {other:?}"),
        }
        assert!(fx.verifier.is_reported(battacker));
    }

    fn bauth2(
        fx: &mut Fixture,
        cert: Certificate,
        keys: &Keypair,
        dest: Addr,
    ) -> crate::wire::RouteAuth {
        Sealed::seal(RrepBody(rrep(dest, 400)), cert, None, keys, &mut fx.rng)
    }

    #[test]
    fn reported_suspect_routes_are_held() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let dest = Addr(999);
        let battacker = addr_of(bcert.pseudonym);
        fx.verifier.begin(dest);

        // Drive to a report via two unanswered probes.
        let auth = Sealed::seal(RrepBody(rrep(dest, 200)), bcert, None, &bkeys, &mut fx.rng);
        let _ = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 200),
            Some(&auth),
            Time::ZERO,
        );
        let _ = fx.verifier.tick(Time::from_secs(2));
        fx.verifier.begin(dest);
        let auth201 = auth2(&mut fx, bcert, &bkeys, dest, 201);
        let _ = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 201),
            Some(&auth201),
            Time::from_secs(2),
        );
        let a = fx.verifier.tick(Time::from_secs(4));
        assert!(matches!(&a[..], [VerifierAction::Report(_)]));

        // Any further route via the reported suspect is neither probed nor
        // verified: held until the verdict.
        fx.verifier.begin(dest);
        let auth300 = auth2(&mut fx, bcert, &bkeys, dest, 300);
        let a = fx.verifier.on_route_established(
            dest,
            battacker,
            &rrep(dest, 300),
            Some(&auth300),
            Time::from_secs(5),
        );
        assert!(a.is_empty(), "reported suspects are held, got {a:?}");
    }

    fn auth2(
        fx: &mut Fixture,
        cert: Certificate,
        keys: &Keypair,
        dest: Addr,
        seq: u32,
    ) -> crate::wire::RouteAuth {
        Sealed::seal(RrepBody(rrep(dest, seq)), cert, None, keys, &mut fx.rng)
    }

    #[test]
    fn different_suspects_have_independent_strikes() {
        let mut fx = fixture();
        let (k1, c1) = enroll(&mut fx, 61);
        let (k2, c2) = enroll(&mut fx, 62);
        let dest = Addr(999);
        let s1 = addr_of(c1.pseudonym);
        let s2 = addr_of(c2.pseudonym);

        // Strike 1 against suspect 1.
        fx.verifier.begin(dest);
        let a1auth = Sealed::seal(RrepBody(rrep(dest, 100)), c1, None, &k1, &mut fx.rng);
        let _ =
            fx.verifier
                .on_route_established(dest, s1, &rrep(dest, 100), Some(&a1auth), Time::ZERO);
        let _ = fx.verifier.tick(Time::from_secs(2));

        // Suspect 2 answers the rediscovery: its FIRST unanswered probe
        // must restart, not report (its own strike count is zero).
        let a2auth = Sealed::seal(RrepBody(rrep(dest, 150)), c2, None, &k2, &mut fx.rng);
        let a = fx.verifier.on_route_established(
            dest,
            s2,
            &rrep(dest, 150),
            Some(&a2auth),
            Time::from_secs(2),
        );
        assert!(matches!(&a[..], [VerifierAction::SendProbe(_)]));
        let a = fx.verifier.tick(Time::from_secs(4));
        assert_eq!(
            a,
            vec![VerifierAction::RestartDiscovery { dest }],
            "suspect 2's first strike must not inherit suspect 1's"
        );
    }

    // ------------------------------------------------------------------
    // VerifyQueue: batch-backed verification must be observationally
    // identical to `Sealed::verify`, error precedence included.
    // ------------------------------------------------------------------

    fn enroll_at(
        fx: &mut Fixture,
        long_term: u64,
        issued: Time,
        lifetime: Duration,
    ) -> (Keypair, Certificate) {
        let keys = Keypair::generate(&mut fx.rng);
        let cert = fx
            .ta
            .enroll(LongTermId(long_term), keys.public(), issued, lifetime, &mut fx.rng);
        (keys, cert)
    }

    /// Every interesting envelope shape: valid, corrupt body signature,
    /// corrupt certificate signature, not-yet-valid, expired, and the
    /// precedence pairs (bad cert + bad window, bad window + bad body).
    fn verdict_zoo(fx: &mut Fixture) -> Vec<Sealed<RrepBody>> {
        let mut zoo = Vec::new();
        let life = Duration::from_secs(600);
        // Valid.
        let (k, c) = enroll_at(fx, 100, Time::ZERO, life);
        zoo.push(Sealed::seal(RrepBody(rrep(Addr(9), 1)), c, None, &k, &mut fx.rng));
        // Corrupt body signature.
        let (k, c) = enroll_at(fx, 101, Time::ZERO, life);
        let mut s = Sealed::seal(RrepBody(rrep(Addr(9), 2)), c, Some(ClusterId(1)), &k, &mut fx.rng);
        s.signature.e ^= 1;
        zoo.push(s);
        // Corrupt certificate signature.
        let (k, c) = enroll_at(fx, 102, Time::ZERO, life);
        let mut s = Sealed::seal(RrepBody(rrep(Addr(9), 3)), c, None, &k, &mut fx.rng);
        s.cert.signature.s ^= 1;
        zoo.push(s);
        // Not yet valid at t = 1 s.
        let (k, c) = enroll_at(fx, 103, Time::from_secs(30), life);
        zoo.push(Sealed::seal(RrepBody(rrep(Addr(9), 4)), c, None, &k, &mut fx.rng));
        // Expired at t = 1 s.
        let (k, c) = enroll_at(fx, 104, Time::ZERO, Duration::from_millis(10));
        zoo.push(Sealed::seal(RrepBody(rrep(Addr(9), 5)), c, None, &k, &mut fx.rng));
        // Bad certificate signature on an expired certificate: the
        // signature error must win.
        let (k, c) = enroll_at(fx, 105, Time::ZERO, Duration::from_millis(10));
        let mut s = Sealed::seal(RrepBody(rrep(Addr(9), 6)), c, None, &k, &mut fx.rng);
        s.cert.signature.e ^= 1;
        zoo.push(s);
        // Expired certificate and a bad body signature: the window error
        // must win.
        let (k, c) = enroll_at(fx, 106, Time::ZERO, Duration::from_millis(10));
        let mut s = Sealed::seal(RrepBody(rrep(Addr(9), 7)), c, None, &k, &mut fx.rng);
        s.signature.s ^= 1;
        zoo.push(s);
        zoo
    }

    /// Clears every process- or thread-global verification cache: the
    /// per-thread certificate cache and the global envelope memo. The
    /// fixture is deterministic, so byte-identical envelopes recur across
    /// tests — without this, memo hits from *other tests* would mask the
    /// code paths a test means to exercise.
    fn clean_caches() {
        blackdp_crypto::cert_cache_clear();
        envelope_memo_clear();
    }

    #[test]
    fn queue_verify_one_matches_scalar() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        let mut queue = VerifyQueue::new();
        for sealed in verdict_zoo(&mut fx) {
            let scalar = sealed.verify(fx.ta.public_key(), now);
            clean_caches(); // no cross-talk via the memo cache
            let batched = queue.verify_one(&sealed, fx.ta.public_key(), now);
            assert_eq!(batched, scalar);
            assert!(queue.is_empty(), "verify_one must reset the queue");
            clean_caches();
        }
    }

    #[test]
    fn queue_flush_matches_scalar_for_a_full_batch() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        let zoo = verdict_zoo(&mut fx);
        // Pad with valid envelopes so the flush crosses the batch's lane
        // threshold and takes the shared-exponentiation path.
        let mut envelopes = zoo;
        for i in 0..16 {
            let (k, c) = enroll_at(&mut fx, 200 + i, Time::ZERO, Duration::from_secs(600));
            envelopes.push(Sealed::seal(
                RrepBody(rrep(Addr(9), 100 + i as u32)),
                c,
                Some(ClusterId(2)),
                &k,
                &mut fx.rng,
            ));
        }
        let scalar: Vec<_> = envelopes
            .iter()
            .map(|s| s.verify(fx.ta.public_key(), now))
            .collect();
        clean_caches();
        let mut queue = VerifyQueue::new();
        for (i, sealed) in envelopes.iter().enumerate() {
            assert_eq!(queue.enqueue(sealed, fx.ta.public_key(), now), i);
        }
        assert_eq!(queue.len(), envelopes.len());
        assert_eq!(queue.flush(), &scalar[..]);
        clean_caches();
    }

    #[test]
    fn queue_flush_memoizes_certificate_checks() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        let (k, c) = enroll_at(&mut fx, 300, Time::ZERO, Duration::from_secs(600));
        let first = Sealed::seal(RrepBody(rrep(Addr(9), 1)), c, None, &k, &mut fx.rng);
        let second = Sealed::seal(RrepBody(rrep(Addr(9), 2)), c, None, &k, &mut fx.rng);
        let mut queue = VerifyQueue::new();
        assert!(queue.verify_one(&first, fx.ta.public_key(), now).is_ok());
        let (_, misses_after_first) = blackdp_crypto::cert_cache_stats();
        assert!(queue.verify_one(&second, fx.ta.public_key(), now).is_ok());
        let (hits, misses) = blackdp_crypto::cert_cache_stats();
        assert_eq!(
            misses, misses_after_first,
            "the flush must have stored the certificate verdict"
        );
        assert!(hits >= 1, "the second envelope must reuse the stored verdict");
        // A cached *negative* verdict must also round-trip through the queue.
        let mut bad = Sealed::seal(RrepBody(rrep(Addr(9), 3)), c, None, &k, &mut fx.rng);
        bad.cert.signature.e ^= 1;
        let verdict = queue.verify_one(&bad, fx.ta.public_key(), now);
        assert_eq!(verdict, Err(AuthError::Cert(CertError::BadSignature)));
        let verdict = queue.verify_one(&bad, fx.ta.public_key(), now);
        assert_eq!(verdict, Err(AuthError::Cert(CertError::BadSignature)));
        clean_caches();
    }

    #[test]
    fn duplicate_envelopes_in_one_batch_alias_to_a_single_proof() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        let (k, c) = enroll_at(&mut fx, 310, Time::ZERO, Duration::from_secs(600));
        // One broadcast beacon, eight receivers: the batch must prove the
        // envelope once and alias the other seven jobs to that verdict.
        let sealed = Sealed::seal(RrepBody(rrep(Addr(9), 1)), c, Some(ClusterId(3)), &k, &mut fx.rng);
        let scalar = sealed.verify(fx.ta.public_key(), now);
        clean_caches();
        let mut queue = VerifyQueue::new();
        for i in 0..8 {
            assert_eq!(queue.enqueue(&sealed, fx.ta.public_key(), now), i);
        }
        for verdict in queue.flush() {
            assert_eq!(*verdict, scalar);
        }
        let (hits, misses) = blackdp_crypto::cert_cache_stats();
        assert_eq!(
            (hits, misses),
            (0, 1),
            "only the first copy may consult the certificate cache"
        );
        clean_caches();
    }

    #[test]
    fn memo_replays_verdicts_across_flushes_without_signature_work() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        let (k, c) = enroll_at(&mut fx, 311, Time::ZERO, Duration::from_secs(600));
        let good = Sealed::seal(RrepBody(rrep(Addr(9), 1)), c, None, &k, &mut fx.rng);
        let mut bad = Sealed::seal(RrepBody(rrep(Addr(9), 2)), c, None, &k, &mut fx.rng);
        bad.signature.s ^= 1;
        let mut queue = VerifyQueue::new();
        assert!(queue.verify_one(&good, fx.ta.public_key(), now).is_ok());
        assert_eq!(
            queue.verify_one(&bad, fx.ta.public_key(), now),
            Err(AuthError::BadSignature)
        );
        // Re-verifying both envelopes must not touch the certificate
        // cache at all: the envelope memo already holds both verdicts,
        // including the *negative* body verdict.
        let stats_before = blackdp_crypto::cert_cache_stats();
        assert!(queue.verify_one(&good, fx.ta.public_key(), now).is_ok());
        assert_eq!(
            queue.verify_one(&bad, fx.ta.public_key(), now),
            Err(AuthError::BadSignature)
        );
        assert_eq!(
            blackdp_crypto::cert_cache_stats(),
            stats_before,
            "memo hits must bypass the certificate cache entirely"
        );
        clean_caches();
    }

    #[test]
    fn memo_never_caches_the_validity_window() {
        clean_caches();
        let mut fx = fixture();
        let (k, c) = enroll_at(&mut fx, 312, Time::ZERO, Duration::from_secs(10));
        let sealed = Sealed::seal(RrepBody(rrep(Addr(9), 1)), c, None, &k, &mut fx.rng);
        let mut queue = VerifyQueue::new();
        // Valid inside the window; the memo stores the signature verdict.
        assert!(queue
            .verify_one(&sealed, fx.ta.public_key(), Time::from_secs(1))
            .is_ok());
        // The same envelope after expiry must fail on the window even
        // though the memoized signature verdict says the math is fine.
        assert_eq!(
            queue.verify_one(&sealed, fx.ta.public_key(), Time::from_secs(11)),
            Err(AuthError::Cert(CertError::Expired)),
            "the validity window must be re-evaluated at the caller's now"
        );
        clean_caches();
    }

    #[test]
    fn boundary_auditor_batches_to_width_and_matches_scalar() {
        clean_caches();
        let mut fx = fixture();
        let now = Time::from_secs(1);
        // Zoo (7 mixed verdicts) + 10 valid envelopes = 17 observations:
        // at width 4 that is 4 full flushes and a 1-wide final drain.
        let mut envelopes = verdict_zoo(&mut fx);
        for i in 0..10 {
            let (k, c) = enroll_at(&mut fx, 400 + i, Time::ZERO, Duration::from_secs(600));
            envelopes.push(Sealed::seal(
                RrepBody(rrep(Addr(9), 200 + i as u32)),
                c,
                None,
                &k,
                &mut fx.rng,
            ));
        }
        let scalar: Vec<_> = envelopes
            .iter()
            .map(|s| s.verify(fx.ta.public_key(), now))
            .collect();
        let expected_failures = scalar.iter().filter(|r| r.is_err()).count() as u64;
        clean_caches();
        let mut auditor = BoundaryAuditor::new(fx.ta.public_key(), 4);
        let mut verdicts = Vec::new();
        for sealed in &envelopes {
            if let Some(batch) = auditor.observe(sealed, now) {
                verdicts.extend_from_slice(batch);
            }
        }
        assert_eq!(auditor.pending(), 1, "17 observations at width 4");
        verdicts.extend_from_slice(auditor.flush());
        assert_eq!(auditor.pending(), 0);
        assert_eq!(verdicts, scalar, "audit verdicts must match Sealed::verify");
        let stats = auditor.stats();
        assert_eq!(stats.enqueued, 17);
        assert_eq!(stats.flushes, 5);
        assert_eq!(stats.max_width, 4);
        assert_eq!(stats.failures, expected_failures);
        // Draining an empty auditor is a no-op.
        assert!(auditor.flush().is_empty());
        assert_eq!(auditor.stats().flushes, 5);
        clean_caches();
    }
}
