//! The cluster head's *verification table* (Section III-B, "Suspicious
//! Node Examination").
//!
//! Stores one entry per suspect with every reporter that flagged it. Its
//! two jobs, straight from the paper: *"identify cluster membership"* and
//! *"reduce the number of redundant detection requests for the same
//! suspicious node"* when a congested highway produces many reports.

use std::collections::BTreeMap;

use blackdp_aodv::Addr;
use blackdp_crypto::PseudonymId;
use blackdp_mobility::ClusterId;
use blackdp_sim::Time;

use crate::wire::DetectionOutcome;

/// Lifecycle of a verification-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerStatus {
    /// Detection is queued or running locally.
    Pending,
    /// The request was forwarded to the suspect's own cluster head.
    Forwarded {
        /// Where it went.
        to: ClusterId,
    },
    /// A verdict was reached (locally or relayed back).
    Done {
        /// The verdict.
        outcome: DetectionOutcome,
        /// When it was reached.
        at: Time,
    },
}

/// One suspect's record.
#[derive(Debug, Clone, PartialEq)]
pub struct VerEntry {
    /// The suspect (`v_B`).
    pub suspect: Addr,
    /// The suspect's cluster as reported (`v_B^cy`).
    pub suspect_cluster: Option<ClusterId>,
    /// Every reporter awaiting a verdict, with their clusters (`v_i`,
    /// `v_i^cy`).
    pub reporters: Vec<(PseudonymId, ClusterId)>,
    /// Current status.
    pub status: VerStatus,
    /// Insertion time (used for capacity eviction).
    pub recorded: Time,
}

/// The bounded verification table.
///
/// # Examples
///
/// ```
/// use blackdp::{VerificationTable, VerStatus};
/// use blackdp_aodv::Addr;
/// use blackdp_crypto::PseudonymId;
/// use blackdp_mobility::ClusterId;
/// use blackdp_sim::Time;
///
/// let mut table = VerificationTable::new(16);
/// let fresh = table.record(Addr(9), Some(ClusterId(2)), PseudonymId(1), ClusterId(1), Time::ZERO);
/// assert!(fresh, "first report creates the entry");
/// let dup = table.record(Addr(9), Some(ClusterId(2)), PseudonymId(3), ClusterId(1), Time::ZERO);
/// assert!(!dup, "second report is deduplicated onto the same entry");
/// assert_eq!(table.get(Addr(9)).unwrap().reporters.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VerificationTable {
    entries: BTreeMap<Addr, VerEntry>,
    cap: usize,
}

impl VerificationTable {
    /// Creates a table bounded to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "verification table capacity must be positive");
        VerificationTable {
            entries: BTreeMap::new(),
            cap,
        }
    }

    /// Records a report against `suspect`. Returns `true` when this is a
    /// **new** suspect (detection should start / be forwarded) and `false`
    /// when the report was merged into an existing entry (redundant
    /// request suppressed).
    pub fn record(
        &mut self,
        suspect: Addr,
        suspect_cluster: Option<ClusterId>,
        reporter: PseudonymId,
        reporter_cluster: ClusterId,
        now: Time,
    ) -> bool {
        if let Some(entry) = self.entries.get_mut(&suspect) {
            if !entry.reporters.iter().any(|(p, _)| *p == reporter) {
                entry.reporters.push((reporter, reporter_cluster));
            }
            if entry.suspect_cluster.is_none() {
                entry.suspect_cluster = suspect_cluster;
            }
            return false;
        }
        self.evict_if_full();
        self.entries.insert(
            suspect,
            VerEntry {
                suspect,
                suspect_cluster,
                reporters: vec![(reporter, reporter_cluster)],
                status: VerStatus::Pending,
                recorded: now,
            },
        );
        true
    }

    /// Records an entry that arrived with a pre-built reporter list (a
    /// forwarded request or a handoff). Returns `true` if the suspect was
    /// new.
    pub fn record_bulk(
        &mut self,
        suspect: Addr,
        suspect_cluster: Option<ClusterId>,
        reporters: &[(PseudonymId, ClusterId)],
        now: Time,
    ) -> bool {
        let mut fresh = true;
        if self.entries.contains_key(&suspect) {
            fresh = false;
        } else {
            self.evict_if_full();
            self.entries.insert(
                suspect,
                VerEntry {
                    suspect,
                    suspect_cluster,
                    reporters: Vec::new(),
                    status: VerStatus::Pending,
                    recorded: now,
                },
            );
        }
        let entry = self.entries.get_mut(&suspect).expect("just ensured");
        for &(p, c) in reporters {
            if !entry.reporters.iter().any(|(q, _)| *q == p) {
                entry.reporters.push((p, c));
            }
        }
        fresh
    }

    /// Looks up the entry for `suspect`.
    pub fn get(&self, suspect: Addr) -> Option<&VerEntry> {
        self.entries.get(&suspect)
    }

    /// Updates the status of `suspect`'s entry, if present.
    pub fn set_status(&mut self, suspect: Addr, status: VerStatus) {
        if let Some(e) = self.entries.get_mut(&suspect) {
            e.status = status;
        }
    }

    /// Takes (and clears) the reporter list of `suspect`'s entry.
    pub fn take_reporters(&mut self, suspect: Addr) -> Vec<(PseudonymId, ClusterId)> {
        self.entries
            .get_mut(&suspect)
            .map(|e| std::mem::take(&mut e.reporters))
            .unwrap_or_default()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no suspects are on file.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in suspect order.
    pub fn iter(&self) -> impl Iterator<Item = &VerEntry> {
        self.entries.values()
    }

    /// Evicts the oldest **resolved** entry when at capacity (resolved
    /// entries exist only for dedup; pending ones must survive). Falls back
    /// to the oldest entry of any kind if everything is pending.
    fn evict_if_full(&mut self) {
        if self.entries.len() < self.cap {
            return;
        }
        let victim = self
            .entries
            .values()
            .filter(|e| matches!(e.status, VerStatus::Done { .. }))
            .min_by_key(|e| e.recorded)
            .or_else(|| self.entries.values().min_by_key(|e| e.recorded))
            .map(|e| e.suspect);
        if let Some(v) = victim {
            self.entries.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VerificationTable {
        VerificationTable::new(4)
    }

    #[test]
    fn dedup_merges_reporters() {
        let mut t = table();
        assert!(t.record(Addr(9), None, PseudonymId(1), ClusterId(1), Time::ZERO));
        assert!(!t.record(Addr(9), None, PseudonymId(2), ClusterId(3), Time::ZERO));
        assert!(!t.record(Addr(9), None, PseudonymId(1), ClusterId(1), Time::ZERO));
        let e = t.get(Addr(9)).unwrap();
        assert_eq!(e.reporters.len(), 2, "duplicate reporter not re-added");
    }

    #[test]
    fn late_cluster_information_fills_in() {
        let mut t = table();
        t.record(Addr(9), None, PseudonymId(1), ClusterId(1), Time::ZERO);
        t.record(
            Addr(9),
            Some(ClusterId(5)),
            PseudonymId(2),
            ClusterId(1),
            Time::ZERO,
        );
        assert_eq!(t.get(Addr(9)).unwrap().suspect_cluster, Some(ClusterId(5)));
    }

    #[test]
    fn capacity_evicts_resolved_first() {
        let mut t = table();
        for i in 0..4u64 {
            t.record(
                Addr(i),
                None,
                PseudonymId(100 + i),
                ClusterId(1),
                Time::from_secs(i),
            );
        }
        // Resolve the newest one; it should still be evicted before any
        // pending entry.
        t.set_status(
            Addr(3),
            VerStatus::Done {
                outcome: DetectionOutcome::Unconfirmed,
                at: Time::from_secs(10),
            },
        );
        t.record(
            Addr(99),
            None,
            PseudonymId(7),
            ClusterId(1),
            Time::from_secs(20),
        );
        assert_eq!(t.len(), 4);
        assert!(t.get(Addr(3)).is_none(), "resolved entry evicted");
        assert!(t.get(Addr(0)).is_some(), "pending entries survive");
    }

    #[test]
    fn capacity_falls_back_to_oldest_pending() {
        let mut t = table();
        for i in 0..4u64 {
            t.record(
                Addr(i),
                None,
                PseudonymId(100 + i),
                ClusterId(1),
                Time::from_secs(i),
            );
        }
        t.record(
            Addr(99),
            None,
            PseudonymId(7),
            ClusterId(1),
            Time::from_secs(20),
        );
        assert_eq!(t.len(), 4);
        assert!(
            t.get(Addr(0)).is_none(),
            "oldest pending evicted as last resort"
        );
    }

    #[test]
    fn record_bulk_merges_and_reports_freshness() {
        let mut t = table();
        let reporters = vec![
            (PseudonymId(1), ClusterId(1)),
            (PseudonymId(2), ClusterId(2)),
        ];
        assert!(t.record_bulk(Addr(9), Some(ClusterId(3)), &reporters, Time::ZERO));
        assert!(!t.record_bulk(Addr(9), None, &[(PseudonymId(3), ClusterId(1))], Time::ZERO));
        assert_eq!(t.get(Addr(9)).unwrap().reporters.len(), 3);
    }

    #[test]
    fn take_reporters_clears_list() {
        let mut t = table();
        t.record(Addr(9), None, PseudonymId(1), ClusterId(1), Time::ZERO);
        let reporters = t.take_reporters(Addr(9));
        assert_eq!(reporters.len(), 1);
        assert!(t.get(Addr(9)).unwrap().reporters.is_empty());
        assert!(t.take_reporters(Addr(404)).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = VerificationTable::new(0);
    }
}
