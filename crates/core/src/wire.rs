//! BlackDP wire messages and the combined on-air packet type.
//!
//! Everything a node can transmit in the full simulation is a [`Wire`]:
//! plain AODV traffic, AODV traffic with a BlackDP authentication envelope
//! attached (the paper's "secure packets"), or a BlackDP control message.

use std::fmt;

use blackdp_aodv::{Addr, Rrep, SeqNo};
use blackdp_crypto::{
    CertError, Certificate, Keypair, PseudonymId, PublicKey, RevocationNotice, Signature, TaId,
};
use blackdp_mobility::ClusterId;
use blackdp_sim::Time;

/// Converts a pseudonymous identification into the AODV address it routes
/// under.
pub fn addr_of(pseudonym: PseudonymId) -> Addr {
    Addr(pseudonym.0)
}

/// A type with a canonical byte encoding covered by signatures.
pub trait SignBytes {
    /// Appends the canonical byte encoding of `self` to `out` — the
    /// allocation-free form the batch-verification path uses with a
    /// retained scratch buffer.
    fn write_sign_bytes(&self, out: &mut Vec<u8>);

    /// Produces the canonical byte encoding of `self`.
    fn sign_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44);
        self.write_sign_bytes(&mut out);
        out
    }
}

/// Why an authentication envelope failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The attached certificate failed validation.
    Cert(CertError),
    /// The body signature does not verify under the certificate's key.
    BadSignature,
    /// The certificate's pseudonym is on the revocation blacklist.
    Revoked,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Cert(e) => write!(f, "certificate invalid: {e}"),
            AuthError::BadSignature => write!(f, "body signature does not verify"),
            AuthError::Revoked => write!(f, "sender's certificate is revoked"),
        }
    }
}

impl std::error::Error for AuthError {}

impl From<CertError> for AuthError {
    fn from(e: CertError) -> Self {
        AuthError::Cert(e)
    }
}

/// A signed, certificate-carrying envelope around a message body — the
/// paper's "secure packet": the body, the sender's certificate (public key,
/// pseudonym, expiry), and a signature over a one-way hash of the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Sealed<T> {
    /// The authenticated body.
    pub body: T,
    /// The signer's certificate.
    pub cert: Certificate,
    /// The signer's cluster, when registered (lets receivers route replies
    /// and detection requests to the right cluster head).
    pub cluster: Option<ClusterId>,
    /// Signature over `body.sign_bytes()` plus the cluster tag.
    pub signature: Signature,
}

impl<T: SignBytes> Sealed<T> {
    /// Signs `body` with `keys`, attaching `cert` and the sender's cluster.
    pub fn seal<R: rand::Rng + ?Sized>(
        body: T,
        cert: Certificate,
        cluster: Option<ClusterId>,
        keys: &Keypair,
        rng: &mut R,
    ) -> Self {
        let bytes = Self::full_bytes(&body, cluster);
        let signature = keys.sign(&bytes, rng);
        Sealed {
            body,
            cert,
            cluster,
            signature,
        }
    }

    /// Verifies certificate and signature at time `now` under the TA root
    /// key.
    ///
    /// # Errors
    ///
    /// Returns the first failing check: certificate validity, then body
    /// signature.
    pub fn verify(&self, ta_key: PublicKey, now: Time) -> Result<(), AuthError> {
        self.cert.verify(ta_key, now)?;
        let bytes = Self::full_bytes(&self.body, self.cluster);
        if !self.cert.public_key.verify(&bytes, &self.signature) {
            return Err(AuthError::BadSignature);
        }
        Ok(())
    }

    /// The signer's pseudonymous identification.
    pub fn signer(&self) -> PseudonymId {
        self.cert.pseudonym
    }

    fn full_bytes(body: &T, cluster: Option<ClusterId>) -> Vec<u8> {
        let mut bytes = body.sign_bytes();
        Self::append_cluster_tag(&mut bytes, cluster);
        bytes
    }

    /// Appends the signed byte encoding (body plus cluster tag) to `out`
    /// without allocating.
    pub fn full_bytes_into(&self, out: &mut Vec<u8>) {
        self.body.write_sign_bytes(out);
        Self::append_cluster_tag(out, self.cluster);
    }

    fn append_cluster_tag(bytes: &mut Vec<u8>, cluster: Option<ClusterId>) {
        match cluster {
            Some(c) => {
                bytes.push(1);
                bytes.extend_from_slice(&c.0.to_be_bytes());
            }
            None => bytes.push(0),
        }
    }
}

/// The immutable-field encoding of an RREP for signing.
///
/// `hop_count` is deliberately excluded: it is incremented at every
/// forwarding hop (like the mutable fields HMAC-based schemes such as
/// Sachan et al. exclude). Everything the freshness decision depends on —
/// destination, sequence number, originator, lifetime, and any disclosed
/// next hop — is covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrepBody(pub Rrep);

impl SignBytes for RrepBody {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        let r = &self.0;
        out.extend_from_slice(b"RREP");
        out.extend_from_slice(&r.dest.0.to_be_bytes());
        out.extend_from_slice(&r.dest_seq.to_be_bytes());
        out.extend_from_slice(&r.orig.0.to_be_bytes());
        out.extend_from_slice(&r.lifetime.as_micros().to_be_bytes());
        match r.next_hop {
            Some(nh) => {
                out.push(1);
                out.extend_from_slice(&nh.0.to_be_bytes());
            }
            None => out.push(0),
        }
    }
}

/// An end-to-end secure Hello probe (Section III-B: the originator sends a
/// secure Hello "to Node v_d through the intermediate node to verify the
/// route existence").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloProbe {
    /// Prober-assigned id matching replies to probes.
    pub probe_id: u64,
    /// The probing originator.
    pub src: Addr,
    /// The destination being verified.
    pub dest: Addr,
    /// Remaining hops.
    pub ttl: u8,
}

impl SignBytes for HelloProbe {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"HPRB");
        out.extend_from_slice(&self.probe_id.to_be_bytes());
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dest.0.to_be_bytes());
        out.push(0); // ttl excluded (mutable)
    }
}

/// The destination's authenticated answer to a [`HelloProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloReply {
    /// The probe being answered.
    pub probe_id: u64,
    /// The answering destination.
    pub src: Addr,
    /// The original prober.
    pub dest: Addr,
    /// Remaining hops.
    pub ttl: u8,
}

impl SignBytes for HelloReply {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"HRPL");
        out.extend_from_slice(&self.probe_id.to_be_bytes());
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dest.0.to_be_bytes());
        out.push(0);
    }
}

/// What made the reporter suspicious (drives the paper's two reporting
/// paths: timeout after redo, or an anonymous/fake Hello reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspicionReason {
    /// Two discovery rounds each produced a route whose Hello probe went
    /// unanswered.
    NoHelloResponse,
    /// A Hello reply arrived that fails authentication or names the wrong
    /// destination.
    FakeHelloReply,
    /// The RREP's authentication envelope failed verification.
    AuthViolation,
}

impl SignBytes for DReq {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"DREQ");
        out.extend_from_slice(&self.reporter.0.to_be_bytes());
        out.extend_from_slice(&self.reporter_cluster.0.to_be_bytes());
        out.extend_from_slice(&self.suspect.0.to_be_bytes());
        match self.suspect_cluster {
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.0.to_be_bytes());
            }
            None => out.push(0),
        }
        out.push(match self.reason {
            SuspicionReason::NoHelloResponse => 0,
            SuspicionReason::FakeHelloReply => 1,
            SuspicionReason::AuthViolation => 2,
        });
    }
}

/// A detection request `d_req = ⟨v_i, v_i^cy, v_B, v_B^cy⟩`
/// (Section III-B): reporter, reporter's cluster, suspect, suspect's
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DReq {
    /// The reporting legitimate node (`v_i`).
    pub reporter: PseudonymId,
    /// The reporter's cluster (`v_i^cy`).
    pub reporter_cluster: ClusterId,
    /// The suspicious node's address (`v_B`).
    pub suspect: Addr,
    /// The suspect's cluster (`v_B^cy`), when the reporter learned it from
    /// the secure RREP.
    pub suspect_cluster: Option<ClusterId>,
    /// What triggered the report.
    pub reason: SuspicionReason,
}

/// The verdict of a detection episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// The suspect answered both fake-destination probes: single black hole
    /// confirmed and isolated.
    ConfirmedSingle,
    /// The suspect disclosed a teammate that endorsed the fake route:
    /// cooperative black hole confirmed, both isolated.
    ConfirmedCooperative {
        /// The endorsing teammate's address.
        teammate: Addr,
    },
    /// The suspect never answered the probes: no violation observable (the
    /// attack was prevented but the attacker was not caught).
    Unconfirmed,
    /// The suspect left the network before the probes completed.
    SuspectGone,
}

/// A cluster head's answer to the reporter(s), relayed via their CH.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionResponse {
    /// The suspect the verdict concerns.
    pub suspect: Addr,
    /// The verdict.
    pub outcome: DetectionOutcome,
    /// The reporter this response is for.
    pub reporter: PseudonymId,
}

/// Mid-detection state transferred when the suspect moves to the next
/// cluster (the 8/9-packet scenarios of Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionHandoff {
    /// The suspect under examination.
    pub suspect: Addr,
    /// Sequence number from `RREP₁`, if the first probe already completed.
    pub rrep1_seq: Option<SeqNo>,
    /// Reporters awaiting the verdict, with their clusters.
    pub reporters: Vec<(PseudonymId, ClusterId)>,
    /// Detection packets already spent by the previous cluster head.
    pub packets_so_far: u32,
}

/// Vehicle-to-CH cluster membership management (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinBody {
    /// Longitudinal position (m) at join time.
    pub pos_x: f64,
    /// Lateral position (m) at join time.
    pub pos_y: f64,
    /// Cruise speed (km/h).
    pub speed_kmh: f64,
    /// True if travelling toward increasing `x`.
    pub forward: bool,
}

impl SignBytes for JoinBody {
    fn write_sign_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"JREQ");
        out.extend_from_slice(&self.pos_x.to_be_bytes());
        out.extend_from_slice(&self.pos_y.to_be_bytes());
        out.extend_from_slice(&self.speed_kmh.to_be_bytes());
        out.push(self.forward as u8);
    }
}

/// BlackDP control-plane messages.
#[derive(Debug, Clone, PartialEq)]
pub enum BlackDpMessage {
    /// Vehicle → CH: join request (broadcast in overlapped zones).
    Jreq(Sealed<JoinBody>),
    /// CH → vehicle: join accepted; carries the CH identity and the current
    /// blacklist so newly joined vehicles learn recent revocations.
    Jrep {
        /// The cluster joined.
        cluster: ClusterId,
        /// The cluster head's protocol address.
        ch_addr: Addr,
        /// The CH's membership epoch: redrawn on every restart, so a
        /// member holding a stale epoch knows its registration was lost.
        epoch: u64,
        /// Active revocation notices for the newcomer's blacklist.
        blacklist: Vec<RevocationNotice>,
    },
    /// Vehicle → CH: leaving the cluster.
    Leave {
        /// The departing vehicle.
        vehicle: PseudonymId,
    },
    /// Originator → destination: end-to-end route-verification probe,
    /// forwarded hop-by-hop along the AODV route.
    HelloProbe(Sealed<HelloProbe>),
    /// Destination → originator: authenticated probe answer.
    HelloReply(Sealed<HelloReply>),
    /// Vehicle → CH (or CH → CH when forwarded): detection request.
    DetectionRequest(Sealed<DReq>),
    /// CH → CH: forwarded detection request (already authenticated by the
    /// first CH; RSUs trust each other over the wired backbone).
    ForwardedDetection {
        /// The original detection request.
        dreq: DReq,
        /// Detection packets already spent before the forward (the forward
        /// itself included), so Figure 5 accounting survives the handoff.
        packets_so_far: u32,
    },
    /// CH → CH: detection state handoff after suspect mobility.
    Handoff(DetectionHandoff),
    /// CH → reporter's CH → reporter: verdict.
    Response(DetectionResponse),
    /// CH → TA: certificate revocation request reporting misbehaviour.
    RevocationRequest {
        /// The confirmed attacker.
        suspect: PseudonymId,
        /// The requesting cluster head's cluster.
        reporting_cluster: ClusterId,
    },
    /// TA → CH: revocation notice to store and distribute.
    Revoked(RevocationNotice),
    /// TA → TA: pause certificate renewals for an owner (long-term id is
    /// TA-private, carried only on the wired authority backbone).
    PauseRenewal {
        /// The misbehaving vehicle's long-term identity.
        owner: blackdp_crypto::LongTermId,
    },
    /// CH → members: blacklist advisory (current revocation notices).
    BlacklistAdvisory {
        /// The notices to merge into the member's blacklist.
        notices: Vec<RevocationNotice>,
    },
    /// Vehicle → CH → TA: pseudonym renewal request.
    RenewRequest {
        /// The current pseudonym.
        current: PseudonymId,
        /// The issuing authority (so the relay reaches the right TA).
        issuer: TaId,
        /// The fresh public key to certify.
        new_key: PublicKey,
        /// The cluster whose CH relays the reply back to the vehicle.
        reply_cluster: ClusterId,
    },
    /// TA → CH → vehicle: renewal verdict.
    RenewReply {
        /// The pseudonym the request was made under.
        current: PseudonymId,
        /// The new certificate, or `None` when renewal is paused.
        cert: Option<Certificate>,
    },
    /// CH → members (broadcast): the CH rebooted and rebuilt an empty
    /// member table. Members of `cluster` holding a different epoch must
    /// re-register with a fresh JREQ.
    Resync {
        /// The restarted cluster head's cluster.
        cluster: ClusterId,
        /// The restarted cluster head's protocol address.
        ch_addr: Addr,
        /// The post-restart membership epoch.
        epoch: u64,
    },
}

impl BlackDpMessage {
    /// A short kind tag for statistics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            BlackDpMessage::Jreq(_) => "jreq",
            BlackDpMessage::Jrep { .. } => "jrep",
            BlackDpMessage::Leave { .. } => "leave",
            BlackDpMessage::HelloProbe(_) => "hello_probe",
            BlackDpMessage::HelloReply(_) => "hello_reply",
            BlackDpMessage::DetectionRequest(_) => "dreq",
            BlackDpMessage::ForwardedDetection { .. } => "dreq_fwd",
            BlackDpMessage::Handoff(_) => "handoff",
            BlackDpMessage::Response(_) => "dresp",
            BlackDpMessage::RevocationRequest { .. } => "revoke_req",
            BlackDpMessage::Revoked(_) => "revoked",
            BlackDpMessage::PauseRenewal { .. } => "pause",
            BlackDpMessage::BlacklistAdvisory { .. } => "blacklist",
            BlackDpMessage::RenewRequest { .. } => "renew_req",
            BlackDpMessage::RenewReply { .. } => "renew_reply",
            BlackDpMessage::Resync { .. } => "resync",
        }
    }
}

/// An authentication envelope accompanying an AODV RREP end-to-end (the
/// paper's secure RREP: `{RREP, CR, d_sign(RREP, K⁻)}`).
pub type RouteAuth = Sealed<RrepBody>;

/// Everything that can travel over the air or the wired backbone in one
/// simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// Plain AODV traffic.
    Aodv(blackdp_aodv::Message),
    /// An RREP carrying its authentication envelope. The envelope signs the
    /// immutable fields only, so forwarders update `hop_count` without
    /// breaking it.
    SecuredRrep {
        /// The route reply (mutable hop count included).
        rrep: Rrep,
        /// The replier's envelope.
        auth: RouteAuth,
    },
    /// BlackDP control traffic.
    BlackDp(BlackDpMessage),
}

/// Generates `tx_key`/`btx_key`/`vrx_key`: pre-concatenated statistics
/// keys for every wire kind, so per-frame counting needs no `format!`.
macro_rules! wire_stat_keys {
    ($($kind:literal),+ $(,)?) => {
        /// The `tx.<kind>` statistics key for this wire.
        pub fn tx_key(&self) -> &'static str {
            match self.kind() {
                $($kind => concat!("tx.", $kind),)+
                other => unreachable!("unmapped wire kind {other}"),
            }
        }

        /// The `btx.<kind>` statistics key for this wire.
        pub fn btx_key(&self) -> &'static str {
            match self.kind() {
                $($kind => concat!("btx.", $kind),)+
                other => unreachable!("unmapped wire kind {other}"),
            }
        }

        /// The `vrx.<kind>` statistics key for this wire.
        pub fn vrx_key(&self) -> &'static str {
            match self.kind() {
                $($kind => concat!("vrx.", $kind),)+
                other => unreachable!("unmapped wire kind {other}"),
            }
        }
    };
}

impl Wire {
    /// A short kind tag for statistics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            Wire::Aodv(m) => m.kind(),
            Wire::SecuredRrep { .. } => "secured_rrep",
            Wire::BlackDp(m) => m.kind(),
        }
    }

    wire_stat_keys!(
        "rreq",
        "rrep",
        "rerr",
        "hello",
        "data",
        "secured_rrep",
        "jreq",
        "jrep",
        "leave",
        "hello_probe",
        "hello_reply",
        "dreq",
        "dreq_fwd",
        "handoff",
        "dresp",
        "revoke_req",
        "revoked",
        "pause",
        "blacklist",
        "renew_req",
        "renew_reply",
        "resync",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_crypto::{LongTermId, TrustedAuthority};
    use blackdp_sim::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, TrustedAuthority, Keypair, Certificate) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        (rng, ta, keys, cert)
    }

    fn sample_rrep() -> Rrep {
        Rrep {
            dest: Addr(7),
            dest_seq: 75,
            orig: Addr(1),
            hop_count: 3,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        }
    }

    #[test]
    fn sealed_rrep_round_trip() {
        let (mut rng, ta, keys, cert) = setup();
        let sealed = Sealed::seal(
            RrepBody(sample_rrep()),
            cert,
            Some(ClusterId(2)),
            &keys,
            &mut rng,
        );
        assert_eq!(sealed.verify(ta.public_key(), Time::from_secs(1)), Ok(()));
        assert_eq!(sealed.signer(), cert.pseudonym);
    }

    #[test]
    fn hop_count_is_mutable_without_breaking_auth() {
        let (mut rng, ta, keys, cert) = setup();
        let sealed = Sealed::seal(RrepBody(sample_rrep()), cert, None, &keys, &mut rng);
        // A forwarder increments the hop count; the envelope still verifies
        // against the mutated RREP because hop_count is excluded.
        let forwarded = Rrep {
            hop_count: 4,
            ..sample_rrep()
        };
        let reassembled = Sealed {
            body: RrepBody(forwarded),
            ..sealed
        };
        assert_eq!(
            reassembled.verify(ta.public_key(), Time::from_secs(1)),
            Ok(())
        );
    }

    #[test]
    fn tampered_sequence_number_breaks_auth() {
        let (mut rng, ta, keys, cert) = setup();
        let sealed = Sealed::seal(RrepBody(sample_rrep()), cert, None, &keys, &mut rng);
        let tampered = Rrep {
            dest_seq: 200,
            ..sample_rrep()
        };
        let forged = Sealed {
            body: RrepBody(tampered),
            ..sealed
        };
        assert_eq!(
            forged.verify(ta.public_key(), Time::from_secs(1)),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn tampered_cluster_tag_breaks_auth() {
        let (mut rng, ta, keys, cert) = setup();
        let sealed = Sealed::seal(
            RrepBody(sample_rrep()),
            cert,
            Some(ClusterId(2)),
            &keys,
            &mut rng,
        );
        let mut forged = sealed.clone();
        forged.cluster = Some(ClusterId(3));
        assert_eq!(
            forged.verify(ta.public_key(), Time::from_secs(1)),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn expired_certificate_fails_env() {
        let (mut rng, ta, keys, cert) = setup();
        let sealed = Sealed::seal(RrepBody(sample_rrep()), cert, None, &keys, &mut rng);
        assert_eq!(
            sealed.verify(ta.public_key(), Time::from_secs(601)),
            Err(AuthError::Cert(CertError::Expired))
        );
    }

    #[test]
    fn wrong_keypair_fails_env() {
        let (mut rng, ta, _keys, cert) = setup();
        let mallory = Keypair::generate(&mut rng);
        // Mallory signs but presents someone else's certificate.
        let sealed = Sealed::seal(RrepBody(sample_rrep()), cert, None, &mallory, &mut rng);
        assert_eq!(
            sealed.verify(ta.public_key(), Time::from_secs(1)),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn probe_sign_bytes_distinguish_fields() {
        let p1 = HelloProbe {
            probe_id: 1,
            src: Addr(1),
            dest: Addr(2),
            ttl: 9,
        };
        let p2 = HelloProbe { probe_id: 2, ..p1 };
        let p3 = HelloProbe {
            dest: Addr(3),
            ..p1
        };
        assert_ne!(p1.sign_bytes(), p2.sign_bytes());
        assert_ne!(p1.sign_bytes(), p3.sign_bytes());
        // TTL is mutable and excluded.
        let p4 = HelloProbe { ttl: 0, ..p1 };
        assert_eq!(p1.sign_bytes(), p4.sign_bytes());
    }

    #[test]
    fn reply_and_probe_domains_are_separated() {
        let probe = HelloProbe {
            probe_id: 1,
            src: Addr(1),
            dest: Addr(2),
            ttl: 9,
        };
        let reply = HelloReply {
            probe_id: 1,
            src: Addr(1),
            dest: Addr(2),
            ttl: 9,
        };
        assert_ne!(
            probe.sign_bytes(),
            reply.sign_bytes(),
            "a probe signature must not be replayable as a reply"
        );
    }

    #[test]
    fn addr_of_maps_pseudonym() {
        assert_eq!(addr_of(PseudonymId(42)), Addr(42));
    }

    #[test]
    fn wire_kind_tags() {
        let w = Wire::BlackDp(BlackDpMessage::Leave {
            vehicle: PseudonymId(1),
        });
        assert_eq!(w.kind(), "leave");
        let w = Wire::Aodv(blackdp_aodv::Message::Hello(blackdp_aodv::Hello {
            orig: Addr(1),
            seq: 0,
        }));
        assert_eq!(w.kind(), "hello");
    }
}
