//! The trusted-authority node logic: revocation handling, cross-TA pause
//! propagation, and pseudonym renewal (Section III-B.2).

use blackdp_crypto::{PseudonymId, TaId, TrustedAuthority};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::wire::BlackDpMessage;

/// An instruction for the host embedding an [`AuthorityNode`].
#[derive(Debug, Clone, PartialEq)]
pub enum TaAction {
    /// Send to a cluster head over the wired backbone.
    WiredCh {
        /// The destination cluster.
        cluster: ClusterId,
        /// The message.
        msg: BlackDpMessage,
    },
    /// Send to a peer authority over the wired backbone.
    WiredTa {
        /// The destination authority.
        ta: TaId,
        /// The message.
        msg: BlackDpMessage,
    },
    /// An observable event.
    Event(TaEvent),
}

/// Observable authority events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaEvent {
    /// A certificate was revoked here.
    CertificateRevoked(PseudonymId),
    /// A renewal was refused because the owner is paused.
    RenewalRefused(PseudonymId),
    /// A renewal succeeded under a fresh pseudonym.
    RenewalGranted {
        /// The pseudonym the request was made under.
        old: PseudonymId,
        /// The freshly issued pseudonym.
        new: PseudonymId,
    },
}

/// A trusted-authority node: wraps the key-handling
/// [`TrustedAuthority`] with the paper's message flows.
#[derive(Debug)]
pub struct AuthorityNode {
    ta: TrustedAuthority,
    /// Cluster heads this authority is responsible for.
    clusters: Vec<ClusterId>,
    /// Peer authorities (for pause propagation).
    peers: Vec<TaId>,
    cert_validity: Duration,
    rng: StdRng,
}

impl AuthorityNode {
    /// Creates the node around an existing authority.
    pub fn new(
        ta: TrustedAuthority,
        clusters: Vec<ClusterId>,
        peers: Vec<TaId>,
        cert_validity: Duration,
        seed: u64,
    ) -> Self {
        AuthorityNode {
            ta,
            clusters,
            peers,
            cert_validity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// This authority's id.
    pub fn id(&self) -> TaId {
        self.ta.id()
    }

    /// The wrapped authority (for enrollment during scenario setup).
    pub fn authority_mut(&mut self) -> &mut TrustedAuthority {
        &mut self.ta
    }

    /// Read access to the wrapped authority.
    pub fn authority(&self) -> &TrustedAuthority {
        &self.ta
    }

    /// Processes a message from a CH (or a peer TA when `from_peer` is
    /// true; peer-forwarded revocation requests are not re-forwarded,
    /// preventing loops).
    pub fn handle(&mut self, msg: BlackDpMessage, from_peer: bool, now: Time) -> Vec<TaAction> {
        match msg {
            BlackDpMessage::RevocationRequest {
                suspect,
                reporting_cluster,
            } => self.handle_revocation(suspect, reporting_cluster, from_peer),
            BlackDpMessage::PauseRenewal { owner } => {
                self.ta.pause_renewals(owner);
                Vec::new()
            }
            BlackDpMessage::Revoked(notice) => {
                if from_peer {
                    // Relay a peer's revocation notice to our own CHs.
                    self.clusters
                        .iter()
                        .map(|&cluster| TaAction::WiredCh {
                            cluster,
                            msg: BlackDpMessage::Revoked(notice),
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            }
            BlackDpMessage::RenewRequest {
                current,
                issuer,
                new_key,
                reply_cluster,
            } => {
                if issuer != self.ta.id() {
                    // Not ours: relay to the issuing authority.
                    return vec![TaAction::WiredTa {
                        ta: issuer,
                        msg: BlackDpMessage::RenewRequest {
                            current,
                            issuer,
                            new_key,
                            reply_cluster,
                        },
                    }];
                }
                match self
                    .ta
                    .renew(current, new_key, now, self.cert_validity, &mut self.rng)
                {
                    Ok(cert) => vec![
                        TaAction::Event(TaEvent::RenewalGranted {
                            old: current,
                            new: cert.pseudonym,
                        }),
                        TaAction::WiredCh {
                            cluster: reply_cluster,
                            msg: BlackDpMessage::RenewReply {
                                current,
                                cert: Some(cert),
                            },
                        },
                    ],
                    Err(_) => vec![
                        TaAction::Event(TaEvent::RenewalRefused(current)),
                        TaAction::WiredCh {
                            cluster: reply_cluster,
                            msg: BlackDpMessage::RenewReply {
                                current,
                                cert: None,
                            },
                        },
                    ],
                }
            }
            // Everything else is not authority business.
            _ => Vec::new(),
        }
    }

    fn handle_revocation(
        &mut self,
        suspect: PseudonymId,
        reporting_cluster: ClusterId,
        from_peer: bool,
    ) -> Vec<TaAction> {
        match self.ta.revoke(suspect) {
            Ok(revocation) => {
                let mut actions = vec![TaAction::Event(TaEvent::CertificateRevoked(suspect))];
                // Notice to every CH in our region.
                for &cluster in &self.clusters {
                    actions.push(TaAction::WiredCh {
                        cluster,
                        msg: BlackDpMessage::Revoked(revocation.notice),
                    });
                }
                // Peers: pause the owner and spread the notice to their
                // regions.
                for &peer in &self.peers {
                    actions.push(TaAction::WiredTa {
                        ta: peer,
                        msg: BlackDpMessage::PauseRenewal {
                            owner: revocation.owner,
                        },
                    });
                    actions.push(TaAction::WiredTa {
                        ta: peer,
                        msg: BlackDpMessage::Revoked(revocation.notice),
                    });
                }
                actions
            }
            Err(_) if !from_peer => {
                // We never issued this pseudonym — another authority did.
                self.peers
                    .iter()
                    .map(|&peer| TaAction::WiredTa {
                        ta: peer,
                        msg: BlackDpMessage::RevocationRequest {
                            suspect,
                            reporting_cluster,
                        },
                    })
                    .collect()
            }
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_crypto::{Keypair, LongTermId};

    fn node(id: u32, clusters: Vec<u32>, peers: Vec<u32>, seed: u64) -> AuthorityNode {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = TrustedAuthority::new(TaId(id), &mut rng);
        AuthorityNode::new(
            ta,
            clusters.into_iter().map(ClusterId).collect(),
            peers.into_iter().map(TaId).collect(),
            Duration::from_secs(600),
            seed,
        )
    }

    #[test]
    fn revocation_notifies_chs_and_peers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut node = node(1, vec![1, 2], vec![2], 1);
        let keys = Keypair::generate(&mut rng);
        let cert = node.authority_mut().enroll(
            LongTermId(9),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        let actions = node.handle(
            BlackDpMessage::RevocationRequest {
                suspect: cert.pseudonym,
                reporting_cluster: ClusterId(2),
            },
            false,
            Time::ZERO,
        );
        let ch_notices = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    TaAction::WiredCh {
                        msg: BlackDpMessage::Revoked(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(ch_notices, 2, "both supervised CHs notified");
        assert!(actions.iter().any(|a| matches!(
            a,
            TaAction::WiredTa {
                ta: TaId(2),
                msg: BlackDpMessage::PauseRenewal { .. }
            }
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, TaAction::Event(TaEvent::CertificateRevoked(_)))));
        // Renewal is now refused.
        let actions = node.handle(
            BlackDpMessage::RenewRequest {
                current: cert.pseudonym,
                issuer: TaId(1),
                new_key: keys.public(),
                reply_cluster: ClusterId(1),
            },
            false,
            Time::from_secs(1),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            TaAction::WiredCh {
                msg: BlackDpMessage::RenewReply { cert: None, .. },
                ..
            }
        )));
    }

    #[test]
    fn unknown_pseudonym_forwards_to_peers_once() {
        let mut node1 = node(1, vec![1], vec![2], 1);
        let actions = node1.handle(
            BlackDpMessage::RevocationRequest {
                suspect: PseudonymId(424242),
                reporting_cluster: ClusterId(1),
            },
            false,
            Time::ZERO,
        );
        assert!(matches!(
            &actions[..],
            [TaAction::WiredTa {
                ta: TaId(2),
                msg: BlackDpMessage::RevocationRequest { .. }
            }]
        ));
        // A peer-forwarded unknown request dies quietly (no loops).
        let actions = node1.handle(
            BlackDpMessage::RevocationRequest {
                suspect: PseudonymId(424242),
                reporting_cluster: ClusterId(1),
            },
            true,
            Time::ZERO,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn renewal_roundtrip_and_cross_ta_relay() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut issuer = node(1, vec![1], vec![2], 2);
        let mut other = node(2, vec![2], vec![1], 3);
        let keys = Keypair::generate(&mut rng);
        let cert = issuer.authority_mut().enroll(
            LongTermId(5),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        // Request reaches the wrong TA first: it relays.
        let relay = other.handle(
            BlackDpMessage::RenewRequest {
                current: cert.pseudonym,
                issuer: TaId(1),
                new_key: keys.public(),
                reply_cluster: ClusterId(2),
            },
            false,
            Time::ZERO,
        );
        let forwarded = match &relay[..] {
            [TaAction::WiredTa { ta: TaId(1), msg }] => msg.clone(),
            other => panic!("expected a relay, got {other:?}"),
        };
        let actions = issuer.handle(forwarded, true, Time::from_secs(1));
        let new_cert = actions
            .iter()
            .find_map(|a| match a {
                TaAction::WiredCh {
                    cluster,
                    msg: BlackDpMessage::RenewReply { cert: Some(c), .. },
                } => {
                    assert_eq!(*cluster, ClusterId(2), "reply routed to the requesting CH");
                    Some(*c)
                }
                _ => None,
            })
            .expect("renewal granted");
        assert_ne!(new_cert.pseudonym, cert.pseudonym);
    }

    #[test]
    fn peer_pause_blocks_local_renewal() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut node1 = node(1, vec![1], vec![2], 4);
        let keys = Keypair::generate(&mut rng);
        let cert = node1.authority_mut().enroll(
            LongTermId(7),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        node1.handle(
            BlackDpMessage::PauseRenewal {
                owner: LongTermId(7),
            },
            true,
            Time::ZERO,
        );
        let actions = node1.handle(
            BlackDpMessage::RenewRequest {
                current: cert.pseudonym,
                issuer: TaId(1),
                new_key: keys.public(),
                reply_cluster: ClusterId(1),
            },
            false,
            Time::from_secs(1),
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, TaAction::Event(TaEvent::RenewalRefused(_)))));
    }

    #[test]
    fn peer_notice_is_relayed_to_own_chs() {
        let mut node1 = node(1, vec![3, 4], vec![2], 5);
        let notice = blackdp_crypto::RevocationNotice {
            pseudonym: PseudonymId(1),
            serial: 1,
            expires: Time::from_secs(100),
        };
        let actions = node1.handle(BlackDpMessage::Revoked(notice), true, Time::ZERO);
        assert_eq!(actions.len(), 2);
        assert!(actions.iter().all(|a| matches!(
            a,
            TaAction::WiredCh {
                msg: BlackDpMessage::Revoked(_),
                ..
            }
        )));
    }
}
